"""Transportation routing with label constraints (introduction's
Google-Maps motivation).

A traveller wants routes that use highways ('h') first, optionally one
ferry ('f'), then regional roads ('r') — and never passes through the
same city twice (a *simple* path).  The constraint language
``h*(f + ε)r*`` is in trC, so the polynomial solver applies.

Run with::

    python examples/transportation.py
"""

from repro import RspqSolver, classify, language
from repro.algorithms.rpq import RpqSolver
from repro.graphs.generators import transportation_network


def main():
    graph, cities = transportation_network(12, seed=4)
    print("network:", graph)

    constraint = language("h*(f + ε)r*", name="highways-ferry-regional")
    print("constraint:", constraint,
          "->", classify(constraint.dfa).complexity_class.value)

    solver = RspqSolver(constraint)
    walker = RpqSolver(constraint)
    origin = cities[0]

    print("\nroutes from %s:" % origin)
    for destination in cities[1:8]:
        result = solver.solve(graph, origin, destination)
        walk_ok = walker.exists(graph, origin, destination)
        if result.found:
            stops = " -> ".join(str(v) for v in result.path.vertices)
            print("  %-4s simple route (%d legs, labels %s): %s"
                  % (destination, result.length, result.path.word, stops))
        else:
            print("  %-4s no simple route (walk exists: %s)"
                  % (destination, walk_ok))

    # Avoiding a city: query the induced subgraph without it.
    avoided = cities[5]
    remaining = [c for c in graph.vertices() if c != avoided]
    censored = graph.subgraph(remaining)
    target = cities[7]
    print("\navoiding %s:" % avoided)
    result = solver.solve(censored, origin, target)
    print("  %s -> %s: %s" % (
        origin, target,
        result.path.word if result.found else "unreachable"))


if __name__ == "__main__":
    main()
