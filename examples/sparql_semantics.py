"""Property-path semantics: walk vs trail vs simple (SPARQL discussion).

The introduction recounts how SPARQL 1.1 drafts mixed semantics for
property paths and how counting under them explodes.  This example
evaluates one query under all three semantics on a small RDF-ish graph
and prints where they disagree, plus the count explosion.

Run with::

    python examples/sparql_semantics.py
"""

from repro import DbGraph, language
from repro.algorithms.semantics import (
    SEMANTICS,
    SemanticsEvaluator,
)


def build_social_graph():
    """A follower graph: 'f' = follows, 'k' = knows-in-person."""
    edges = [
        ("ann", "f", "bob"), ("bob", "f", "cat"), ("cat", "f", "ann"),
        ("cat", "f", "dan"), ("dan", "f", "eve"), ("eve", "f", "cat"),
        ("ann", "k", "dan"), ("dan", "k", "bob"),
    ]
    return DbGraph.from_edges(edges)


def main():
    graph = build_social_graph()
    print("graph:", graph)

    # "reachable by an even number of follow edges" — the classic
    # (ff)* query whose simple-path version is NP-complete.
    query = language("(ff)*", name="even-follows")
    evaluator = SemanticsEvaluator(query)

    people = sorted(graph.vertices())
    print("\n(ff)* from ann — three semantics:")
    print("  %-6s %-6s %-6s %-6s" % ("to", "walk", "trail", "simple"))
    disagreements = 0
    for person in people:
        answers = evaluator.evaluate_all(graph, "ann", person)
        row = [answers[s] for s in SEMANTICS]
        if len(set(row)) > 1:
            disagreements += 1
        print("  %-6s %-6s %-6s %-6s" % (person, *row))
    print("  semantics disagree on %d/%d targets" % (
        disagreements, len(people)))

    # Counting (the yottabyte discussion): walks explode, simple paths
    # stay scarce.
    print("\ncounting f* matches ann -> cat:")
    counter = SemanticsEvaluator(language("f*"))
    for max_length in (4, 8, 12, 16):
        walks = counter.count_walks(graph, "ann", "cat", max_length)
        print("  walks of length <= %-3d: %d" % (max_length, walks))
    print("  trails:                 %d"
          % counter.count_trails(graph, "ann", "cat"))
    print("  simple paths:           %d"
          % counter.count_simple(graph, "ann", "cat"))


if __name__ == "__main__":
    main()
