"""Weighted shortest simple paths (the paper's E → R+ generalisation).

"Notice that we can easily adapt our algorithm such that it outputs a
shortest path for positive instances.  It can be generalized to
db-graphs weighted by a function E → R+."

Here the transportation network's edges carry travel times; the
constraint stays ``h*(f + ε)r*`` and the solver minimises total time
instead of hop count, still under simple-path semantics.

Run with::

    python examples/weighted_routing.py
"""

import random

from repro import classify, language
from repro.core.nice_paths import TractableSolver, path_weight
from repro.graphs.generators import transportation_network


def main():
    graph, cities = transportation_network(12, seed=8)
    rng = random.Random(0)
    # Highways are fast, regional roads slower, ferries slowest.
    base_time = {"h": 1, "r": 4, "f": 9}
    times = {
        (u, label, v): base_time[label] + rng.randint(0, 2)
        for u, label, v in graph.edges()
    }
    def travel_time(u, label, v):
        return times[(u, label, v)]

    constraint = language("h*(f + ε)r*", name="itinerary")
    assert classify(constraint.dfa).is_tractable()
    solver = TractableSolver(constraint)

    origin = cities[0]
    print("itineraries from %s (minimising travel time):" % origin)
    for destination in cities[1:7]:
        by_hops = solver.shortest_simple_path(graph, origin, destination)
        by_time = solver.shortest_simple_path(
            graph, origin, destination, weight_fn=travel_time
        )
        if by_time is None:
            print("  %-4s unreachable under the constraint" % destination)
            continue
        print(
            "  %-4s fastest: %2d time units over %d legs (%s)"
            % (
                destination,
                path_weight(by_time, travel_time),
                len(by_time),
                by_time.word,
            )
        )
        if len(by_hops) != len(by_time):
            print(
                "       (hop-shortest route differs: %d legs, %d time units)"
                % (len(by_hops), path_weight(by_hops, travel_time))
            )


if __name__ == "__main__":
    main()
