"""Quickstart: the trichotomy and regular simple path queries.

Run with::

    python examples/quickstart.py

Covers the three public entry points:

1. ``repro.language`` — build a regular language from a regex,
2. ``repro.classify`` — Theorem 2's trichotomy (AC0 / NL-c / NP-c),
3. ``repro.RspqSolver`` — evaluate regular *simple* path queries with
   the right algorithm for the language's class.
"""

from repro import DbGraph, RspqSolver, classify, language


def main():
    # -- 1. Languages ------------------------------------------------------
    # The paper's Example 1: tractable although its neighbour a*bc* is
    # NP-complete.
    tractable = language("a*(bb+ + ε)c*", name="example1")
    hard = language("a*bc*", name="hard-neighbour")

    # -- 2. The trichotomy -------------------------------------------------
    for lang in (tractable, hard, language("abc"), language("(aa)*")):
        result = classify(lang.dfa)
        print("%-22s -> %s" % (lang, result.complexity_class.value))
    print()

    # -- 3. Queries ----------------------------------------------------------
    # A small db-graph: an a-chain, an optional bb-detour, then c-edges.
    graph = DbGraph.from_edges(
        [
            (0, "a", 1), (1, "a", 2),
            (2, "b", 3), (3, "b", 4),   # the bb detour
            (2, "c", 5),                 # shortcut without b's
            (4, "c", 5), (5, "c", 6),
        ]
    )
    solver = RspqSolver(tractable)
    result = solver.solve(graph, 0, 6)
    print("query 0 -> 6 under %s" % tractable)
    print("  strategy :", result.strategy)
    print("  found    :", result.found)
    print("  path     :", result.path)
    print("  word     :", result.path.word)

    # A single b cannot be completed into bb⁺ — the detour is forced
    # whole or not at all.
    broken = DbGraph.from_edges([(0, "a", 1), (1, "b", 2), (2, "c", 3)])
    print("\nquery on a-b-c chain (single b):",
          RspqSolver(tractable).solve(broken, 0, 3).found)

    # Hard languages still work — via exponential search with a budget.
    hard_solver = RspqSolver(hard, exact_budget=100000)
    print("hard language on the same graph:",
          hard_solver.solve(broken, 0, 3).found,
          "(strategy: %s)" % hard_solver.strategy)


if __name__ == "__main__":
    main()
