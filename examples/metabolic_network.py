"""Metabolic-network pathway search (the paper's biology motivation).

Metabolites are vertices; directed edges are reactions labeled by type:

* 'e' — enzymatic step,
* 't' — transport across a compartment,
* 's' — spontaneous reaction.

A biologist asks for pathways from a substrate to a product that run
enzymatically, may cross a membrane once, then finish enzymatically —
and that never revisit a metabolite (revisiting means a futile cycle):
the language ``e*(t + ε)e*`` under **simple-path** semantics.  A second
query shows an NP-complete constraint (``e*te*`` with a *mandatory*
transport) falling back to exponential search.

Run with::

    python examples/metabolic_network.py
"""

import random

from repro import DbGraph, RspqSolver, classify, language


def build_network(seed=11):
    """Two compartments of enzymatic steps joined by transports."""
    rng = random.Random(seed)
    graph = DbGraph()
    cytosol = ["c%d" % i for i in range(10)]
    mitochondrion = ["m%d" % i for i in range(10)]
    for pool in (cytosol, mitochondrion):
        for _ in range(18):
            a, b = rng.sample(pool, 2)
            graph.add_edge(a, "e", b)
        # a couple of spontaneous reactions
        for _ in range(3):
            a, b = rng.sample(pool, 2)
            graph.add_edge(a, "s", b)
    # transports between compartments
    for _ in range(4):
        a = rng.choice(cytosol)
        b = rng.choice(mitochondrion)
        graph.add_edge(a, "t", b)
    return graph, cytosol, mitochondrion


def main():
    graph, cytosol, mitochondrion = build_network()
    print("network:", graph)

    pathway = language("e*(t + ε)e*", name="enzymatic-with-optional-transport")
    print("constraint:", pathway, "->",
          classify(pathway.dfa).complexity_class.value)
    solver = RspqSolver(pathway)

    substrate = cytosol[0]
    print("\npathways from %s:" % substrate)
    found = 0
    for product in mitochondrion[:5] + cytosol[5:8]:
        result = solver.solve(graph, substrate, product)
        if result.found:
            found += 1
            print("  %-4s %s  (%s)" % (
                product, result.path.word,
                " -> ".join(result.path.vertices)))
    print("  %d pathways found (strategy: %s)" % (found, solver.strategy))

    # Mandatory transport: e*te* is NP-complete (same shape as a*ba*).
    strict = language("e*te*", name="mandatory-transport")
    print("\nconstraint:", strict, "->",
          classify(strict.dfa).complexity_class.value)
    strict_solver = RspqSolver(strict, exact_budget=500000)
    product = mitochondrion[0]
    result = strict_solver.solve(graph, substrate, product)
    print("  %s -> %s: found=%s via %s" % (
        substrate, product, result.found, result.strategy))


if __name__ == "__main__":
    main()
