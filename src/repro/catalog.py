"""Catalog of named languages with ground-truth classifications.

Every language the paper mentions by name, plus representative members
of each trichotomy class, with the complexity the paper assigns (or
that follows directly from its characterisations).  Tests validate the
implementation against this table; benches iterate over it.

``expected`` fields:

* ``complexity`` — "AC0" | "NL-complete" | "NP-complete" (Theorem 2),
* ``in_trc`` / ``finite`` — the two underlying predicates,
* ``in_trc_vlg`` — Definition 5 membership where the paper states it
  (None when the paper is silent and we have no independent ground
  truth),
* ``subword_closed`` — membership in the Mendelzon–Wood class trC(0).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .languages import Language


@dataclass(frozen=True)
class CatalogEntry:
    """A named language with its paper-derived ground truth."""

    name: str
    regex: str
    complexity: str
    in_trc: bool
    finite: bool
    subword_closed: bool
    in_trc_vlg: Optional[bool] = None
    note: str = ""

    def language(self, alphabet=None):
        """Instantiate the :class:`Language` (fresh object each call)."""
        return Language(self.regex, alphabet=alphabet, name=self.name)


ENTRIES = (
    # -- NP-complete classics (introduction, [29]) ------------------------------
    CatalogEntry(
        name="even-a",
        regex="(aa)*",
        complexity="NP-complete",
        in_trc=False,
        finite=False,
        subword_closed=False,
        in_trc_vlg=False,
        note="even-length paths; hard already in Mendelzon-Wood",
    ),
    CatalogEntry(
        name="a-b-a",
        regex="a*ba*",
        complexity="NP-complete",
        in_trc=False,
        finite=False,
        subword_closed=False,
        in_trc_vlg=False,
        note="the paper's canonical hard language",
    ),
    CatalogEntry(
        name="a-b-c",
        regex="a*bc*",
        complexity="NP-complete",
        in_trc=False,
        finite=False,
        subword_closed=False,
        in_trc_vlg=True,
        note="NP-complete on db-graphs but polynomial on vl-graphs (§4.1)",
    ),
    CatalogEntry(
        name="fig1-language",
        regex="a*b(cc)*d",
        complexity="NP-complete",
        in_trc=False,
        finite=False,
        subword_closed=False,
        note="the Figure 1 reduction example",
    ),
    CatalogEntry(
        name="ab-star",
        regex="(ab)*",
        complexity="NP-complete",
        in_trc=False,
        finite=False,
        subword_closed=False,
        in_trc_vlg=True,
        note="polynomial for vertex-labeled graphs, NP-complete otherwise",
    ),
    CatalogEntry(
        name="a-bplus-c",
        regex="a*b^+c*",
        complexity="NP-complete",
        in_trc=False,
        finite=False,
        subword_closed=False,
        note="mandatory b-block: same obstruction as a*bc*",
    ),
    # -- tractable infinite languages (trC) ----------------------------------------
    CatalogEntry(
        name="example1",
        regex="a*(bb^+ + eps)c*",
        complexity="NL-complete",
        in_trc=True,
        finite=False,
        subword_closed=False,
        note="Example 1: tractable although a*bc* is not",
    ),
    CatalogEntry(
        name="example2",
        regex="a(c{2,} + eps)(a+b)*(ac)?a*",
        complexity="NL-complete",
        in_trc=True,
        finite=False,
        subword_closed=False,
        note="Example 2 / Figure 2; three looping components",
    ),
    CatalogEntry(
        name="all-words",
        regex="(a+b)*",
        complexity="NL-complete",
        in_trc=True,
        finite=False,
        subword_closed=True,
        in_trc_vlg=True,
        note="plain reachability",
    ),
    CatalogEntry(
        name="a-star",
        regex="a*",
        complexity="NL-complete",
        in_trc=True,
        finite=False,
        subword_closed=True,
        in_trc_vlg=True,
        note="single-label reachability",
    ),
    CatalogEntry(
        name="a-star-c-star",
        regex="a*c*",
        complexity="NL-complete",
        in_trc=True,
        finite=False,
        subword_closed=True,
        in_trc_vlg=True,
        note="subword-closed, hence trC(0) (Mendelzon-Wood fragment)",
    ),
    CatalogEntry(
        name="a-optb-c",
        regex="a*(b + eps)c*",
        complexity="NL-complete",
        in_trc=True,
        finite=False,
        subword_closed=True,
        note="optional middle letter keeps tractability; deleting any "
        "letters of a^i b? c^j stays in the language",
    ),
    CatalogEntry(
        name="class-star",
        regex="[ab]*",
        complexity="NL-complete",
        in_trc=True,
        finite=False,
        subword_closed=True,
        in_trc_vlg=True,
        note="character-class star",
    ),
    CatalogEntry(
        name="b-run",
        regex="b{3,}",
        complexity="NL-complete",
        in_trc=True,
        finite=False,
        subword_closed=False,
        note="A>=k with a mandatory head absorbed into the lead word",
    ),
    CatalogEntry(
        name="word-then-star",
        regex="ab^+",
        complexity="NL-complete",
        in_trc=True,
        finite=False,
        subword_closed=False,
        note="uv*w shape from the Lemma 17 hardness construction",
    ),
    # -- finite languages (AC0) ------------------------------------------------------
    CatalogEntry(
        name="single-word",
        regex="abc",
        complexity="AC0",
        in_trc=True,
        finite=True,
        subword_closed=False,
        note="one fixed word",
    ),
    CatalogEntry(
        name="two-words",
        regex="ab + ba",
        complexity="AC0",
        in_trc=True,
        finite=True,
        subword_closed=False,
        note="finite union",
    ),
    CatalogEntry(
        name="short-words",
        regex="(a + b)(a + b)?",
        complexity="AC0",
        in_trc=True,
        finite=True,
        subword_closed=False,
        note="all words of length 1-2",
    ),
    CatalogEntry(
        name="empty-language",
        regex="∅",
        complexity="AC0",
        in_trc=True,
        finite=True,
        subword_closed=True,
        note="degenerate: no path qualifies",
    ),
    CatalogEntry(
        name="epsilon-only",
        regex="eps",
        complexity="AC0",
        in_trc=True,
        finite=True,
        subword_closed=True,
        note="only the empty path qualifies",
    ),
)


def entries():
    """All catalog entries."""
    return ENTRIES


def by_name(name):
    """Look up an entry by name (raises KeyError when absent)."""
    for entry in ENTRIES:
        if entry.name == name:
            return entry
    raise KeyError(name)


def tractable_entries():
    """Entries with polynomial RSPQ (AC0 or NL-complete)."""
    return tuple(e for e in ENTRIES if e.complexity != "NP-complete")


def hard_entries():
    """Entries with NP-complete RSPQ."""
    return tuple(e for e in ENTRIES if e.complexity == "NP-complete")


def infinite_trc_entries():
    """Entries in trC that are infinite (the NL-complete class)."""
    return tuple(e for e in ENTRIES if e.complexity == "NL-complete")
