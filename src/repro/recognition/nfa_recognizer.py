"""Recognition of tractable languages from an NFA or regex (Theorem 3,
case 2).

For NFAs and regular expressions the recognition problem jumps to
PSPACE-complete.  The upper bound's algorithmic content — determinize,
then run the DFA test — is implemented verbatim; the unavoidable
exponential lives in the subset construction, and the report records
the blowup so the recognition bench (E7) can chart it against the
Theorem-3 lower-bound family built from Universality instances.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..languages.dfa import from_nfa
from ..languages.nfa import NFA, nfa_from_ast
from ..languages.regex.parser import parse
from .dfa_recognizer import recognize_tractable_dfa


@dataclass
class NfaRecognitionReport:
    """DFA report plus the determinization cost."""

    tractable: bool
    nfa_states: int
    determinized_states: int
    minimal_states: int
    pairs_checked: int


def recognize_tractable_nfa(nfa):
    """Theorem 3 (2): decide tractability from an NFA.

    Determinizes (worst-case exponential — that is the theorem's
    point), minimises, then applies the polynomial DFA procedure.
    """
    if not isinstance(nfa, NFA):
        raise TypeError("recognize_tractable_nfa expects an NFA")
    dfa = from_nfa(nfa)
    report = recognize_tractable_dfa(dfa)
    return NfaRecognitionReport(
        tractable=report.tractable,
        nfa_states=nfa.num_states(),
        determinized_states=dfa.num_states,
        minimal_states=report.minimal_states,
        pairs_checked=report.pairs_checked,
    )


def recognize_tractable_regex(text):
    """Theorem 3 (2), regex representation: parse, Thompson, determinize."""
    return recognize_tractable_nfa(nfa_from_ast(parse(text)))
