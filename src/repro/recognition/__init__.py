"""Deciding, given L, whether RSPQ(L) is tractable (Theorem 3)."""

from .dfa_recognizer import RecognitionReport, recognize_tractable_dfa
from .nfa_recognizer import (
    NfaRecognitionReport,
    recognize_tractable_nfa,
    recognize_tractable_regex,
)

__all__ = [
    "NfaRecognitionReport",
    "RecognitionReport",
    "recognize_tractable_dfa",
    "recognize_tractable_nfa",
    "recognize_tractable_regex",
]
