"""Recognition of tractable languages from a DFA (Theorem 3, case 1).

"Is RSPQ(L) tractable?" for L given by a *DFA* is NL-complete.  The
polynomial algorithm implemented here follows the appendix proof:

1. reduce to the minimal-DFA case by collapsing Nerode-equivalent
   states (the appendix does this on the fly; we minimise explicitly,
   which is the deterministic-polynomial shadow of the same step);
2. for each state pair ``(q1, q2)`` with ``q2`` reachable from ``q1``
   and both looping, build the automaton for ``Loop(q2)^M L_{q2} \\
   L_{q1}`` (the M-copies construction) and test emptiness.

The instance is accepted iff no pair violates the inclusion — i.e. iff
L ∈ trC, iff RSPQ(L) is not NP-complete (Theorem 1).

Work accounting is exposed so the recognition bench (E7) can plot cost
against automaton size.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.trc import violating_pairs
from ..languages.dfa import DFA


@dataclass
class RecognitionReport:
    """Outcome of a tractability-recognition run."""

    tractable: bool
    minimal_states: int
    input_states: int
    pairs_checked: int
    violating_pair: tuple = None


def recognize_tractable_dfa(dfa):
    """Theorem 3 (1): decide tractability of RSPQ(L) from a DFA.

    Accepts any complete DFA (not necessarily minimal) and returns a
    :class:`RecognitionReport`.
    """
    if not isinstance(dfa, DFA):
        raise TypeError("recognize_tractable_dfa expects a DFA")
    minimal = dfa.minimized()
    from ..languages.analysis import looping_states

    loops = looping_states(minimal)
    pairs = 0
    for q1 in sorted(loops):
        reachable = minimal.reachable_states(q1)
        pairs += len(loops & reachable)
    for pair in violating_pairs(minimal):
        return RecognitionReport(
            tractable=False,
            minimal_states=minimal.num_states,
            input_states=dfa.num_states,
            pairs_checked=pairs,
            violating_pair=pair,
        )
    return RecognitionReport(
        tractable=True,
        minimal_states=minimal.num_states,
        input_states=dfa.num_states,
        pairs_checked=pairs,
    )
