"""k-RSPQ by color coding (Theorem 7, after Alon-Yuster-Zwick).

k-RSPQ asks for a simple L-labeled path of size (number of edges) at
most k.  Theorem 7: FPT in k, time ``O(2^O(k) |A_L| |G| log |G|)``.

The engine is the paper's dynamic program over colored vertices:

    f(v, q, S) = 1  iff a path from x to v uses exactly the colors S
                 (all distinct) and drives A_L from its initial state
                 to q,

computed over a k'-coloring with k' = k + 1 (a path with k edges has
k + 1 vertices).  A coloring family guarantees some coloring renders
the witness path colorful:

* ``exhaustive`` — all ``k'^n`` colorings (exact, tiny inputs only);
* ``monte-carlo`` — calibrated random colorings: a fixed simple path
  on j vertices is colorful under a uniform k'-coloring with
  probability ``p = k'!/(k'-j)!/k'^j ≥ k'!/k'^{k'}``, so
  ``ceil(ln δ / ln(1-p))`` independent trials drive the failure
  probability below δ (one-sided: "yes" answers are always certified
  by a found path).  :func:`trials_for_prob` computes the exact count
  from the log-factorial form instead of the loose ``e^{k'}`` bound
  the first cut of this module used — roughly a 2.3x trial saving at
  k' = 8 and growing with k'.

The Monte-Carlo streams are deterministic but decorrelated: each
``bounded_simple_path`` call derives its trial colorings from
``(seed, source, target, trial)``, so two queries in one batch never
replay the same coloring sequence and their failure events stay
independent — the property the portfolio's combined failure bound
(:mod:`repro.engine.portfolio`) relies on.

The DP itself is integer-native over a
:class:`~repro.graphs.view.GraphView`: vertices and labels are ids,
colorsets are bitmasks, DFA transitions are per-label list rows, and
expansions iterate the view's precomputed adjacency (the CSR partition
on compiled graphs) instead of re-sorting ``out_edges`` per vertex.
Every expansion charges the
:class:`~repro.execution.ExecutionContext`, so budgets and deadlines
bite *inside* a trial, not only between trials.

Theorem 9's explicit deterministic k-perfect family is replaced by the
Monte-Carlo construction — see DESIGN.md §3 (substitutions).
"""

from __future__ import annotations

import math
import random
from itertools import product as iter_product

from ..core.product import transition_rows
from ..graphs.view import as_graph_view
from ..languages import Language
from ..languages.analysis import useful_symbols


def _lfact(n):
    """``log(n!)`` via ``lgamma`` (exact enough for trial calibration)."""
    return math.lgamma(n + 1)


def trials_for_prob(path_vertices, num_colors, failure_probability):
    """Monte-Carlo repetitions for the target failure probability.

    The number of independent uniform ``num_colors``-colorings needed
    so that a *fixed* simple path on ``path_vertices`` vertices is
    colorful in at least one trial with probability at least
    ``1 - failure_probability``.  The single-trial success probability
    is ``num_colors! / (num_colors - path_vertices)! / num_colors^
    path_vertices``, computed in log space.
    """
    if not 0.0 < failure_probability < 1.0:
        raise ValueError(
            "failure_probability must be in (0, 1), got %r"
            % (failure_probability,)
        )
    if path_vertices < 1:
        raise ValueError(
            "path_vertices must be >= 1, got %r" % (path_vertices,)
        )
    if num_colors < path_vertices:
        raise ValueError(
            "num_colors (%r) must be >= path_vertices (%r): a longer "
            "path can never be colorful" % (num_colors, path_vertices)
        )
    log_colorful = (
        _lfact(num_colors)
        - _lfact(num_colors - path_vertices)
        - path_vertices * math.log(num_colors)
    )
    colorful = math.exp(log_colorful)
    if colorful >= 1.0:
        return 1
    trials = math.ceil(
        math.log(failure_probability) / math.log1p(-colorful)
    )
    return max(1, int(trials))


class ColorCodingSolver:
    """FPT solver for bounded-length simple L-labeled paths.

    Parameters
    ----------
    language:
        :class:`~repro.languages.Language` or regex string.
    seed:
        Root of every Monte-Carlo stream; runs are deterministic in
        ``(seed, source, target, trial)``.
    failure_probability:
        One-sided error bound δ: ``None`` answers are wrong with
        probability at most δ (``found`` answers carry a witness and
        are always exact).
    use_reach_pruning:
        Consult the view's label-constrained reachability index to
        drop DP expansions into components that provably cannot reach
        the target under L's usable labels (sound: a pruned vertex can
        appear on no source-target path).
    """

    def __init__(self, language, seed=0, failure_probability=1e-3,
                 use_reach_pruning=True):
        if isinstance(language, str):
            language = Language(language)
        self.language = language
        self.dfa = language.dfa
        self.seed = seed
        self.failure_probability = failure_probability
        self.use_reach_pruning = use_reach_pruning
        #: Symbols occurring in some word of L (the pruning label mask).
        self.used_symbols = useful_symbols(self.dfa)

    # -- coloring families -------------------------------------------------------

    def _num_trials(self, num_colors):
        """Monte-Carlo repetitions for the target failure probability."""
        return trials_for_prob(
            num_colors, num_colors, self.failure_probability
        )

    def _trial_rng(self, source, target, trial):
        """The per-trial RNG stream for one solve.

        Seeded from ``(seed, source, target, trial)`` via a formatted
        string (``random.Random`` hashes string seeds with SHA-512, so
        the stream is deterministic and immune to hash randomization).
        Distinct queries draw distinct coloring sequences, keeping
        failure events independent across a batch.
        """
        return random.Random(
            "%r|%r|%r|%d" % (self.seed, source, target, trial)
        )

    def colorings(self, vertices, num_colors, family="monte-carlo"):
        """Yield colorings (dicts vertex -> color in [0, num_colors)).

        The Monte-Carlo family here is the *query-independent* stream
        (keyed on ``(seed, trial)`` only) for callers that inspect
        colorings directly; ``bounded_simple_path`` uses the
        per-query streams of :meth:`_trial_rng` instead.
        """
        vertices = list(vertices)
        if family == "exhaustive":
            for assignment in iter_product(
                range(num_colors), repeat=len(vertices)
            ):
                yield dict(zip(vertices, assignment))
            return
        if family != "monte-carlo":
            raise ValueError("unknown coloring family %r" % (family,))
        for trial in range(self._num_trials(num_colors)):
            rng = random.Random("%r|colorings|%d" % (self.seed, trial))
            yield {
                vertex: rng.randrange(num_colors) for vertex in vertices
            }

    # -- the f(v, q, S) dynamic program ---------------------------------------------

    def colorful_path(self, graph, source, target, coloring, num_colors,
                      ctx=None):
        """Shortest *colorful* L-labeled path under ``coloring`` (or None).

        Implements the paper's DP with parent pointers; colorful means
        all vertex colors distinct, which forces simplicity.
        ``coloring`` maps vertex names to colors; vertices it omits are
        treated as unusable.
        """
        view = as_graph_view(graph)
        source_id = view.vertex_id(source)
        target_id = view.vertex_id(target)
        vertex_at = view.vertex_at
        colors = [
            coloring.get(vertex_at(vertex_id), -1)
            for vertex_id in range(view.num_vertices)
        ]
        found = self._colorful_path_ids(
            view, source_id, target_id, colors, ctx
        )
        if found is None:
            return None
        return view.path(*found)

    # invariant: hot-loop
    def _colorful_path_ids(self, view, source_id, target_id, colors, ctx):
        """The DP core on vertex/label ids; returns id tuples or None.

        ``colors[vertex_id]`` is the vertex's color, ``-1`` marking a
        vertex outside the coloring (never entered).  BFS layering
        makes the first accepting hit a shortest colorful path.  Every
        expanded state charges ``ctx`` (budget + periodic deadline).
        """
        dfa = self.dfa
        accepting = dfa.accepting
        if source_id == target_id:
            if dfa.initial in accepting:
                return (source_id,), ()
            return None
        if colors[source_id] < 0:
            return None
        rows = transition_rows(dfa, view)
        to_target = comp_of = None
        if self.use_reach_pruning:
            index = view.reachability()
            mask = view.label_mask(self.used_symbols)
            if not index.can_reach(source_id, target_id, mask):
                return None
            to_target = index.comps_to(target_id, mask)
            comp_of = index.comp_of
        out = view.out
        start_key = (source_id, dfa.initial, 1 << colors[source_id])
        table = {start_key: None}  # key -> parent (key, label_id) or None
        frontier = [start_key]
        best = None
        while frontier and best is None:
            next_frontier = []
            for key in frontier:
                if ctx is not None:
                    ctx.charge_step()
                vertex_id, state, used = key
                for label_id, nxt in out(vertex_id):
                    row = rows[label_id]
                    if row is None:
                        continue
                    color = colors[nxt]
                    if color < 0:
                        continue
                    bit = 1 << color
                    if used & bit:
                        continue
                    if to_target is not None and not (
                        to_target[comp_of[nxt]]
                    ):
                        continue
                    next_state = row[state]
                    next_key = (nxt, next_state, used | bit)
                    if next_key in table:
                        continue
                    table[next_key] = (key, label_id)
                    if nxt == target_id and next_state in accepting:
                        best = next_key
                        break
                    next_frontier.append(next_key)
                if best is not None:
                    break
            frontier = next_frontier
        if best is None:
            return None
        vertex_ids = []
        label_ids = []
        key = best
        while table[key] is not None:
            parent, label_id = table[key]
            vertex_ids.append(key[0])
            label_ids.append(label_id)
            key = parent
        vertex_ids.append(key[0])
        vertex_ids.reverse()
        label_ids.reverse()
        return tuple(vertex_ids), tuple(label_ids)

    # -- public API --------------------------------------------------------------------

    def bounded_simple_path(
        self, graph, source, target, max_edges, family="monte-carlo",
        ctx=None, shortest=False,
    ):
        """A simple L-labeled path with ≤ ``max_edges`` edges, or None.

        One-sided error under the Monte-Carlo family: a returned path
        is always a certified answer; ``None`` is wrong with
        probability at most ``failure_probability``.

        By default the first witness ends the solve — one-sided error
        means a found path needs no further trials.  ``shortest=True``
        restores the exhaust-every-trial behaviour and returns the
        shortest witness over all trials (which is the true shortest
        bounded path with the same ``1 - failure_probability``
        guarantee).
        """
        if max_edges < 0:
            raise ValueError(
                "max_edges must be >= 0, got %r" % (max_edges,)
            )
        view = as_graph_view(graph)
        source_id = view.vertex_id(source)
        target_id = view.vertex_id(target)
        num_colors = max_edges + 1
        num_vertices = view.num_vertices
        if family == "exhaustive":
            trials = iter_product(range(num_colors), repeat=num_vertices)
        elif family == "monte-carlo":
            trials = (
                [
                    rng.randrange(num_colors)
                    for _ in range(num_vertices)
                ]
                for rng in (
                    self._trial_rng(source, target, trial)
                    for trial in range(self._num_trials(num_colors))
                )
            )
        else:
            raise ValueError("unknown coloring family %r" % (family,))
        best = None
        for colors in trials:
            if ctx is not None:
                ctx.check_deadline()
            found = self._colorful_path_ids(
                view, source_id, target_id, colors, ctx
            )
            if found is None:
                continue
            vertex_ids, label_ids = found
            if len(label_ids) > max_edges:
                continue
            if not shortest:
                return view.path(vertex_ids, label_ids)
            if best is None or len(label_ids) < len(best[1]):
                best = found
            if len(best[1]) == 0:
                break
        if best is None:
            return None
        return view.path(*best)

    def exists(self, graph, source, target, max_edges, family="monte-carlo",
               ctx=None):
        """Decision variant of k-RSPQ (first witness ends the solve)."""
        return (
            self.bounded_simple_path(
                graph, source, target, max_edges, family=family, ctx=ctx
            )
            is not None
        )
