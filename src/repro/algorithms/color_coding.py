"""k-RSPQ by color coding (Theorem 7, after Alon-Yuster-Zwick).

k-RSPQ asks for a simple L-labeled path of size (number of edges) at
most k.  Theorem 7: FPT in k, time ``O(2^O(k) |A_L| |G| log |G|)``.

The engine is the paper's dynamic program over colored vertices:

    f(v, q, S) = 1  iff a path from x to v uses exactly the colors S
                 (all distinct) and drives A_L from its initial state
                 to q,

computed over a k'-coloring with k' = k + 1 (a path with k edges has
k + 1 vertices).  A coloring family guarantees some coloring renders
the witness path colorful:

* ``exhaustive`` — all ``k'^n`` colorings (exact, tiny inputs only);
* ``monte-carlo`` — ``ceil(e^{k'} · ln(1/δ))`` random colorings: a
  fixed simple path is colorful with probability ≥ k'!/k'^{k'} ≥
  e^{-k'}, so the failure probability is at most δ (one-sided: "yes"
  answers are always certified by a found path).

Theorem 9's explicit deterministic k-perfect family is replaced by the
Monte-Carlo construction — see DESIGN.md §3 (substitutions).
"""

from __future__ import annotations

import math
import random
from itertools import product as iter_product

from ..graphs.dbgraph import Path
from ..languages import Language


class ColorCodingSolver:
    """FPT solver for bounded-length simple L-labeled paths."""

    def __init__(self, language, seed=0, failure_probability=1e-3):
        if isinstance(language, str):
            language = Language(language)
        self.language = language
        self.dfa = language.dfa
        self.seed = seed
        self.failure_probability = failure_probability

    # -- coloring families -------------------------------------------------------

    def _num_trials(self, num_colors):
        """Monte-Carlo repetitions for the target failure probability."""
        single = math.exp(num_colors)  # 1 / P[path colorful] upper bound
        return max(1, int(math.ceil(single * math.log(1.0 / self.failure_probability))))

    def colorings(self, vertices, num_colors, family="monte-carlo"):
        """Yield colorings (dicts vertex -> color in [0, num_colors))."""
        vertices = list(vertices)
        if family == "exhaustive":
            for assignment in iter_product(
                range(num_colors), repeat=len(vertices)
            ):
                yield dict(zip(vertices, assignment))
            return
        if family != "monte-carlo":
            raise ValueError("unknown coloring family %r" % (family,))
        rng = random.Random(self.seed)
        for _ in range(self._num_trials(num_colors)):
            yield {
                vertex: rng.randrange(num_colors) for vertex in vertices
            }

    # -- the f(v, q, S) dynamic program ---------------------------------------------

    def colorful_path(self, graph, source, target, coloring, num_colors):
        """Shortest *colorful* L-labeled path under ``coloring`` (or None).

        Implements the paper's DP with parent pointers; colorful means
        all vertex colors distinct, which forces simplicity.
        """
        start_state = self.dfa.initial
        start_key = (source, start_state, 1 << coloring[source])
        table = {start_key: None}  # key -> parent (key, label) or None
        frontier = [start_key]
        best = None
        if source == target and start_state in self.dfa.accepting:
            return Path.single(source)
        while frontier and best is None:
            next_frontier = []
            for key in frontier:
                vertex, state, used = key
                for label, nxt in sorted(graph.out_edges(vertex), key=repr):
                    if label not in self.dfa.alphabet:
                        continue
                    bit = 1 << coloring[nxt]
                    if used & bit:
                        continue
                    next_state = self.dfa.transition(state, label)
                    next_key = (nxt, next_state, used | bit)
                    if next_key in table:
                        continue
                    table[next_key] = (key, label)
                    if nxt == target and next_state in self.dfa.accepting:
                        best = next_key
                        break
                    next_frontier.append(next_key)
                if best is not None:
                    break
            frontier = next_frontier
        if best is None:
            return None
        vertices = []
        labels = []
        key = best
        while table[key] is not None:
            parent, label = table[key]
            vertices.append(key[0])
            labels.append(label)
            key = parent
        vertices.append(key[0])
        vertices.reverse()
        labels.reverse()
        return Path(tuple(vertices), tuple(labels))

    # -- public API --------------------------------------------------------------------

    def bounded_simple_path(
        self, graph, source, target, max_edges, family="monte-carlo",
        ctx=None,
    ):
        """A simple L-labeled path with ≤ ``max_edges`` edges, or None.

        One-sided error under the Monte-Carlo family: a returned path is
        always a certified answer; ``None`` is wrong with probability at
        most ``failure_probability``.
        """
        graph.require_vertex(source)
        graph.require_vertex(target)
        num_colors = max_edges + 1
        best = None
        for coloring in self.colorings(
            graph.vertices(), num_colors, family=family
        ):
            if ctx is not None:
                ctx.check_deadline()
            path = self.colorful_path(
                graph, source, target, coloring, num_colors
            )
            if path is not None and len(path) <= max_edges:
                if best is None or len(path) < len(best):
                    best = path
                if len(best) == 0:
                    break
        return best

    def exists(self, graph, source, target, max_edges, family="monte-carlo",
               ctx=None):
        """Decision variant of k-RSPQ."""
        return (
            self.bounded_simple_path(
                graph, source, target, max_edges, family=family, ctx=ctx
            )
            is not None
        )
