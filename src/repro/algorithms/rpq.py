"""Regular path queries under *arbitrary walk* semantics.

The classical tractable baseline the paper contrasts with: select node
pairs connected by **any** walk (vertices may repeat) whose label word
lies in L.  Evaluated by BFS over the product graph in
``O(|G| · |A_L|)`` — this is the notion that "has overridden" simple
paths in theory, per the introduction.
"""

from __future__ import annotations

from ..graphs.product import rpq_reachable, shortest_walk
from ..languages import Language


class RpqSolver:
    """Arbitrary-walk RPQ evaluation (product-graph BFS)."""

    def __init__(self, language):
        if isinstance(language, str):
            language = Language(language)
        self.language = language
        self.dfa = language.dfa

    def exists(self, graph, source, target, ctx=None):
        """True iff some L-labeled walk connects source to target."""
        if ctx is not None:
            ctx.check_deadline()
        return target in rpq_reachable(graph, self.dfa, source)

    def shortest_walk(self, graph, source, target):
        """A shortest L-labeled walk (possibly non-simple), or None."""
        return shortest_walk(graph, self.dfa, source, target)

    def reachable_set(self, graph, source):
        """All vertices selected by the RPQ from ``source``."""
        return rpq_reachable(graph, self.dfa, source)

    def evaluate_all_pairs(self, graph):
        """The full RPQ answer ``{(x, y)}`` (one BFS per source)."""
        pairs = set()
        for source in graph.vertices():
            for target in rpq_reachable(graph, self.dfa, source):
                pairs.add((source, target))
        return pairs
