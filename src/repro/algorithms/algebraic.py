"""Algebraic bounded simple-path detection (Koutis–Williams style).

The third rung of the hard-regime portfolio
(:mod:`repro.engine.portfolio`): decide whether a simple L-labeled
path with at most k edges exists *without* searching for one, by
evaluating the walk-generating polynomial over the group algebra
``GF(2^16)[Z_2^r]`` with ``r = k + 1``.

Each vertex ``v`` draws a random group element ``g_v ∈ Z_2^r`` and
every (layer, edge) transition a random nonzero field scalar.  Walks
accumulate the product of their vertices' ``(x_0 + g_v)`` factors:

* a walk that **revisits** a vertex contains ``(x_0 + g_v)^2 =
  x_0 + 2·g_v·x_0 + g_v^2 = 2·x_0 = 0`` in characteristic 2 (the
  group algebra is commutative, so the two occurrences meet), so
  every non-simple walk contributes *exactly zero* — not merely with
  high probability;
* simple walks contribute products of *distinct* factors, which
  survive with constant probability over the random draws.

A nonzero evaluation therefore **certifies** that a simple path of
the observed length exists (there is no witness to extract — that is
the exact rung's job); a zero evaluation is a probabilistic negative:
simple-path contributions may have cancelled.  Repeating with
independent draws drives the one-sided failure probability below δ
using the conservative per-run success bound
:data:`SINGLE_RUN_SUCCESS_PROBABILITY`.

Group-algebra elements are dense vectors of ``2^r`` field scalars
(index = group element as an r-bit mask); multiplying by
``(x_0 + g)`` is one XOR-shifted vector add, and scaling is a
log/antilog table lookup per entry.  The ``2^r`` factor caps the
usable rank at :data:`MAX_GROUP_RANK` — beyond it the exact solver is
the better spend of the same budget.

Arithmetic is ``GF(2^16)`` under the primitive polynomial ``0x1100B``
(the same ``x^16 + x^12 + x^3 + x + 1`` the Jerasure coding library
uses for w = 16), with exp/log tables built once at import.
"""

from __future__ import annotations

import math
import random

from ..core.product import transition_rows
from ..graphs.view import as_graph_view
from ..languages import Language
from ..languages.analysis import useful_symbols

#: Conservative lower bound on one run detecting an existing simple
#: path (the classical Koutis–Williams analysis gives ≥ 1/5).
SINGLE_RUN_SUCCESS_PROBABILITY = 0.2

#: Largest supported group rank r = max_edges + 1: vectors carry 2^r
#: field scalars, so each extra rank doubles the per-edge work.
MAX_GROUP_RANK = 14

#: Primitive polynomial for GF(2^16) (x^16 + x^12 + x^3 + x + 1).
_GF_POLY = 0x1100B

#: Field order of GF(2^16).
_GF_ORDER = 1 << 16


def _build_gf_tables():
    """Exp/log tables for GF(2^16); exp is doubled for index-free mult."""
    size = _GF_ORDER - 1
    exp = [0] * (2 * size)
    log = [0] * _GF_ORDER
    value = 1
    for power in range(size):
        exp[power] = value
        log[value] = power
        value <<= 1
        if value & _GF_ORDER:
            value ^= _GF_POLY
    for power in range(size, 2 * size):
        exp[power] = exp[power - size]
    return tuple(exp), tuple(log)


_GF_EXP, _GF_LOG = _build_gf_tables()


def gf_mul(a, b):
    """Product in GF(2^16) (table-based; 0 absorbs)."""
    if a == 0 or b == 0:
        return 0
    return _GF_EXP[_GF_LOG[a] + _GF_LOG[b]]


def runs_for_prob(failure_probability):
    """Independent runs driving the one-sided error below the target.

    Each run misses an existing path with probability at most
    ``1 - SINGLE_RUN_SUCCESS_PROBABILITY``; runs draw independent
    randomness, so ``ceil(ln δ / ln(1 - p))`` runs suffice.
    """
    if not 0.0 < failure_probability < 1.0:
        raise ValueError(
            "failure_probability must be in (0, 1), got %r"
            % (failure_probability,)
        )
    runs = math.ceil(
        math.log(failure_probability)
        / math.log1p(-SINGLE_RUN_SUCCESS_PROBABILITY)
    )
    return max(1, int(runs))


class AlgebraicSolver:
    """Witness-free bounded simple-path detector (decision only).

    Parameters
    ----------
    language:
        :class:`~repro.languages.Language` or regex string.
    seed:
        Root of the per-run random draws; runs are deterministic in
        ``(seed, source, target, run)``.
    failure_probability:
        One-sided error bound δ: ``False`` answers are wrong with
        probability at most δ; ``True`` answers are certified (every
        non-simple contribution is algebraically zero).
    use_reach_pruning:
        Drop product states in components that provably cannot reach
        the target under L's usable labels (sound, answer-preserving).
    """

    def __init__(self, language, seed=0, failure_probability=1e-3,
                 use_reach_pruning=True):
        if isinstance(language, str):
            language = Language(language)
        self.language = language
        self.dfa = language.dfa
        self.seed = seed
        self.failure_probability = failure_probability
        self.use_reach_pruning = use_reach_pruning
        #: Symbols occurring in some word of L (the pruning label mask).
        self.used_symbols = useful_symbols(self.dfa)

    def _num_runs(self):
        return runs_for_prob(self.failure_probability)

    def _run_rng(self, source, target, run):
        """Deterministic per-run stream from ``(seed, source, target, run)``."""
        return random.Random(
            "%r|%r|%r|algebraic|%d" % (self.seed, source, target, run)
        )

    def exists(self, graph, source, target, max_edges, ctx=None):
        """Whether a simple L-labeled path with ≤ ``max_edges`` edges exists.

        ``True`` is certified (no witness path is produced); ``False``
        is wrong with probability at most ``failure_probability``.
        """
        if max_edges < 0:
            raise ValueError(
                "max_edges must be >= 0, got %r" % (max_edges,)
            )
        rank = max_edges + 1
        if rank > MAX_GROUP_RANK:
            raise ValueError(
                "max_edges=%d needs group rank %d > MAX_GROUP_RANK=%d "
                "(2^r vector entries per product state make larger "
                "ranks slower than exact search)"
                % (max_edges, rank, MAX_GROUP_RANK)
            )
        view = as_graph_view(graph)
        source_id = view.vertex_id(source)
        target_id = view.vertex_id(target)
        if source_id == target_id:
            # The only simple path from x to x is the empty path.
            return self.dfa.initial in self.dfa.accepting
        if self.use_reach_pruning:
            index = view.reachability()
            mask = view.label_mask(self.used_symbols)
            if not index.can_reach(source_id, target_id, mask):
                return False
        rows = transition_rows(self.dfa, view)
        for run in range(self._num_runs()):
            if ctx is not None:
                ctx.check_deadline()
            rng = self._run_rng(source, target, run)
            if self._single_run(
                view, source_id, target_id, rows, rng, max_edges, ctx
            ):
                return True
        return False

    # invariant: hot-loop
    def _single_run(self, view, source_id, target_id, rows, rng,
                    max_edges, ctx):
        """One randomized evaluation; True certifies a path exists.

        Layered DP over product states ``(vertex, dfa_state)``; the
        value of a state after layer j is the group-algebra sum over
        all j-edge walks reaching it.  A nonzero vector at an
        accepting target state after any layer ends the run.
        """
        size = 1 << (max_edges + 1)
        accepting = self.dfa.accepting
        randrange = rng.randrange
        group_of = [randrange(size) for _ in range(view.num_vertices)]
        to_target = comp_of = None
        if self.use_reach_pruning:
            index = view.reachability()
            mask = view.label_mask(self.used_symbols)
            to_target = index.comps_to(target_id, mask)
            comp_of = index.comp_of
        exp = _GF_EXP
        log = _GF_LOG
        out = view.out
        scalar = randrange(1, _GF_ORDER)
        init = [0] * size
        init[0] = scalar
        init[group_of[source_id]] ^= scalar
        current = {(source_id, self.dfa.initial): init}
        for _layer in range(max_edges):
            frontier = {}
            for (vertex_id, state), vector in current.items():
                if ctx is not None:
                    ctx.charge_step()
                for label_id, nxt in out(vertex_id):
                    row = rows[label_id]
                    if row is None:
                        continue
                    if to_target is not None and not (
                        to_target[comp_of[nxt]]
                    ):
                        continue
                    key = (nxt, row[state])
                    accumulator = frontier.get(key)
                    if accumulator is None:
                        accumulator = [0] * size
                        frontier[key] = accumulator
                    group = group_of[nxt]
                    log_c = log[randrange(1, _GF_ORDER)]
                    for index_ in range(size):
                        term = vector[index_] ^ vector[index_ ^ group]
                        if term:
                            accumulator[index_] ^= exp[log[term] + log_c]
            current = frontier
            if not current:
                return False
            for (vertex_id, state), vector in current.items():
                if vertex_id == target_id and state in accepting:
                    if any(vector):
                        return True
        return False
