"""Parameterized complexity of RSPQs (Section 4.2).

Two problems and the positive results the paper proves:

* **k-RSPQ** (parameter: the path size ``k``): is there a simple
  L-labeled path of size ≤ k from x to y?  FPT by color coding
  (Theorem 7) — :func:`k_rspq` delegates to
  :class:`~repro.algorithms.color_coding.ColorCodingSolver`.
* **para-RSPQ** (parameter: the automaton size ``|Q_L|``): the paper's
  partial result (Corollary 1) shows FPT for the class of *finite*
  languages, because every accepted word is shorter than ``|Q_L|`` and
  k-RSPQ applies with ``k = |Q_L| - 1``.  :func:`para_rspq_finite`
  implements exactly that argument (here via the exact finite-language
  solver, whose cost is also bounded by a function of the parameter
  times a polynomial).

The paper leaves para-RSPQ(trC) open (conjectured FPT); there is
nothing to implement for the open case.
"""

from __future__ import annotations

from ..errors import ReproError
from ..languages import Language
from .bounded import FiniteLanguageSolver
from .color_coding import ColorCodingSolver


def k_rspq(language, graph, source, target, k, seed=0,
           failure_probability=1e-3, family="monte-carlo", ctx=None,
           shortest=False):
    """Theorem 7: decide k-RSPQ, FPT in the path-size parameter ``k``.

    Returns a simple L-labeled path with ≤ k edges, or ``None`` (with
    one-sided error under the Monte-Carlo coloring family; pass
    ``family="exhaustive"`` for tiny exact runs).  ``ctx`` threads an
    :class:`~repro.execution.ExecutionContext` through the trials so
    deadlines and step budgets are enforced mid-search; ``shortest``
    keeps searching after the first witness for the shortest one the
    trial family can certify (existence mode returns immediately).
    """
    if isinstance(language, str):
        language = Language(language)
    solver = ColorCodingSolver(
        language, seed=seed, failure_probability=failure_probability
    )
    return solver.bounded_simple_path(
        graph, source, target, k, family=family, ctx=ctx,
        shortest=shortest,
    )


def para_rspq_finite(language, graph, source, target):
    """Corollary 1: RSPQ is FPT for finite languages (parameter |Q_L|).

    Every word of a finite language has length < |Q_L|, so the query
    reduces to k-RSPQ with ``k = |Q_L| - 1``; solving it exactly costs
    ``f(|Q_L|) · poly(|G|)``.  Raises for infinite languages (the open
    case the paper conjectures about).
    """
    if isinstance(language, str):
        language = Language(language)
    if not language.is_finite():
        raise ReproError(
            "para-RSPQ is implemented for finite languages only "
            "(Corollary 1); para-RSPQ(trC) is the paper's open question"
        )
    return FiniteLanguageSolver(language).shortest_simple_path(
        graph, source, target
    )
