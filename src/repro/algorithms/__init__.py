"""Baseline and comparison algorithms."""

from .algebraic import AlgebraicSolver
from .bounded import FiniteLanguageSolver, find_simple_word_path
from .color_coding import ColorCodingSolver, trials_for_prob
from .dag import DagRspqSolver, is_dag
from .disjoint_paths import vertex_disjoint_paths_exist
from .exact import ExactSolver
from .rpq import RpqSolver
from .parameterized import k_rspq, para_rspq_finite
from .semantics import SEMANTICS, SemanticsEvaluator
from . import reductions, treewidth

__all__ = [
    "AlgebraicSolver",
    "ColorCodingSolver",
    "DagRspqSolver",
    "ExactSolver",
    "FiniteLanguageSolver",
    "RpqSolver",
    "SEMANTICS",
    "SemanticsEvaluator",
    "find_simple_word_path",
    "is_dag",
    "k_rspq",
    "para_rspq_finite",
    "reductions",
    "treewidth",
    "trials_for_prob",
    "vertex_disjoint_paths_exist",
]
