"""Exact Vertex-Disjoint-Path solver.

Vertex-Disjoint-Path (the source of the Lemma 5 reduction):

    Input: a digraph G, four vertices x1, y1, x2, y2.
    Question: are there two vertex-disjoint paths, one from x1 to y1
    and one from x2 to y2?

The problem is NP-complete for directed graphs [Fortune-Hopcroft-Wyllie
/ Garey-Johnson], so this solver is a backtracking search: enumerate
simple x1→y1 paths (shortest-first would not help completeness) and,
for each, test reachability of y2 from x2 in the leftover graph.  Used
to validate the reduction experimentally, not as a scalable algorithm.
"""

from __future__ import annotations

from ..errors import BudgetExceededError


def _adjacency(edges):
    adjacency = {}
    for source, target in edges:
        adjacency.setdefault(source, set()).add(target)
        adjacency.setdefault(target, set())
    return adjacency


def _reachable_avoiding(adjacency, start, goal, forbidden):
    if start in forbidden or goal in forbidden:
        return False
    seen = {start}
    stack = [start]
    while stack:
        vertex = stack.pop()
        if vertex == goal:
            return True
        for nxt in adjacency.get(vertex, ()):
            if nxt not in seen and nxt not in forbidden:
                seen.add(nxt)
                stack.append(nxt)
    return False


def vertex_disjoint_paths_exist(edges, x1, y1, x2, y2, budget=None):
    """Decide Vertex-Disjoint-Path by backtracking (exponential).

    ``edges`` is an iterable of ``(source, target)`` pairs.  The two
    paths must be vertex-disjoint *including endpoints*, matching the
    instances the Lemma 5 reduction produces (the four terminals are
    pairwise distinct there).  Trivial paths (x = y) are allowed.
    """
    adjacency = _adjacency(edges)
    for vertex in (x1, y1, x2, y2):
        adjacency.setdefault(vertex, set())
    steps = [0]

    def charge():
        steps[0] += 1
        if budget is not None and steps[0] > budget:
            raise BudgetExceededError(
                "disjoint-path search exceeded %d steps" % budget,
                steps=steps[0],
            )

    path_vertices = [x1]
    on_path = {x1}

    def dfs(vertex):
        charge()
        if vertex == y1:
            return _reachable_avoiding(adjacency, x2, y2, on_path)
        for nxt in sorted(adjacency.get(vertex, ()), key=repr):
            if nxt in on_path:
                continue
            on_path.add(nxt)
            path_vertices.append(nxt)
            if dfs(nxt):
                return True
            path_vertices.pop()
            on_path.discard(nxt)
        return False

    if {x1, y1} & {x2, y2}:
        # Shared terminals can never be disjoint (endpoints included)
        # unless the shared vertex is... never: both paths contain it.
        return False
    return dfs(x1)
