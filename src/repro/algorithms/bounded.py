"""RSPQ for finite languages — the AC0 case of the trichotomy.

For finite L every accepted word has length ≤ M - 1 (a longer run would
repeat a state and pump an infinite family).  The Lemma 17 easiness
argument expresses "there is a simple w-labeled path" as a fixed
first-order formula; operationally this is a constant-depth search: for
each of the finitely many words ``w ∈ L``, check for a simple w-labeled
path with a depth-``|w|`` DFS whose branching is pruned by w's letters.

The work is ``O(Σ_{w∈L} (branching)^{|w|})`` — constant-depth in the
graph size, matching the AC0 upper bound's spirit (data-independent
formula depth), and trivially polynomial for fixed L.
"""

from __future__ import annotations

from ..errors import ReproError
from ..execution import ExecutionContext
from ..graphs.dbgraph import Path, sorted_successors_fn
from ..languages import Language


class FiniteLanguageSolver:
    """Exact RSPQ evaluation for a finite language.

    The solver is immutable once constructed; per-query work counters
    live in the :class:`~repro.execution.ExecutionContext` passed to
    each query, so one instance can serve concurrent queries.  Without
    an explicit context the solver creates one per query and the legacy
    ``words_tried`` shim reads the most recent of those.
    """

    def __init__(self, language, max_words=100000):
        if isinstance(language, str):
            language = Language(language)
        if not language.is_finite():
            raise ReproError(
                "FiniteLanguageSolver requires a finite language"
            )
        self.language = language
        bound = language.dfa.num_states  # words are shorter than M
        self.words = sorted(
            language.words(bound, limit=max_words), key=lambda w: (len(w), w)
        )
        self._legacy_ctx = ExecutionContext()

    @property
    def words_tried(self):
        """Words tried by the last context-less query (legacy shim)."""
        return self._legacy_ctx.words_tried

    def shortest_simple_path(self, graph, source, target, ctx=None):
        """Shortest simple L-labeled path (words tried short-first)."""
        if ctx is None:
            ctx = self._legacy_ctx = ExecutionContext()
        graph.require_vertex(source)
        graph.require_vertex(target)
        for word in self.words:
            ctx.charge_word()
            path = find_simple_word_path(graph, source, target, word)
            if path is not None:
                return path
        return None

    def exists(self, graph, source, target, ctx=None):
        """Decision variant of RSPQ(L) for finite L."""
        return (
            self.shortest_simple_path(graph, source, target, ctx=ctx)
            is not None
        )


def find_simple_word_path(graph, source, target, word):
    """A simple path from source to target spelling exactly ``word``.

    Depth-|word| DFS; this is the ``path_w(x, y)`` FO predicate of the
    Lemma 17 easiness proof made executable.
    """
    if source == target:
        return Path.single(source) if word == "" else None
    if word == "":
        return None
    sorted_successors = sorted_successors_fn(graph)
    vertices = [source]
    visited = {source}

    def dfs(position):
        current = vertices[-1]
        if position == len(word):
            return current == target
        # The last letter must land exactly on the target; intermediate
        # letters must avoid it (a simple path visits it only once).
        for nxt in sorted_successors(current, word[position]):
            if nxt in visited:
                continue
            if position < len(word) - 1 and nxt == target:
                continue
            if position == len(word) - 1 and nxt != target:
                continue
            vertices.append(nxt)
            visited.add(nxt)
            if dfs(position + 1):
                return True
            visited.discard(nxt)
            vertices.pop()
        return False

    if dfs(0):
        return Path(tuple(vertices), tuple(word))
    return None
