"""RSPQ for finite languages — the AC0 case of the trichotomy.

For finite L every accepted word has length ≤ M - 1 (a longer run would
repeat a state and pump an infinite family).  The Lemma 17 easiness
argument expresses "there is a simple w-labeled path" as a fixed
first-order formula; operationally this is a constant-depth search: for
each of the finitely many words ``w ∈ L``, check for a simple w-labeled
path with a depth-``|w|`` DFS whose branching is pruned by w's letters.

The work is ``O(Σ_{w∈L} (branching)^{|w|})`` — constant-depth in the
graph size, matching the AC0 upper bound's spirit (data-independent
formula depth), and trivially polynomial for fixed L.

The search runs integer-native over a
:class:`~repro.graphs.view.GraphView`: letters become label ids, the
visited set is a flat bytearray indexed by vertex id (shared across all
word attempts of one query and cleaned by backtracking), and the path
is materialised back to vertex names only on success.
"""

from __future__ import annotations

from ..errors import ReproError
from ..execution import ExecutionContext
from ..graphs.view import as_graph_view
from ..languages import Language


class FiniteLanguageSolver:
    """Exact RSPQ evaluation for a finite language.

    The solver is immutable once constructed; per-query work counters
    live in the :class:`~repro.execution.ExecutionContext` passed to
    each query, so one instance can serve concurrent queries.  Without
    an explicit context the solver creates one per query and the legacy
    ``words_tried`` shim reads the most recent of those.
    """

    def __init__(self, language, max_words=100000, use_reach_pruning=True):
        if isinstance(language, str):
            language = Language(language)
        if not language.is_finite():
            raise ReproError(
                "FiniteLanguageSolver requires a finite language"
            )
        self.language = language
        bound = language.dfa.num_states  # words are shorter than M
        self.words = sorted(
            language.words(bound, limit=max_words), key=lambda w: (len(w), w)
        )
        self.use_reach_pruning = use_reach_pruning
        #: Letters of the finite word list (the query's label mask).
        self.used_symbols = frozenset(
            symbol for word in self.words for symbol in word
        )
        self._legacy_ctx = ExecutionContext()

    @property
    def words_tried(self):
        """Words tried by the last context-less query (legacy shim)."""
        return self._legacy_ctx.words_tried

    def shortest_simple_path(self, graph, source, target, ctx=None):
        """Shortest simple L-labeled path (words tried short-first)."""
        if ctx is None:
            # invariant: allow=solver-purity (documented legacy stats shim)
            ctx = self._legacy_ctx = ExecutionContext()
        view = as_graph_view(graph)
        source_id = view.vertex_id(source)
        target_id = view.vertex_id(target)
        index = None
        if self.use_reach_pruning and source_id != target_id:
            index = view.reachability()
            if not index.can_reach(
                source_id, target_id,
                view.label_mask(self.used_symbols),
            ):
                # No word of L can label any source→target walk, let
                # alone a simple path: NOT_FOUND without trying a word.
                return None
        visited = bytearray(view.num_vertices)
        for word in self.words:
            ctx.charge_word()
            word_label_ids = view.word_label_ids(word)
            filters = None
            if index is not None and word_label_ids and (
                None not in word_label_ids
            ):
                # Suffix filters: after consuming letter i, the rest of
                # the word only uses labels in suffix_mask[i] — a
                # vertex whose component cannot reach the target under
                # that mask can never complete this word.
                suffix_mask = 0
                masks = [0] * len(word_label_ids)
                for position in range(len(word_label_ids) - 1, -1, -1):
                    masks[position] = suffix_mask
                    suffix_mask |= 1 << word_label_ids[position]
                if not index.can_reach(source_id, target_id, suffix_mask):
                    continue
                filters = [
                    index.comps_to(target_id, mask) for mask in masks
                ]
            found = _word_path_ids(
                view, source_id, target_id, word_label_ids,
                visited, index.comp_of if filters else None, filters,
            )
            if found is not None:
                return view.path(*found)
        return None

    def exists(self, graph, source, target, ctx=None):
        """Decision variant of RSPQ(L) for finite L."""
        return (
            self.shortest_simple_path(graph, source, target, ctx=ctx)
            is not None
        )


def find_simple_word_path(graph, source, target, word):
    """A simple path from source to target spelling exactly ``word``.

    Depth-|word| DFS; this is the ``path_w(x, y)`` FO predicate of the
    Lemma 17 easiness proof made executable.
    """
    view = as_graph_view(graph)
    found = _word_path_ids(
        view,
        view.vertex_id(source),
        view.vertex_id(target),
        view.word_label_ids(word),
        bytearray(view.num_vertices),
    )
    if found is None:
        return None
    return view.path(*found)


# invariant: hot-loop
def _word_path_ids(view, source_id, target_id, word_label_ids, visited,
                   comp_of=None, reach_filters=None):
    """Integer-native word-path DFS over a :class:`GraphView`.

    ``visited`` is a caller-owned bytearray scratch (all zeros on
    entry); backtracking restores it to all zeros on failure, so one
    allocation serves every word of a finite-language query.  Returns
    ``(vertex_ids, label_ids)`` or ``None``.

    ``reach_filters[i]`` (optional) is a per-component bytearray from
    the reachability index: a vertex entered by letter ``i`` whose
    component cannot reach the target under the word's remaining
    letters is abandoned without descending.
    """
    if source_id == target_id:
        return ((source_id,), ()) if not word_label_ids else None
    if not word_label_ids or None in word_label_ids:
        # Empty word between distinct vertices, or a letter labeling
        # no edge at all — no path can spell it.
        return None
    out_by_label = view.out_by_label
    last_position = len(word_label_ids) - 1
    vertices = [source_id]
    visited[source_id] = 1

    def dfs(position):
        current = vertices[-1]
        if position > last_position:
            return current == target_id
        # The last letter must land exactly on the target; intermediate
        # letters must avoid it (a simple path visits it only once).
        for nxt in out_by_label(current, word_label_ids[position]):
            if visited[nxt]:
                continue
            if position < last_position and nxt == target_id:
                continue
            if position == last_position and nxt != target_id:
                continue
            if reach_filters is not None and position < last_position and (
                not reach_filters[position][comp_of[nxt]]
            ):
                continue
            vertices.append(nxt)
            visited[nxt] = 1
            if dfs(position + 1):
                return True
            visited[nxt] = 0
            vertices.pop()
        return False

    if dfs(0):
        # Success leaves the path bits set; clear them for the next word.
        result = tuple(vertices)
        for vertex_id in result:
            visited[vertex_id] = 0
        return result, word_label_ids
    visited[source_id] = 0
    return None
