"""The paper's reductions, as executable graph/language constructions.

* :func:`disjoint_paths_to_rspq` — Lemma 5 (Figure 1): from a
  Vertex-Disjoint-Path instance and a Property-(1) hardness witness,
  build a db-graph ``G'`` and query ``(x, y)`` such that RSPQ(L) on
  ``(G', x, y)`` answers the original instance.  This is the NP-hardness
  half of Theorem 1.
* :func:`reachability_to_rspq` — Lemma 17: embed plain Reachability into
  RSPQ(L) for any infinite regular L via a pumping triple ``u v* w ⊆ L``
  (the NL-hardness half of the trichotomy's middle class).
* :func:`emptiness_to_trc_instance` — Theorem 3 (DFA case hardness):
  ``L' = 1⁺ L 1⁺`` is in trC iff L is empty.
* :func:`universality_to_trc_instance` — Theorem 3 (NFA/regex case):
  ``L' = (0+1)* a* b a*  +  L a*`` is in trC iff L = {0,1}*.
"""

from __future__ import annotations

from ..errors import ReproError
from ..graphs.dbgraph import DbGraph
from ..languages import Language
from ..languages.dfa import DFA
from ..core.trc import _as_minimal_dfa
from ..core.witness import HardnessWitness, find_hardness_witness


# -- Lemma 5: Vertex-Disjoint-Path -> RSPQ(L) ----------------------------------------


def disjoint_paths_to_rspq(edges, x1, y1, x2, y2, witness):
    """Build the Lemma-5 instance ``(G', x, y)``.

    ``edges`` is the input digraph as ``(source, target)`` pairs (its
    vertices may be any hashable values); ``witness`` a verified
    :class:`~repro.core.witness.HardnessWitness` for the target
    language.  Every input edge becomes two word-edges labeled ``w1``
    and ``w2``; fresh terminals x, y attach via ``wl``, ``wm``, ``wr``
    exactly as in Figure 1.  Returns ``(graph, x, y)``.
    """
    if not isinstance(witness, HardnessWitness):
        raise ReproError("a HardnessWitness is required for the reduction")
    graph = DbGraph()
    original = set()
    for source, target in edges:
        original.add(source)
        original.add(target)

    def wrap(vertex):
        return ("g", vertex)

    for source, target in edges:
        graph.add_word_edge(wrap(source), witness.w1, wrap(target))
        graph.add_word_edge(wrap(source), witness.w2, wrap(target))
    for terminal in (x1, y1, x2, y2):
        graph.add_vertex(wrap(terminal))
    x = ("terminal", "x")
    y = ("terminal", "y")
    if witness.wl:
        graph.add_word_edge(x, witness.wl, wrap(x1))
    else:
        # Empty wl: the query source is x1 itself.
        x = wrap(x1)
    graph.add_word_edge(wrap(y1), witness.wm, wrap(x2))
    if witness.wr:
        graph.add_word_edge(wrap(y2), witness.wr, y)
    else:
        y = wrap(y2)
    return graph, x, y


def rspq_instance_for_language(language, edges, x1, y1, x2, y2):
    """Convenience: find the witness for ``language`` and reduce.

    Raises :class:`ReproError` when the language is in trC (no
    reduction exists — that is the point of the trichotomy).
    """
    if isinstance(language, str):
        language = Language(language)
    witness = find_hardness_witness(language.dfa)
    if witness is None:
        raise ReproError(
            "language is in trC; the Lemma 5 reduction does not apply"
        )
    return disjoint_paths_to_rspq(edges, x1, y1, x2, y2, witness)


# -- Lemma 17: Reachability -> RSPQ(L) for infinite L ----------------------------------


def pumping_triple(lang_or_dfa):
    """Words ``(u, v, w)`` with ``u v* w ⊆ L`` and ``v`` non-empty.

    Exists for every infinite regular language (Pumping Lemma).  Found
    on the minimal DFA: a reachable, co-reachable state on a cycle.
    """
    dfa = _as_minimal_dfa(lang_or_dfa)
    if dfa.is_finite():
        raise ReproError("pumping triple requires an infinite language")
    from ..languages.analysis import looping_states
    from ..core.witness import _shortest_word_between

    useful = dfa.reachable_states() & dfa.co_reachable_states()
    for state in sorted(looping_states(dfa) & useful):
        u = _shortest_word_between(dfa, dfa.initial, state)
        w = dfa.shortest_accepted(start=state)
        v = _shortest_word_between(dfa, state, state, require_nonempty=True)
        if u is None or w is None or v is None:
            continue
        return u, v, w
    raise ReproError("no pumping triple found (should be impossible)")


def reachability_to_rspq(edges, source, target, lang_or_dfa):
    """Lemma 17 reduction: Reachability ≤ RSPQ(L) for infinite L.

    Each input edge is labeled by the pump word ``v``; fresh terminals
    attach via ``u`` and ``w``.  There is a (simple) path from source
    to target in the input iff there is a simple L-labeled path from
    the new x' to y'.  Returns ``(graph, x', y')``.
    """
    u, v, w = pumping_triple(lang_or_dfa)
    graph = DbGraph()
    for edge_source, edge_target in edges:
        graph.add_word_edge(("g", edge_source), v, ("g", edge_target))
    graph.add_vertex(("g", source))
    graph.add_vertex(("g", target))
    x = ("terminal", "x")
    y = ("terminal", "y")
    if u:
        graph.add_word_edge(x, u, ("g", source))
    else:
        x = ("g", source)
    if w:
        graph.add_word_edge(("g", target), w, y)
    else:
        y = ("g", target)
    return graph, x, y


# -- Theorem 3 hardness constructions ---------------------------------------------------


def emptiness_to_trc_instance(dfa):
    """Theorem 3 (1), hardness: build a DFA for ``L' = 1⁺ L 1⁺``.

    ``L' ∈ trC  ⟺  L = ∅`` (assuming ε ∉ L, which the construction
    enforces by rejecting such inputs).  The input alphabet must not
    contain '1'.
    """
    if "1" in dfa.alphabet:
        raise ReproError("input alphabet must not contain '1'")
    if dfa.accepts(""):
        raise ReproError("construction assumes ε ∉ L (check separately)")
    alphabet = set(dfa.alphabet) | {"1"}
    # State layout: 0 = qI (no '1' read yet), 1 = qS (≥ one '1' read),
    # 2 = qF (final), 3 = sink, then the copies of the input states.
    q_initial, q_started, q_final, sink = 0, 1, 2, 3
    offset = 4
    num_states = dfa.num_states + offset

    def copy(state):
        return offset + state

    transitions = {}
    for symbol in alphabet:
        transitions[(q_initial, symbol)] = (
            q_started if symbol == "1" else sink
        )
        transitions[(q_started, symbol)] = (
            q_started
            if symbol == "1"
            else copy(dfa.transition(dfa.initial, symbol))
        )
        transitions[(q_final, symbol)] = q_final if symbol == "1" else sink
        transitions[(sink, symbol)] = sink
    for state in dfa.states():
        for symbol in alphabet:
            if symbol == "1":
                transitions[(copy(state), "1")] = (
                    q_final if state in dfa.accepting else sink
                )
            else:
                transitions[(copy(state), symbol)] = copy(
                    dfa.transition(state, symbol)
                )
    return DFA(num_states, alphabet, transitions, q_initial, {q_final})


def universality_to_trc_instance(nfa):
    """Theorem 3 (2), hardness: NFA for ``L' = (0+1)* a* b a* + L a*``.

    For ``L ⊆ {0,1}*``: ``L' ∈ trC ⟺ L = {0,1}*``.  Input and output
    are NFAs (the reduction keeps the nondeterministic representation,
    which is the whole point of the PSPACE lower bound).
    """
    if not nfa.alphabet <= {"0", "1"}:
        raise ReproError("universality instance must be over {0,1}")
    from ..languages.regex.parser import parse
    from ..languages.nfa import nfa_from_ast

    left = nfa_from_ast(parse("(0+1)*a*ba*"))
    right = nfa.concat(nfa_from_ast(parse("a*")))
    return left.union(right)
