"""RSPQ on DAGs: polynomial *combined* complexity (Theorem 8 base case).

"The result for DAGs is immediate indeed, as every path in a DAG is
simple" — so RSPQ coincides with RPQ and a single product-graph BFS in
``O(|G| · |A_L|)`` answers the query, with the language part of the
input.  This is the directed-treewidth-0 corner of Theorem 8 and the
baseline for the combined-complexity experiment (E11).
"""

from __future__ import annotations

from collections import deque

from ..errors import GraphError
from ..graphs.product import shortest_walk
from ..languages import Language


def is_dag(graph):
    """True iff the db-graph has no directed cycle (Kahn's algorithm)."""
    in_degree = {vertex: 0 for vertex in graph.vertices()}
    for _source, _label, target in graph.edges():
        in_degree[target] += 1
    queue = deque(
        vertex for vertex, degree in in_degree.items() if degree == 0
    )
    seen = 0
    while queue:
        vertex = queue.popleft()
        seen += 1
        for _label, target in graph.out_edges(vertex):
            in_degree[target] -= 1
            if in_degree[target] == 0:
                queue.append(target)
    return seen == len(in_degree)


class DagRspqSolver:
    """Combined-complexity polynomial RSPQ solver for DAG inputs.

    Unlike the data-complexity solvers, the language is a per-query
    argument: the whole point is ``O(|G| · |A_L|)`` with both inputs
    variable.
    """

    def __init__(self, graph, check=True):
        if check and not is_dag(graph):
            raise GraphError("DagRspqSolver requires an acyclic graph")
        self.graph = graph

    def shortest_simple_path(self, language, source, target, ctx=None):
        """Shortest simple L-labeled path via one product BFS.

        In a DAG every walk is a simple path, so the shortest L-walk is
        the answer.
        """
        if isinstance(language, str):
            language = Language(language)
        if ctx is not None:
            ctx.check_deadline()
        return shortest_walk(self.graph, language.dfa, source, target)

    def exists(self, language, source, target, ctx=None):
        """Decision variant (combined complexity, DAG input)."""
        return (
            self.shortest_simple_path(language, source, target, ctx=ctx)
            is not None
        )
