"""Width measures and the Theorem-8 substitution notes.

Theorem 8 states RSPQ(Reg, G) has polynomial combined complexity on
graph classes of bounded *directed treewidth*, by adapting Johnson,
Robertson, Seymour and Thomas's dynamic program over arboreal
decompositions.  Computing arboreal decompositions has no practical
implementation (the original paper itself gives only an approximation
scheme with large hidden constants), so this reproduction covers:

* the DAG corner case exactly (:mod:`repro.algorithms.dag`) — directed
  treewidth 0, and the case the paper singles out as immediate;
* structural *diagnostics* in this module: cycle-space measurements that
  benches use to stratify inputs (a DAG check, a greedy feedback-vertex
  -set upper bound, and a min-degree undirected-treewidth upper bound).

The full arboreal DP is documented as out of scope in DESIGN.md §3.
"""

from __future__ import annotations

from .dag import is_dag


def greedy_feedback_vertex_set(graph):
    """A (non-optimal) feedback vertex set by iterated max-degree removal.

    Returns a set S such that ``graph`` minus S is acyclic.  |S| upper-
    bounds how far the instance is from the tractable DAG regime.
    """
    remaining = graph.copy()
    removed = set()
    while not is_dag(remaining):
        best_vertex = None
        best_score = -1
        for vertex in remaining.vertices():
            score = remaining.out_degree(vertex) * remaining.in_degree(vertex)
            if score > best_score:
                best_score = score
                best_vertex = vertex
        removed.add(best_vertex)
        keep = [v for v in remaining.vertices() if v != best_vertex]
        remaining = remaining.subgraph(keep)
    return removed


def undirected_treewidth_upper_bound(graph):
    """Min-degree-heuristic treewidth bound of the underlying graph.

    The classic elimination-ordering heuristic: repeatedly eliminate a
    minimum-degree vertex, connecting its neighbourhood into a clique;
    the largest degree met is an upper bound on the treewidth.
    """
    neighbours = {vertex: set() for vertex in graph.vertices()}
    for source, _label, target in graph.edges():
        if source != target:
            neighbours[source].add(target)
            neighbours[target].add(source)
    bound = 0
    while neighbours:
        vertex = min(neighbours, key=lambda v: (len(neighbours[v]), repr(v)))
        degree = len(neighbours[vertex])
        bound = max(bound, degree)
        hood = neighbours.pop(vertex)
        for a in hood:
            neighbours[a].discard(vertex)
        for a in hood:
            for b in hood:
                if a != b:
                    neighbours[a].add(b)
    return bound
