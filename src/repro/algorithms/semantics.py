"""Path semantics for regular path queries: walk, trail, simple.

The introduction motivates RSPQs by contrasting three evaluation
semantics for the same regular expression (and SPARQL 1.1's draft
hybrid sits between them):

* **walk** (arbitrary path): vertices and edges may repeat — the
  classical tractable RPQ semantics;
* **trail**: edges must be distinct (SPARQL's "simple path" drafts and
  several engines use this);
* **simple**: vertices must be distinct — the paper's subject.

This module evaluates and counts matches under each semantics so the
semantics-comparison experiment (E13) can show where they disagree.
Trail and simple evaluation are exponential backtracking in general
(both are NP-hard); counting walks is a polynomial DP per length.
"""

from __future__ import annotations

from ..errors import BudgetExceededError
from ..graphs.product import rpq_reachable
from ..languages import Language

WALK = "walk"
TRAIL = "trail"
SIMPLE = "simple"

SEMANTICS = (WALK, TRAIL, SIMPLE)


class SemanticsEvaluator:
    """Evaluate one regular path query under all three semantics."""

    def __init__(self, language, budget=None):
        if isinstance(language, str):
            language = Language(language)
        self.language = language
        self.dfa = language.dfa
        self.budget = budget

    # -- existence -------------------------------------------------------------

    def exists(self, graph, source, target, semantics, ctx=None):
        """Is there a matching path under the given semantics?"""
        if ctx is not None:
            ctx.check_deadline()
        if semantics == WALK:
            return target in rpq_reachable(graph, self.dfa, source)
        if semantics == TRAIL:
            return self._trail_exists(graph, source, target)
        if semantics == SIMPLE:
            from .exact import ExactSolver

            return ExactSolver(self.language, budget=self.budget).exists(
                graph, source, target, ctx=ctx
            )
        raise ValueError("unknown semantics %r" % (semantics,))

    def evaluate_all(self, graph, source, target, ctx=None):
        """Mapping semantics -> bool for one query."""
        return {
            semantics: self.exists(graph, source, target, semantics, ctx=ctx)
            for semantics in SEMANTICS
        }

    def _trail_exists(self, graph, source, target):
        steps = [0]

        def charge():
            steps[0] += 1
            if self.budget is not None and steps[0] > self.budget:
                raise BudgetExceededError(
                    "trail search exceeded %d steps" % self.budget,
                    steps=steps[0],
                )

        used_edges = set()

        def dfs(vertex, state):
            charge()
            if vertex == target and state in self.dfa.accepting:
                return True
            for label, nxt in sorted(graph.out_edges(vertex), key=repr):
                if label not in self.dfa.alphabet:
                    continue
                edge = (vertex, label, nxt)
                if edge in used_edges:
                    continue
                used_edges.add(edge)
                if dfs(nxt, self.dfa.transition(state, label)):
                    return True
                used_edges.discard(edge)
            return False

        graph.require_vertex(source)
        graph.require_vertex(target)
        return dfs(source, self.dfa.initial)

    # -- counting ----------------------------------------------------------------

    def count_walks(self, graph, source, target, max_length):
        """Number of L-labeled walks of length ≤ max_length (poly DP).

        This is the quantity whose explosion the "counting beyond a
        yottabyte" discussion [3] warns about.
        """
        vertices = list(graph.vertices())
        counts = {(source, self.dfa.initial): 1}
        total = 0
        if source == target and self.dfa.initial in self.dfa.accepting:
            total += 1
        for _ in range(max_length):
            next_counts = {}
            for (vertex, state), count in counts.items():
                for label, nxt in graph.out_edges(vertex):
                    if label not in self.dfa.alphabet:
                        continue
                    key = (nxt, self.dfa.transition(state, label))
                    next_counts[key] = next_counts.get(key, 0) + count
            counts = next_counts
            for (vertex, state), count in counts.items():
                if vertex == target and state in self.dfa.accepting:
                    total += count
        return total

    def count_trails(self, graph, source, target, max_length=None):
        """Number of L-labeled trails (edge-distinct); exponential."""
        steps = [0]
        count = [0]

        def charge():
            steps[0] += 1
            if self.budget is not None and steps[0] > self.budget:
                raise BudgetExceededError(
                    "trail counting exceeded %d steps" % self.budget,
                    steps=steps[0],
                )

        used_edges = set()

        def dfs(vertex, state, length):
            charge()
            if vertex == target and state in self.dfa.accepting:
                count[0] += 1
            if max_length is not None and length >= max_length:
                return
            for label, nxt in graph.out_edges(vertex):
                if label not in self.dfa.alphabet:
                    continue
                edge = (vertex, label, nxt)
                if edge in used_edges:
                    continue
                used_edges.add(edge)
                dfs(nxt, self.dfa.transition(state, label), length + 1)
                used_edges.discard(edge)

        dfs(source, self.dfa.initial, 0)
        return count[0]

    def count_simple(self, graph, source, target, max_length=None):
        """Number of simple L-labeled paths; exponential."""
        from .exact import ExactSolver

        return ExactSolver(self.language, budget=self.budget).count_simple_paths(
            graph, source, target, max_length=max_length
        )
