"""Exact RSPQ for arbitrary regular languages (worst-case exponential).

This is the baseline the trichotomy says cannot be avoided for
``L ∉ trC`` (unless NL = NP): a depth-first search over the product
graph ``G × A_L`` that tracks the set of visited vertices to enforce
simplicity.  Two prunings keep it practical on tractable-ish inputs
while leaving the exponential worst case intact:

* *liveness*: a partial path whose product node cannot reach an
  accepting target node even by a non-simple walk is abandoned;
* *admissible bounding* (for shortest-path search): walk distance to the
  goal in the product graph lower-bounds the remaining simple-path
  length.

The search is integer-native over a
:class:`~repro.graphs.view.GraphView`: product nodes pack to
``vertex_id * |Q| + state``, the visited set is a flat bytearray, DFA
transitions become per-label list rows, and the backward goal-distance
BFS walks the view's (label-partitioned) reverse adjacency.  Paths are
materialised back to vertex names only at result construction.

The solver doubles as the ground-truth oracle for the polynomial trC
solver in the test suite.
"""

from __future__ import annotations

from collections import deque

from ..core.product import reverse_transition_rows, transition_rows
from ..execution import ExecutionContext
from ..graphs.dbgraph import Path
from ..graphs.view import as_graph_view
from ..languages import Language
from ..languages.analysis import useful_symbols


class ExactSolver:
    """Backtracking RSPQ solver, correct for every regular language.

    The solver is immutable once constructed; per-query counters and
    budget accounting live in the
    :class:`~repro.execution.ExecutionContext` given to each query, so
    one instance can serve concurrent queries.  A query without an
    explicit context gets a fresh one (budgeted by ``self.budget``) and
    the legacy ``steps`` shim reads the most recent of those.

    Parameters
    ----------
    language:
        :class:`~repro.languages.Language` or regex string.
    budget:
        Default cap on search steps for context-less queries; exceeding
        it raises :class:`~repro.errors.BudgetExceededError` (the worst
        case is exponential, so callers may want a guard).  An explicit
        context's own ``budget`` — possibly None — takes precedence.
    use_reach_pruning:
        Consult the view's label-constrained reachability index: a
        query whose target is provably walk-unreachable from the source
        under L's usable labels returns ``None`` before the backward
        BFS runs, and the goal-distance table is restricted to
        components the source can actually reach (sound — see
        :mod:`repro.graphs.reach`).
    """

    def __init__(self, language, budget=None, use_reach_pruning=True):
        if isinstance(language, str):
            language = Language(language)
        self.language = language
        self.dfa = language.dfa
        self.budget = budget
        self.use_reach_pruning = use_reach_pruning
        #: Symbols occurring in some word of L (the query label mask).
        self.used_symbols = useful_symbols(self.dfa)
        self._legacy_ctx = ExecutionContext(budget=budget)
        # Reverse transition index: (state_after, label) -> states_before.
        # Computed once per solver so the backward product BFS in
        # _goal_distances is O(in-edges) per node instead of scanning
        # every DFA state per incoming edge.
        reverse = {}
        for state_before, label, state_after in self.dfa.transitions():
            reverse.setdefault((state_after, label), []).append(state_before)
        self._reverse_transitions = {
            key: tuple(values) for key, values in reverse.items()
        }

    # -- internals -----------------------------------------------------------

    def _transition_rows(self, view):
        """Per-label transition rows: ``rows[label_id][state] -> state'``.

        ``None`` rows mark graph labels outside the DFA alphabet, so
        the DFS hot loop replaces the string alphabet test plus the
        keyed transition lookup with one list index each.  Shared with
        the vectorized batch executor via :mod:`repro.core.product`.
        """
        return transition_rows(self.dfa, view)

    def _reverse_rows(self, view):
        """``rows[label_id][state] -> states_before`` (``None`` = dead label)."""
        return reverse_transition_rows(
            self.dfa, view, self._reverse_transitions
        )

    # invariant: hot-loop
    def _goal_distances(self, view, target_id, from_source=None,
                        comp_of=None):
        """BFS distance from every product node to an accepting target
        node, ignoring simplicity (admissible heuristic; absent = dead).

        Product nodes pack to ``vertex_id * |Q| + state``; the backward
        BFS walks the view's reverse adjacency (a precompiled reverse
        CSR on compiled graphs).

        ``from_source`` (a component filter from the reachability
        index) drops product nodes whose graph vertex the source can
        never reach under L's usable labels: the forward DFS only ever
        visits source-reachable vertices, so the dropped entries could
        never be read — same answers, smaller backward BFS.  The
        restricted distances stay admissible: every completion of a
        partial solution path lies inside the source-reachable region,
        so its walk distance there lower-bounds the remaining length.
        """
        num_states = self.dfa.num_states
        distances = {}
        queue = deque()
        for final in self.dfa.accepting:
            node = target_id * num_states + final
            distances[node] = 0
            queue.append(node)
        reverse_rows = self._reverse_rows(view)
        in_pairs = view.in_pairs
        while queue:
            node = queue.popleft()
            vertex_id, state = divmod(node, num_states)
            base = distances[node] + 1
            for label_id, source_id in in_pairs(vertex_id):
                row = reverse_rows[label_id]
                if row is None:
                    continue
                if from_source is not None and not (
                    from_source[comp_of[source_id]]
                ):
                    continue
                for state_before in row[state]:
                    previous = source_id * num_states + state_before
                    if previous not in distances:
                        distances[previous] = base
                        queue.append(previous)
        return distances

    @property
    def steps(self):
        """Expansions of the last context-less query (legacy shim)."""
        return self._legacy_ctx.steps

    @steps.setter
    def steps(self, value):
        # invariant: allow=solver-purity (documented legacy stats shim)
        self._legacy_ctx.steps = value

    # -- public API ------------------------------------------------------------

    def shortest_simple_path(self, graph, source, target, weight_fn=None,
                             ctx=None):
        """A shortest simple L-labeled path from source to target, or None.

        ``weight_fn(u, label, v) -> R+`` switches to minimum total
        weight (weights must be strictly positive).
        """
        return self._solve(
            graph, source, target, find_shortest=True, weight_fn=weight_fn,
            ctx=ctx,
        )

    def any_simple_path(self, graph, source, target, ctx=None):
        """Some simple L-labeled path (first found), or None."""
        return self._solve(
            graph, source, target, find_shortest=False, ctx=ctx
        )

    def exists(self, graph, source, target, ctx=None):
        """Decision variant of RSPQ(L)."""
        return self.any_simple_path(graph, source, target, ctx=ctx) is not None

    # invariant: hot-loop
    def _solve(self, graph, source, target, find_shortest, weight_fn=None,
               ctx=None):
        if ctx is None:
            # invariant: allow=solver-purity (documented legacy stats shim)
            ctx = self._legacy_ctx = ExecutionContext(budget=self.budget)
        view = as_graph_view(graph)
        source_id = view.vertex_id(source)
        target_id = view.vertex_id(target)
        if source_id == target_id:
            if self.dfa.initial in self.dfa.accepting:
                return Path.single(view.vertex_at(source_id))
            return None
        from_source = comp_of = None
        if self.use_reach_pruning:
            index = view.reachability()
            mask = view.label_mask(self.used_symbols)
            if not index.can_reach(source_id, target_id, mask):
                # Provably unreachable even with regular-path semantics
                # — the simple-path answer is NOT_FOUND, no search runs.
                return None
            from_source = index.comps_from(source_id, mask)
            comp_of = index.comp_of
        goal_distance = self._goal_distances(
            view, target_id, from_source, comp_of
        )
        transition_rows = self._transition_rows(view)
        num_states = self.dfa.num_states
        accepting = self.dfa.accepting
        start = source_id * num_states + self.dfa.initial
        if start not in goal_distance:
            return None
        out = view.out
        vertex_at = view.vertex_at
        label_at = view.label_at
        best = [None]
        best_metric = [None]
        vertices = [source_id]
        labels = []
        weight_so_far = [0.0]
        visited = bytearray(view.num_vertices)
        visited[source_id] = 1

        def remaining_bound(node):
            # Admissible lower bound on the remaining cost: walk distance
            # in edges (unweighted) or zero (weighted).
            if weight_fn is not None:
                return 0
            return goal_distance[node]

        def current_metric():
            if weight_fn is not None:
                return weight_so_far[0]
            return len(labels)

        def dfs(vertex_id, state):
            ctx.charge_step()
            if best[0] is not None:
                if not find_shortest:
                    return
                if (
                    current_metric()
                    + remaining_bound(vertex_id * num_states + state)
                    >= best_metric[0]
                ):
                    return
            if vertex_id == target_id and state in accepting:
                best[0] = (tuple(vertices), tuple(labels))
                best_metric[0] = current_metric()
                if weight_fn is None:
                    return
                # Weighted: a longer path may still be lighter; fall
                # through so siblings keep searching, but do not extend
                # this complete path further (extensions cannot return
                # to the target without revisiting it).
                return
            for label_id, nxt in out(vertex_id):
                row = transition_rows[label_id]
                if row is None or visited[nxt]:
                    continue
                next_state = row[state]
                node = nxt * num_states + next_state
                if node not in goal_distance:
                    continue
                if weight_fn is None:
                    step = 1
                else:
                    step = weight_fn(
                        vertex_at(vertex_id), label_at(label_id),
                        vertex_at(nxt),
                    )
                    if step <= 0:
                        raise ValueError(
                            "edge weights must be strictly positive"
                        )
                if best[0] is not None and find_shortest and (
                    current_metric() + step + remaining_bound(node)
                    >= best_metric[0]
                ):
                    continue
                vertices.append(nxt)
                labels.append(label_id)
                weight_so_far[0] += step
                visited[nxt] = 1
                dfs(nxt, next_state)
                visited[nxt] = 0
                weight_so_far[0] -= step
                vertices.pop()
                labels.pop()
                if best[0] is not None and not find_shortest:
                    return

        dfs(source_id, self.dfa.initial)
        if best[0] is None:
            return None
        return view.path(*best[0])

    def count_simple_paths(self, graph, source, target, max_length=None,
                           ctx=None):
        """Number of distinct simple L-labeled paths (exponential walk).

        Used by the semantics-comparison experiment; ``max_length``
        bounds the search depth when given.
        """
        if ctx is None:
            # invariant: allow=solver-purity (documented legacy stats shim)
            ctx = self._legacy_ctx = ExecutionContext(budget=self.budget)
        view = as_graph_view(graph)
        source_id = view.vertex_id(source)
        target_id = view.vertex_id(target)
        if source_id == target_id:
            # Only the empty path is simple from x to x.
            return 1 if self.dfa.initial in self.dfa.accepting else 0
        transition_rows = self._transition_rows(view)
        accepting = self.dfa.accepting
        out = view.out
        count = [0]
        visited = bytearray(view.num_vertices)
        visited[source_id] = 1
        length = [0]

        def dfs(vertex_id, state):
            ctx.charge_step()
            if vertex_id == target_id and state in accepting:
                count[0] += 1
            for label_id, nxt in out(vertex_id):
                row = transition_rows[label_id]
                if row is None or visited[nxt]:
                    continue
                if max_length is not None and length[0] >= max_length:
                    continue
                visited[nxt] = 1
                length[0] += 1
                dfs(nxt, row[state])
                length[0] -= 1
                visited[nxt] = 0

        dfs(source_id, self.dfa.initial)
        return count[0]
