"""Exact RSPQ for arbitrary regular languages (worst-case exponential).

This is the baseline the trichotomy says cannot be avoided for
``L ∉ trC`` (unless NL = NP): a depth-first search over the product
graph ``G × A_L`` that tracks the set of visited vertices to enforce
simplicity.  Two prunings keep it practical on tractable-ish inputs
while leaving the exponential worst case intact:

* *liveness*: a partial path whose product node cannot reach an
  accepting target node even by a non-simple walk is abandoned;
* *admissible bounding* (for shortest-path search): walk distance to the
  goal in the product graph lower-bounds the remaining simple-path
  length.

The solver doubles as the ground-truth oracle for the polynomial trC
solver in the test suite.
"""

from __future__ import annotations

from collections import deque

from ..execution import ExecutionContext
from ..graphs.dbgraph import Path, sorted_out_edges_fn
from ..languages import Language


class ExactSolver:
    """Backtracking RSPQ solver, correct for every regular language.

    The solver is immutable once constructed; per-query counters and
    budget accounting live in the
    :class:`~repro.execution.ExecutionContext` given to each query, so
    one instance can serve concurrent queries.  A query without an
    explicit context gets a fresh one (budgeted by ``self.budget``) and
    the legacy ``steps`` shim reads the most recent of those.

    Parameters
    ----------
    language:
        :class:`~repro.languages.Language` or regex string.
    budget:
        Default cap on search steps for context-less queries; exceeding
        it raises :class:`~repro.errors.BudgetExceededError` (the worst
        case is exponential, so callers may want a guard).  An explicit
        context's own ``budget`` — possibly None — takes precedence.
    """

    def __init__(self, language, budget=None):
        if isinstance(language, str):
            language = Language(language)
        self.language = language
        self.dfa = language.dfa
        self.budget = budget
        self._legacy_ctx = ExecutionContext(budget=budget)
        # Reverse transition index: (state_after, label) -> states_before.
        # Computed once per solver so the backward product BFS in
        # _goal_distances is O(in-edges) per node instead of scanning
        # every DFA state per incoming edge.
        reverse = {}
        for state_before, label, state_after in self.dfa.transitions():
            reverse.setdefault((state_after, label), []).append(state_before)
        self._reverse_transitions = {
            key: tuple(values) for key, values in reverse.items()
        }

    # -- internals -----------------------------------------------------------

    def _goal_distances(self, graph, target):
        """BFS distance from every product node to an accepting target
        node, ignoring simplicity (admissible heuristic; None = dead)."""
        distances = {}
        queue = deque()
        for final in self.dfa.accepting:
            node = (target, final)
            distances[node] = 0
            queue.append(node)
        # Backward BFS over the product graph.
        empty = ()
        while queue:
            vertex, state = queue.popleft()
            base = distances[(vertex, state)]
            for label, source in graph.in_edges(vertex):
                if label not in self.dfa.alphabet:
                    continue
                for state_before in self._reverse_transitions.get(
                    (state, label), empty
                ):
                    node = (source, state_before)
                    if node not in distances:
                        distances[node] = base + 1
                        queue.append(node)
        return distances

    @property
    def steps(self):
        """Expansions of the last context-less query (legacy shim)."""
        return self._legacy_ctx.steps

    @steps.setter
    def steps(self, value):
        self._legacy_ctx.steps = value

    # -- public API ------------------------------------------------------------

    def shortest_simple_path(self, graph, source, target, weight_fn=None,
                             ctx=None):
        """A shortest simple L-labeled path from source to target, or None.

        ``weight_fn(u, label, v) -> R+`` switches to minimum total
        weight (weights must be strictly positive).
        """
        return self._solve(
            graph, source, target, find_shortest=True, weight_fn=weight_fn,
            ctx=ctx,
        )

    def any_simple_path(self, graph, source, target, ctx=None):
        """Some simple L-labeled path (first found), or None."""
        return self._solve(
            graph, source, target, find_shortest=False, ctx=ctx
        )

    def exists(self, graph, source, target, ctx=None):
        """Decision variant of RSPQ(L)."""
        return self.any_simple_path(graph, source, target, ctx=ctx) is not None

    def _solve(self, graph, source, target, find_shortest, weight_fn=None,
               ctx=None):
        if ctx is None:
            ctx = self._legacy_ctx = ExecutionContext(budget=self.budget)
        graph.require_vertex(source)
        graph.require_vertex(target)
        if source == target:
            if self.dfa.initial in self.dfa.accepting:
                return Path.single(source)
            return None
        goal_distance = self._goal_distances(graph, target)
        sorted_out = sorted_out_edges_fn(graph)
        start = (source, self.dfa.initial)
        if start not in goal_distance:
            return None
        best = [None]
        best_metric = [None]
        vertices = [source]
        labels = []
        weight_so_far = [0.0]
        visited = {source}

        def remaining_bound(node):
            # Admissible lower bound on the remaining cost: walk distance
            # in edges (unweighted) or zero (weighted).
            if weight_fn is not None:
                return 0
            return goal_distance[node]

        def current_metric():
            if weight_fn is not None:
                return weight_so_far[0]
            return len(labels)

        def dfs(vertex, state):
            ctx.charge_step()
            if best[0] is not None:
                if not find_shortest:
                    return
                if (
                    current_metric() + remaining_bound((vertex, state))
                    >= best_metric[0]
                ):
                    return
            if vertex == target and state in self.dfa.accepting:
                best[0] = Path(tuple(vertices), tuple(labels))
                best_metric[0] = current_metric()
                if weight_fn is None:
                    return
                # Weighted: a longer path may still be lighter; fall
                # through so siblings keep searching, but do not extend
                # this complete path further (extensions cannot return
                # to the target without revisiting it).
                return
            for label, nxt in sorted_out(vertex):
                if label not in self.dfa.alphabet or nxt in visited:
                    continue
                next_state = self.dfa.transition(state, label)
                node = (nxt, next_state)
                if node not in goal_distance:
                    continue
                step = 1 if weight_fn is None else weight_fn(vertex, label, nxt)
                if weight_fn is not None and step <= 0:
                    raise ValueError(
                        "edge weights must be strictly positive"
                    )
                if best[0] is not None and find_shortest and (
                    current_metric() + step + remaining_bound(node)
                    >= best_metric[0]
                ):
                    continue
                vertices.append(nxt)
                labels.append(label)
                weight_so_far[0] += step
                visited.add(nxt)
                dfs(nxt, next_state)
                visited.discard(nxt)
                weight_so_far[0] -= step
                vertices.pop()
                labels.pop()
                if best[0] is not None and not find_shortest:
                    return

        dfs(source, self.dfa.initial)
        return best[0]

    def count_simple_paths(self, graph, source, target, max_length=None,
                           ctx=None):
        """Number of distinct simple L-labeled paths (exponential walk).

        Used by the semantics-comparison experiment; ``max_length``
        bounds the search depth when given.
        """
        if ctx is None:
            ctx = self._legacy_ctx = ExecutionContext(budget=self.budget)
        graph.require_vertex(source)
        graph.require_vertex(target)
        count = [0]
        visited = {source}
        length = [0]

        def dfs(vertex, state):
            ctx.charge_step()
            if vertex == target and state in self.dfa.accepting:
                count[0] += 1
            for label, nxt in graph.out_edges(vertex):
                if label not in self.dfa.alphabet or nxt in visited:
                    continue
                if max_length is not None and length[0] >= max_length:
                    continue
                visited.add(nxt)
                length[0] += 1
                dfs(nxt, self.dfa.transition(state, label))
                length[0] -= 1
                visited.discard(nxt)

        if source == target:
            # Only the empty path is simple from x to x.
            return 1 if self.dfa.initial in self.dfa.accepting else 0
        dfs(source, self.dfa.initial)
        return count[0]
