"""Per-query execution state, split out of the solver cores.

Historically every solver carried its own mutable counters —
``ExactSolver.steps``, ``FiniteLanguageSolver.words_tried``,
``TractableSolver.last_stats`` — which made a solver instance a
single-query object: two concurrent queries through one cached
:class:`~repro.engine.plan.QueryPlan` would trample each other's
counters and budget accounting.

:class:`ExecutionContext` is the fix.  It owns everything that varies
per query:

* **work counters** — exact-solver expansions (``steps``), finite-
  solver words tried (``words_tried``), and the tractable solver's
  anchored-DFS statistics (``candidates``, ``completions``,
  ``dfs_steps``, ``gap_bfs``);
* **budget accounting** — an optional cap on exact-solver expansions,
  enforced with :class:`~repro.errors.BudgetExceededError` exactly as
  the legacy ``ExactSolver(budget=...)`` did;
* **an optional wall-clock deadline** — checked every
  ``deadline_check_interval`` charges so the hot loops stay cheap,
  raising :class:`~repro.errors.DeadlineExceededError`.

With the context threaded through, each solver's
``shortest_simple_path`` / ``exists`` is a pure function of
``(graph, source, target, ctx)``: one compiled solver (inside a frozen,
cached plan) can serve any number of concurrent queries, each carrying
its own context.  Calling a solver *without* a context keeps the legacy
behaviour — the solver creates a fresh context per query and remembers
it, so the historical ``solver.steps`` / ``solver.words_tried`` /
``solver.last_stats`` shims still read the most recent context-less
query.  Those shims are inherently single-threaded; concurrent callers
must pass explicit contexts (the batch engine always does).
"""

from __future__ import annotations

import time

from .errors import BudgetExceededError, DeadlineExceededError

#: How many charges pass between two wall-clock reads when a deadline
#: is set.  Large enough that ``perf_counter`` stays off the hot path,
#: small enough that runaway searches are caught within milliseconds.
DEADLINE_CHECK_INTERVAL = 256


class ExecutionContext:
    """Mutable per-query state: work counters, budget, deadline.

    Create one context per query and hand it to the solver; never share
    a live context between concurrent queries (counters would mix —
    exactly the disease this class cures in the solvers).

    Parameters
    ----------
    budget:
        Optional cap on exact-solver search steps; exceeding it raises
        :class:`~repro.errors.BudgetExceededError`.  Must be positive:
        a zero or negative budget can never admit a single step, so it
        is rejected with :class:`ValueError` at construction instead of
        failing every query obscurely.
    deadline_seconds:
        Optional wall-clock allowance for this query, measured from
        context creation; exceeding it raises
        :class:`~repro.errors.DeadlineExceededError` at the next
        periodic check.  ``0.0`` is permitted and means
        already-expired (tests use it to make deadlines bite
        deterministically); negative values are rejected with
        :class:`ValueError`.
    deadline_check_interval:
        Charges between deadline checks (tests shrink this to make the
        deadline bite immediately).
    """

    __slots__ = (
        "budget",
        "deadline",
        "steps",
        "words_tried",
        "candidates",
        "completions",
        "dfs_steps",
        "gap_bfs",
        "_deadline_check_interval",
        "_charges_until_deadline_check",
    )

    def __init__(self, budget=None, deadline_seconds=None,
                 deadline_check_interval=DEADLINE_CHECK_INTERVAL):
        if budget is not None and budget <= 0:
            raise ValueError(
                "budget must be a positive step count or None for "
                "unbounded, got %r" % (budget,)
            )
        self.budget = budget
        if deadline_seconds is None:
            self.deadline = None
        elif deadline_seconds < 0:
            raise ValueError(
                "deadline_seconds must be >= 0 (0 means already "
                "expired) or None for no deadline, got %r"
                % (deadline_seconds,)
            )
        else:
            self.deadline = time.perf_counter() + deadline_seconds
        self.steps = 0
        self.words_tried = 0
        self.candidates = 0
        self.completions = 0
        self.dfs_steps = 0
        self.gap_bfs = 0
        if deadline_check_interval < 1:
            raise ValueError("deadline_check_interval must be >= 1")
        self._deadline_check_interval = deadline_check_interval
        self._charges_until_deadline_check = deadline_check_interval

    # -- charging (solver hot paths) ---------------------------------------------

    def charge_step(self):
        """One exact-solver expansion: budget + deadline accounting."""
        self.steps += 1
        if self.budget is not None and self.steps > self.budget:
            raise BudgetExceededError(
                "exact solver exceeded its %d-step budget" % self.budget,
                steps=self.steps,
            )
        if self.deadline is not None:
            self._maybe_check_deadline()

    def charge_word(self):
        """One finite-language word attempt."""
        self.words_tried += 1
        if self.deadline is not None:
            self._maybe_check_deadline()

    def charge_dfs_step(self):
        """One anchored-DFS step of the tractable solver."""
        self.dfs_steps += 1
        if self.deadline is not None:
            self._maybe_check_deadline()

    def charge_gap_bfs(self):
        """One gap-filling BFS/Dijkstra of the tractable solver."""
        self.gap_bfs += 1
        if self.deadline is not None:
            self._maybe_check_deadline()

    def count_candidate(self):
        self.candidates += 1

    def count_completion(self):
        self.completions += 1

    # -- deadline ----------------------------------------------------------------

    def _maybe_check_deadline(self):
        self._charges_until_deadline_check -= 1
        if self._charges_until_deadline_check > 0:
            return
        self._charges_until_deadline_check = self._deadline_check_interval
        self.check_deadline()

    def check_deadline(self):
        """Raise if the wall-clock deadline has passed (no-op without one)."""
        if self.deadline is not None and time.perf_counter() > self.deadline:
            raise DeadlineExceededError(
                "query exceeded its wall-clock deadline",
                steps=self.steps,
            )

    def __repr__(self):
        return (
            "ExecutionContext(steps=%d, words_tried=%d, dfs_steps=%d, "
            "candidates=%d, completions=%d, gap_bfs=%d, budget=%r)"
            % (
                self.steps,
                self.words_tried,
                self.dfs_steps,
                self.candidates,
                self.completions,
                self.gap_bfs,
                self.budget,
            )
        )
