"""Per-query execution state, split out of the solver cores.

Historically every solver carried its own mutable counters —
``ExactSolver.steps``, ``FiniteLanguageSolver.words_tried``,
``TractableSolver.last_stats`` — which made a solver instance a
single-query object: two concurrent queries through one cached
:class:`~repro.engine.plan.QueryPlan` would trample each other's
counters and budget accounting.

:class:`ExecutionContext` is the fix.  It owns everything that varies
per query:

* **work counters** — exact-solver expansions (``steps``), finite-
  solver words tried (``words_tried``), and the tractable solver's
  anchored-DFS statistics (``candidates``, ``completions``,
  ``dfs_steps``, ``gap_bfs``);
* **budget accounting** — an optional cap on exact-solver expansions,
  enforced with :class:`~repro.errors.BudgetExceededError` exactly as
  the legacy ``ExactSolver(budget=...)`` did;
* **an optional wall-clock deadline** — checked every
  ``deadline_check_interval`` charges so the hot loops stay cheap,
  raising :class:`~repro.errors.DeadlineExceededError`.

With the context threaded through, each solver's
``shortest_simple_path`` / ``exists`` is a pure function of
``(graph, source, target, ctx)``: one compiled solver (inside a frozen,
cached plan) can serve any number of concurrent queries, each carrying
its own context.  Calling a solver *without* a context keeps the legacy
behaviour — the solver creates a fresh context per query and remembers
it, so the historical ``solver.steps`` / ``solver.words_tried`` /
``solver.last_stats`` shims still read the most recent context-less
query.  Those shims are inherently single-threaded; concurrent callers
must pass explicit contexts (the batch engine always does).
"""

from __future__ import annotations

import time

from .errors import BudgetExceededError, DeadlineExceededError

#: How many charges pass between two wall-clock reads when a deadline
#: is set.  Large enough that ``perf_counter`` stays off the hot path,
#: small enough that runaway searches are caught within milliseconds.
DEADLINE_CHECK_INTERVAL = 256


class ExecutionContext:
    """Mutable per-query state: work counters, budget, deadline.

    Create one context per query and hand it to the solver; never share
    a live context between concurrent queries (counters would mix —
    exactly the disease this class cures in the solvers).

    Parameters
    ----------
    budget:
        Optional cap on exact-solver search steps; exceeding it raises
        :class:`~repro.errors.BudgetExceededError`.  Must be positive:
        a zero or negative budget can never admit a single step, so it
        is rejected with :class:`ValueError` at construction instead of
        failing every query obscurely.
    deadline_seconds:
        Optional wall-clock allowance for this query, measured from
        context creation; exceeding it raises
        :class:`~repro.errors.DeadlineExceededError` at the next
        periodic check.  ``0.0`` is permitted and means
        already-expired (tests use it to make deadlines bite
        deterministically); negative values are rejected with
        :class:`ValueError`.
    deadline_check_interval:
        Charges between deadline checks (tests shrink this to make the
        deadline bite immediately).
    """

    __slots__ = (
        "budget",
        "deadline",
        "steps",
        "words_tried",
        "candidates",
        "completions",
        "dfs_steps",
        "gap_bfs",
        "_deadline_check_interval",
        "_charges_until_deadline_check",
    )

    def __init__(self, budget=None, deadline_seconds=None,
                 deadline_check_interval=DEADLINE_CHECK_INTERVAL):
        if budget is not None and budget <= 0:
            raise ValueError(
                "budget must be a positive step count or None for "
                "unbounded, got %r" % (budget,)
            )
        self.budget = budget
        if deadline_seconds is None:
            self.deadline = None
        elif deadline_seconds < 0:
            raise ValueError(
                "deadline_seconds must be >= 0 (0 means already "
                "expired) or None for no deadline, got %r"
                % (deadline_seconds,)
            )
        else:
            self.deadline = time.perf_counter() + deadline_seconds
        self.steps = 0
        self.words_tried = 0
        self.candidates = 0
        self.completions = 0
        self.dfs_steps = 0
        self.gap_bfs = 0
        if deadline_check_interval < 1:
            raise ValueError("deadline_check_interval must be >= 1")
        self._deadline_check_interval = deadline_check_interval
        self._charges_until_deadline_check = deadline_check_interval

    # -- charging (solver hot paths) ---------------------------------------------

    def charge_step(self):
        """One exact-solver expansion: budget + deadline accounting."""
        self.steps += 1
        if self.budget is not None and self.steps > self.budget:
            raise BudgetExceededError(
                "exact solver exceeded its %d-step budget" % self.budget,
                steps=self.steps,
            )
        if self.deadline is not None:
            self._maybe_check_deadline()

    def charge_word(self):
        """One finite-language word attempt."""
        self.words_tried += 1
        if self.deadline is not None:
            self._maybe_check_deadline()

    def charge_dfs_step(self):
        """One anchored-DFS step of the tractable solver."""
        self.dfs_steps += 1
        if self.deadline is not None:
            self._maybe_check_deadline()

    def charge_gap_bfs(self):
        """One gap-filling BFS/Dijkstra of the tractable solver."""
        self.gap_bfs += 1
        if self.deadline is not None:
            self._maybe_check_deadline()

    def count_candidate(self):
        self.candidates += 1

    def count_completion(self):
        self.completions += 1

    # -- portfolio rung slicing ---------------------------------------------------

    def remaining_budget(self):
        """Steps left under the budget (``None`` = unbounded)."""
        if self.budget is None:
            return None
        return max(0, self.budget - self.steps)

    def remaining_seconds(self):
        """Wall-clock left before the deadline (``None`` = no deadline)."""
        if self.deadline is None:
            return None
        return max(0.0, self.deadline - time.perf_counter())

    def child(self, budget=None, seconds=None):
        """A fresh context for one portfolio rung, capped by this one.

        ``budget`` / ``seconds`` request the rung's slice; the child
        never receives more than this context has left, so a ladder of
        children can never overspend the parent's contract.  Raises
        :class:`~repro.errors.BudgetExceededError` /
        :class:`~repro.errors.DeadlineExceededError` when nothing
        remains to slice — the caller's rung could not have run at
        all.  Fold the child's counters back with :meth:`absorb` when
        the rung finishes (or fails).
        """
        remaining = self.remaining_budget()
        if budget is None:
            child_budget = remaining
        elif remaining is None:
            child_budget = budget
        else:
            child_budget = min(budget, remaining)
        if child_budget is not None and child_budget < 1:
            raise BudgetExceededError(
                "exact solver exceeded its %d-step budget"
                % (self.budget or 0),
                steps=self.steps,
            )
        left = self.remaining_seconds()
        if seconds is None:
            child_seconds = left
        elif left is None:
            child_seconds = seconds
        else:
            child_seconds = min(seconds, left)
        if child_seconds is not None and child_seconds <= 0.0:
            raise DeadlineExceededError(
                "query exceeded its wall-clock deadline",
                steps=self.steps,
            )
        return ExecutionContext(
            budget=child_budget,
            deadline_seconds=child_seconds,
            deadline_check_interval=self._deadline_check_interval,
        )

    def absorb(self, child):
        """Fold a rung child's work counters into this context.

        Pure accounting: the child already enforced its (parent-capped)
        budget and deadline while running, so absorbing never raises —
        the parent's ``steps`` may land exactly at its budget but not
        beyond it while further rungs still run (each new child slices
        from what genuinely remains).
        """
        self.steps += child.steps
        self.words_tried += child.words_tried
        self.candidates += child.candidates
        self.completions += child.completions
        self.dfs_steps += child.dfs_steps
        self.gap_bfs += child.gap_bfs

    # -- deadline ----------------------------------------------------------------

    def _maybe_check_deadline(self):
        self._charges_until_deadline_check -= 1
        if self._charges_until_deadline_check > 0:
            return
        self._charges_until_deadline_check = self._deadline_check_interval
        self.check_deadline()

    def check_deadline(self):
        """Raise if the wall-clock deadline has passed (no-op without one)."""
        if self.deadline is not None and time.perf_counter() > self.deadline:
            raise DeadlineExceededError(
                "query exceeded its wall-clock deadline",
                steps=self.steps,
            )

    def __repr__(self):
        return (
            "ExecutionContext(steps=%d, words_tried=%d, dfs_steps=%d, "
            "candidates=%d, completions=%d, gap_bfs=%d, budget=%r)"
            % (
                self.steps,
                self.words_tried,
                self.dfs_steps,
                self.candidates,
                self.completions,
                self.gap_bfs,
                self.budget,
            )
        )


class GroupExecution:
    """Group-level budget/deadline accounting for one shared sweep.

    A vectorized batch sweep (:mod:`repro.engine.vectorized`) advances
    many queries through one product-graph expansion, but budgets and
    deadlines are *per-query* contracts.  This class keeps them that
    way: every member query owns its own :class:`ExecutionContext`,
    and each shared expansion is charged to **every member it
    advanced** — group execution never lets one query ride another's
    budget.  A member whose budget or deadline trips is peeled out of
    the group (recorded in :attr:`expired`); the caller drops it from
    the sweep and re-runs it per query, where the fresh context fails
    it exactly as serial execution would.

    Parameters
    ----------
    contexts:
        ``member -> ExecutionContext`` for every query in the group
        (members are the caller's slot keys, e.g. bit positions).
    """

    __slots__ = ("_contexts", "expired")

    def __init__(self, contexts: "dict[int, ExecutionContext]") -> None:
        self._contexts = dict(contexts)
        #: ``member -> error`` for members whose budget/deadline tripped.
        self.expired: dict[int, Exception] = {}

    def charge(self, members: "list[int]") -> "list[int]":
        """Charge one shared expansion to each listed member.

        Returns the members peeled by this charge (budget or deadline
        exceeded); their contexts stop being charged and the error is
        kept in :attr:`expired`.
        """
        peeled = []
        contexts = self._contexts
        for member in members:
            ctx = contexts.get(member)
            if ctx is None:
                continue
            try:
                ctx.charge_step()
            except (BudgetExceededError, DeadlineExceededError) as err:
                self.expired[member] = err
                del contexts[member]
                peeled.append(member)
        return peeled

    def steps_of(self, member: int) -> int:
        """Sweep expansions charged to ``member`` so far."""
        ctx = self._contexts.get(member)
        if ctx is not None:
            return ctx.steps
        # Peeled members keep their final count via the saved error —
        # the context is gone, but the error carries the step total.
        err = self.expired.get(member)
        steps = getattr(err, "steps", None)
        return 0 if steps is None else steps

    def active_members(self) -> "list[int]":
        """Members still being charged (insertion order)."""
        return list(self._contexts)
