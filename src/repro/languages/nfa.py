"""Nondeterministic finite automata with ε-transitions.

This module provides the NFA data structure used as the bridge between
regular expressions and DFAs, plus the automaton combinators the paper's
constructions require (concatenation powers for ``Loop(q)^M``, products
with DFAs for emptiness tests without determinization, reversal, ...).

States are opaque hashable objects; the combinators generate fresh
integer states internally.  ``None`` is the ε symbol.
"""

from __future__ import annotations

from collections import deque

from ..errors import AutomatonError
from .regex import ast as rx

EPSILON = None


class NFA:
    """An NFA with ε-moves.

    Parameters
    ----------
    states:
        Iterable of hashable state identifiers.
    alphabet:
        Iterable of one-character symbols (ε excluded).
    transitions:
        Mapping ``state -> iterable of (symbol_or_None, target)`` pairs.
    initial:
        Iterable of initial states.
    accepting:
        Iterable of accepting states.
    """

    def __init__(self, states, alphabet, transitions, initial, accepting):
        self.states = frozenset(states)
        self.alphabet = frozenset(alphabet)
        self.initial = frozenset(initial)
        self.accepting = frozenset(accepting)
        self._moves = {state: [] for state in self.states}
        for state, arcs in transitions.items():
            if state not in self._moves:
                raise AutomatonError("transition from unknown state %r" % (state,))
            for symbol, target in arcs:
                if target not in self.states:
                    raise AutomatonError(
                        "transition to unknown state %r" % (target,)
                    )
                if symbol is not EPSILON and symbol not in self.alphabet:
                    raise AutomatonError("unknown symbol %r" % (symbol,))
                self._moves[state].append((symbol, target))
        missing = (self.initial | self.accepting) - self.states
        if missing:
            raise AutomatonError("unknown initial/accepting states %r" % (missing,))

    # -- basic queries -------------------------------------------------------

    def arcs_from(self, state):
        """List of ``(symbol, target)`` pairs leaving ``state``."""
        return list(self._moves[state])

    def num_states(self):
        return len(self.states)

    def epsilon_closure(self, states):
        """All states reachable from ``states`` by ε-moves alone."""
        closure = set(states)
        stack = list(states)
        while stack:
            state = stack.pop()
            for symbol, target in self._moves[state]:
                if symbol is EPSILON and target not in closure:
                    closure.add(target)
                    stack.append(target)
        return frozenset(closure)

    def step(self, states, symbol):
        """ε-closure of the states reachable by one ``symbol`` move."""
        direct = set()
        for state in states:
            for move_symbol, target in self._moves[state]:
                if move_symbol == symbol:
                    direct.add(target)
        return self.epsilon_closure(direct)

    def accepts(self, word):
        """Membership test by on-the-fly subset simulation."""
        current = self.epsilon_closure(self.initial)
        for symbol in word:
            current = self.step(current, symbol)
            if not current:
                return False
        return bool(current & self.accepting)

    # -- language queries ----------------------------------------------------

    def is_empty(self):
        """True iff the recognised language is empty."""
        return self.shortest_accepted() is None

    def shortest_accepted(self):
        """A shortest accepted word, or ``None`` if the language is empty.

        Uses 0-1 BFS: ε-arcs cost nothing and are expanded first so words
        are discovered in nondecreasing length order.
        """
        best = {}
        queue = deque()
        for state in self.epsilon_closure(self.initial):
            best[state] = ""
            queue.append(state)
        while queue:
            state = queue.popleft()
            word = best[state]
            if state in self.accepting:
                return word
            for symbol, target in self._moves[state]:
                next_word = word if symbol is EPSILON else word + symbol
                if target in best and len(best[target]) <= len(next_word):
                    continue
                best[target] = next_word
                if symbol is EPSILON:
                    queue.appendleft(target)
                else:
                    queue.append(target)
        return None

    # -- combinators ----------------------------------------------------------

    def reverse(self):
        """NFA for the reversed language."""
        transitions = {state: [] for state in self.states}
        for state in self.states:
            for symbol, target in self._moves[state]:
                transitions[target].append((symbol, state))
        return NFA(
            self.states,
            self.alphabet,
            transitions,
            initial=self.accepting,
            accepting=self.initial,
        )

    def _relabel(self, offset):
        """Copy with integer states shifted by ``offset`` (internal)."""
        mapping = {}
        for index, state in enumerate(sorted(self.states, key=repr)):
            mapping[state] = offset + index
        transitions = {}
        for state in self.states:
            transitions[mapping[state]] = [
                (symbol, mapping[target]) for symbol, target in self._moves[state]
            ]
        return (
            NFA(
                mapping.values(),
                self.alphabet,
                transitions,
                initial={mapping[s] for s in self.initial},
                accepting={mapping[s] for s in self.accepting},
            ),
            offset + len(mapping),
        )

    def concat(self, other):
        """NFA for the concatenation ``L(self) · L(other)``."""
        left, next_id = self._relabel(0)
        right, _ = other._relabel(next_id)
        transitions = {}
        for nfa in (left, right):
            for state in nfa.states:
                transitions[state] = list(nfa._moves[state])
        for state in left.accepting:
            for target in right.initial:
                transitions[state].append((EPSILON, target))
        return NFA(
            left.states | right.states,
            self.alphabet | other.alphabet,
            transitions,
            initial=left.initial,
            accepting=right.accepting,
        )

    def union(self, other):
        """NFA for ``L(self) ∪ L(other)``."""
        left, next_id = self._relabel(0)
        right, _ = other._relabel(next_id)
        transitions = {}
        for nfa in (left, right):
            for state in nfa.states:
                transitions[state] = list(nfa._moves[state])
        return NFA(
            left.states | right.states,
            self.alphabet | other.alphabet,
            transitions,
            initial=left.initial | right.initial,
            accepting=left.accepting | right.accepting,
        )

    def power(self, exponent):
        """NFA for ``L(self)^exponent`` (``exponent >= 0``)."""
        if exponent < 0:
            raise ValueError("exponent must be non-negative")
        if exponent == 0:
            return NFA([0], self.alphabet, {0: []}, initial=[0], accepting=[0])
        result = self
        for _ in range(exponent - 1):
            result = result.concat(self)
        return result

    def intersect_dfa(self, dfa, dfa_initial=None, dfa_accepting=None):
        """NFA for ``L(self) ∩ L'`` where ``L'`` is a DFA language.

        ``dfa_initial``/``dfa_accepting`` override the DFA's own initial
        state and accepting set, which lets callers intersect with a
        quotient language ``L_q`` or its complement without building new
        DFA objects.
        """
        start_q = dfa.initial if dfa_initial is None else dfa_initial
        finals = dfa.accepting if dfa_accepting is None else frozenset(dfa_accepting)
        start_states = {(s, start_q) for s in self.initial}
        states = set(start_states)
        transitions = {state: [] for state in start_states}
        queue = deque(start_states)
        while queue:
            nfa_state, dfa_state = queue.popleft()
            for symbol, target in self._moves[nfa_state]:
                if symbol is EPSILON:
                    pair = (target, dfa_state)
                else:
                    if symbol not in dfa.alphabet:
                        continue
                    pair = (target, dfa.transition(dfa_state, symbol))
                if pair not in states:
                    states.add(pair)
                    transitions[pair] = []
                    queue.append(pair)
                transitions[(nfa_state, dfa_state)].append((symbol, pair))
        accepting = {
            (nfa_state, dfa_state)
            for (nfa_state, dfa_state) in states
            if nfa_state in self.accepting and dfa_state in finals
        }
        return NFA(states, self.alphabet, transitions, start_states, accepting)


def literal_nfa(symbol):
    """NFA recognising the single-letter word ``symbol``."""
    return NFA(
        [0, 1], [symbol], {0: [(symbol, 1)], 1: []}, initial=[0], accepting=[1]
    )


def epsilon_nfa():
    """NFA recognising {ε}."""
    return NFA([0], [], {0: []}, initial=[0], accepting=[0])


def empty_nfa():
    """NFA recognising the empty language."""
    return NFA([0], [], {0: []}, initial=[0], accepting=[])


def word_nfa(word):
    """NFA recognising exactly ``word``."""
    if not word:
        return epsilon_nfa()
    states = list(range(len(word) + 1))
    transitions = {i: [] for i in states}
    for i, symbol in enumerate(word):
        transitions[i].append((symbol, i + 1))
    return NFA(states, set(word), transitions, initial=[0], accepting=[len(word)])


def star_nfa(inner):
    """NFA for ``L(inner)*`` (fresh initial+accepting hub state)."""
    shifted, next_id = inner._relabel(0)
    hub = next_id
    transitions = {state: list(shifted._moves[state]) for state in shifted.states}
    transitions[hub] = [(EPSILON, target) for target in shifted.initial]
    for state in shifted.accepting:
        transitions[state].append((EPSILON, hub))
    return NFA(
        shifted.states | {hub},
        inner.alphabet,
        transitions,
        initial=[hub],
        accepting=[hub],
    )


def nfa_from_ast(node):
    """Thompson-style construction: regex AST -> NFA."""
    if isinstance(node, rx.Empty):
        return empty_nfa()
    if isinstance(node, rx.Epsilon):
        return epsilon_nfa()
    if isinstance(node, rx.Literal):
        return literal_nfa(node.symbol)
    if isinstance(node, rx.CharClass):
        result = literal_nfa(node.symbols[0])
        for symbol in node.symbols[1:]:
            result = result.union(literal_nfa(symbol))
        return result
    if isinstance(node, rx.Concat):
        result = nfa_from_ast(node.parts[0])
        for part in node.parts[1:]:
            result = result.concat(nfa_from_ast(part))
        return result
    if isinstance(node, rx.Union):
        result = nfa_from_ast(node.parts[0])
        for part in node.parts[1:]:
            result = result.union(nfa_from_ast(part))
        return result
    if isinstance(node, rx.Star):
        return star_nfa(nfa_from_ast(node.inner))
    if isinstance(node, rx.Plus):
        inner = nfa_from_ast(node.inner)
        return inner.concat(star_nfa(inner))
    if isinstance(node, rx.Optional):
        return nfa_from_ast(node.inner).union(epsilon_nfa())
    if isinstance(node, rx.Repeat):
        inner = nfa_from_ast(node.inner)
        required = inner.power(node.low)
        if node.high is None:
            return required.concat(star_nfa(inner))
        optional_tail = epsilon_nfa()
        for _ in range(node.high - node.low):
            optional_tail = epsilon_nfa().union(inner.concat(optional_tail))
        return required.concat(optional_tail)
    raise AutomatonError("unknown regex node %r" % (node,))
