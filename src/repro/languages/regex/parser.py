"""Recursive-descent parser for the paper's regular-expression dialect.

Grammar (whitespace is insignificant everywhere):

::

    union   ::= concat ('+' concat | '|' concat)*
    concat  ::= repeat+
    repeat  ::= atom ('*' | '?' | '^+' | '{' bounds '}' | '>=' INT)*
    atom    ::= LETTER | 'ε' | 'eps' | '∅' | '[' LETTER+ ']' | '(' union ')'
    bounds  ::= INT | INT ',' | INT ',' INT

Notes on the dialect:

* ``+`` between expressions is *union*, exactly as written in the paper
  (``bb+ + ε`` reads "bb⁺ union ε"), while a ``+`` immediately following
  an atom with no left operand pending is *one-or-more*.  This mirrors how
  the paper overloads ``+`` and resolves the ambiguity the same way a
  human reader does: a ``+`` that could continue a concatenation is
  postfix, a ``+`` followed by nothing concatenable is union.  In
  practice: ``a+b`` parses as union while ``a+ b`` and ``a+`` parse the
  postfix plus.  To force the postfix reading unambiguously, ``^+`` is
  also accepted.
* ``A>=k`` is the paper's ``A≥k`` shortcut for ``A^k A*`` (``≥`` itself is
  accepted too).
* Letters are single characters outside the reserved set
  ``()[]{}*+?|,^<>= ``.  Digits may be letters; inside ``{...}`` and
  after ``>=`` they are parsed as bounds (context decides, no
  ambiguity).

The parser is deliberately small and produces the AST of
:mod:`repro.languages.regex.ast`.
"""

from __future__ import annotations

from ...errors import RegexSyntaxError
from .ast import (
    CharClass,
    Concat,
    Empty,
    Epsilon,
    Literal,
    Optional,
    Plus,
    Repeat,
    Star,
    Union,
)

_RESERVED = set("()[]{}*+?|,^<>=≥ \t\n")
_EPSILON_TOKENS = ("ε", "eps")


class _Parser:
    """Single-use recursive-descent parser over an input string."""

    def __init__(self, text):
        self.text = text
        self.pos = 0

    # -- low-level helpers -------------------------------------------------

    def _error(self, message):
        raise RegexSyntaxError(
            "%s at position %d in %r" % (message, self.pos, self.text),
            text=self.text,
            position=self.pos,
        )

    def _skip_ws(self):
        while self.pos < len(self.text) and self.text[self.pos] in " \t\n":
            self.pos += 1

    def _peek(self):
        self._skip_ws()
        if self.pos >= len(self.text):
            return ""
        return self.text[self.pos]

    def _peek_raw(self):
        """Next character without skipping whitespace (for postfix '+')."""
        if self.pos >= len(self.text):
            return ""
        return self.text[self.pos]

    def _take(self, expected=None):
        self._skip_ws()
        if self.pos >= len(self.text):
            self._error("unexpected end of input")
        char = self.text[self.pos]
        if expected is not None and char != expected:
            self._error("expected %r, found %r" % (expected, char))
        self.pos += 1
        return char

    def _take_int(self):
        self._skip_ws()
        start = self.pos
        while self.pos < len(self.text) and self.text[self.pos].isdigit():
            self.pos += 1
        if start == self.pos:
            self._error("expected an integer")
        return int(self.text[start:self.pos])

    def _starts_atom(self):
        char = self._peek()
        if not char:
            return False
        if char in "([":
            return True
        if char in _RESERVED:
            return False
        return True

    # -- grammar ------------------------------------------------------------

    def parse(self):
        node = self._union()
        self._skip_ws()
        if self.pos != len(self.text):
            self._error("trailing input")
        return node

    def _union(self):
        parts = [self._concat()]
        while True:
            char = self._peek()
            if char == "|":
                self._take("|")
                parts.append(self._concat())
            elif char == "+":
                # Union '+' only when something concatenable follows;
                # otherwise it is a dangling postfix plus already consumed
                # by _repeat, so seeing '+' here means union context.
                self._take("+")
                parts.append(self._concat())
            else:
                break
        if len(parts) == 1:
            return parts[0]
        return Union(tuple(parts))

    def _concat(self):
        parts = [self._repeat()]
        while self._starts_atom():
            parts.append(self._repeat())
        if len(parts) == 1:
            return parts[0]
        return Concat(tuple(parts))

    def _repeat(self):
        node = self._atom()
        while True:
            self._skip_ws()
            char = self._peek_raw()
            if char == "*":
                self.pos += 1
                node = Star(node)
            elif char == "?":
                self.pos += 1
                node = Optional(node)
            elif char == "^":
                self.pos += 1
                self._take("+")
                node = Plus(node)
            elif char == "{":
                node = self._braces(node)
            elif char == ">" or char == "≥":
                node = self._at_least(node)
            elif char == "+" and self._plus_is_postfix():
                self.pos += 1
                node = Plus(node)
            else:
                break
        return node

    def _plus_is_postfix(self):
        """Decide whether a '+' at self.pos is postfix one-or-more.

        It is postfix when no atom could start right after it -- i.e. the
        '+' ends the expression, closes a group, or is itself followed by
        a union '+' (as in ``bb+ + ε``).
        """
        look = self.pos + 1
        while look < len(self.text) and self.text[look] in " \t\n":
            look += 1
        if look >= len(self.text):
            return True
        nxt = self.text[look]
        return nxt in ")+|"

    def _braces(self, node):
        self._take("{")
        low = self._take_int()
        high = low
        if self._peek() == ",":
            self._take(",")
            if self._peek() == "}":
                high = None
            else:
                high = self._take_int()
        self._take("}")
        if high is not None and high < low:
            self._error("repetition upper bound below lower bound")
        return Repeat(node, low, high)

    def _at_least(self, node):
        char = self._take()
        if char == ">":
            self._take("=")
        elif char != "≥":
            self._error("expected '>=' or '≥'")
        low = self._take_int()
        return Repeat(node, low, None)

    def _atom(self):
        char = self._peek()
        if char == "(":
            self._take("(")
            node = self._union()
            self._take(")")
            return node
        if char == "[":
            return self._char_class()
        if char == "∅":
            self._take()
            return Empty()
        if char == "ε":
            self._take()
            return Epsilon()
        if self.text.startswith("eps", self.pos):
            self.pos += 3
            return Epsilon()
        if not char:
            self._error("unexpected end of input, expected an atom")
        if char in _RESERVED:
            self._error("unexpected character %r" % char)
        self._take()
        return Literal(char)

    def _char_class(self):
        self._take("[")
        symbols = []
        while True:
            char = self._peek()
            if char == "]":
                break
            if not char:
                self._error("unterminated character class")
            if char in _RESERVED:
                self._error("invalid character %r in class" % char)
            symbols.append(self._take())
        self._take("]")
        if not symbols:
            self._error("empty character class")
        return CharClass(tuple(symbols))


def parse(text):
    """Parse ``text`` into a :class:`RegexNode`.

    >>> str(parse("a*(bb+ + eps)c*"))
    'a*(bb^+ + ε)c*'
    """
    if not isinstance(text, str):
        raise RegexSyntaxError("regex input must be a string", text=repr(text))
    stripped = text.strip()
    if not stripped:
        return Epsilon()
    return _Parser(stripped).parse()
