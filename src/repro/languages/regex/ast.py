"""Abstract syntax tree for regular expressions.

The node types mirror the operators used throughout the paper:

* ``Empty``     -- the empty language (∅)
* ``Epsilon``   -- the language {ε}
* ``Literal``   -- a single letter ``a``
* ``CharClass`` -- a set of letters ``[abc]`` (sugar for a union of literals)
* ``Concat``    -- concatenation ``e1 e2 … ek``
* ``Union``     -- alternation ``e1 + e2 + … + ek``
* ``Star``      -- Kleene star ``e*``
* ``Plus``      -- one-or-more ``e+``
* ``Optional``  -- zero-or-one ``e?``
* ``Repeat``    -- bounded/unbounded repetition ``e{m}``, ``e{m,n}``,
  ``e{m,}``; the paper's ``A≥k`` (= ``A^k A^*``) is ``Repeat(A, k, None)``

Nodes are immutable and hashable so they can key caches and appear inside
sets.  ``str()`` produces a parseable round-trip representation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional as Opt
from typing import Tuple


class RegexNode:
    """Base class for regex AST nodes."""

    #: precedence used for parenthesisation when printing:
    #: union(1) < concat(2) < repetition(3) < atom(4)
    precedence = 4

    def _wrap(self, child):
        """Render ``child``, adding parentheses when precedence demands."""
        text = str(child)
        if child.precedence < self.precedence:
            return "(" + text + ")"
        return text

    def children(self):
        """Iterable of direct sub-expressions (empty for atoms)."""
        return ()

    def alphabet(self):
        """Set of letters that occur syntactically in this expression."""
        letters = set()
        stack = [self]
        while stack:
            node = stack.pop()
            if isinstance(node, Literal):
                letters.add(node.symbol)
            elif isinstance(node, CharClass):
                letters.update(node.symbols)
            else:
                stack.extend(node.children())
        return letters

    def size(self):
        """Number of AST nodes; a convenient measure of expression size."""
        total = 1
        for child in self.children():
            total += child.size()
        return total


@dataclass(frozen=True)
class Empty(RegexNode):
    """The empty language."""

    precedence = 4

    def __str__(self):
        return "∅"


@dataclass(frozen=True)
class Epsilon(RegexNode):
    """The language containing only the empty word."""

    precedence = 4

    def __str__(self):
        return "ε"


@dataclass(frozen=True)
class Literal(RegexNode):
    """A single alphabet symbol."""

    symbol: str

    precedence = 4

    def __post_init__(self):
        if len(self.symbol) != 1:
            raise ValueError(
                "Literal holds exactly one symbol, got %r" % (self.symbol,)
            )

    def __str__(self):
        return self.symbol


@dataclass(frozen=True)
class CharClass(RegexNode):
    """A set of symbols, any one of which matches (``[abc]``)."""

    symbols: Tuple[str, ...]

    precedence = 4

    def __post_init__(self):
        ordered = tuple(sorted(set(self.symbols)))
        object.__setattr__(self, "symbols", ordered)
        if not ordered:
            raise ValueError("CharClass requires at least one symbol")

    def __str__(self):
        return "[" + "".join(self.symbols) + "]"


@dataclass(frozen=True)
class Concat(RegexNode):
    """Concatenation of two or more expressions."""

    parts: Tuple[RegexNode, ...]

    precedence = 2

    def __post_init__(self):
        if len(self.parts) < 2:
            raise ValueError("Concat requires at least two parts")

    def children(self):
        return self.parts

    def __str__(self):
        return "".join(self._wrap(part) for part in self.parts)


@dataclass(frozen=True)
class Union(RegexNode):
    """Alternation of two or more expressions (written ``+`` in the paper)."""

    parts: Tuple[RegexNode, ...]

    precedence = 1

    def __post_init__(self):
        if len(self.parts) < 2:
            raise ValueError("Union requires at least two parts")

    def children(self):
        return self.parts

    def __str__(self):
        return " + ".join(self._wrap(part) for part in self.parts)


@dataclass(frozen=True)
class Star(RegexNode):
    """Kleene closure ``e*``."""

    inner: RegexNode

    precedence = 3

    def children(self):
        return (self.inner,)

    def __str__(self):
        return self._wrap(self.inner) + "*"


@dataclass(frozen=True)
class Plus(RegexNode):
    """One-or-more repetitions ``e+`` (postfix, distinct from union ``+``)."""

    inner: RegexNode

    precedence = 3

    def children(self):
        return (self.inner,)

    def __str__(self):
        return self._wrap(self.inner) + "^+"


@dataclass(frozen=True)
class Optional(RegexNode):
    """Zero-or-one occurrence ``e?``."""

    inner: RegexNode

    precedence = 3

    def children(self):
        return (self.inner,)

    def __str__(self):
        return self._wrap(self.inner) + "?"


@dataclass(frozen=True)
class Repeat(RegexNode):
    """Bounded or half-bounded repetition.

    ``Repeat(e, m, n)`` matches between ``m`` and ``n`` copies of ``e``;
    ``n is None`` means unbounded, so ``Repeat(e, k, None)`` is the
    paper's ``e≥k`` = ``e^k e*``.
    """

    inner: RegexNode
    low: int = 0
    high: Opt[int] = field(default=None)

    precedence = 3

    def __post_init__(self):
        if self.low < 0:
            raise ValueError("Repeat lower bound must be non-negative")
        if self.high is not None and self.high < self.low:
            raise ValueError("Repeat upper bound below lower bound")

    def children(self):
        return (self.inner,)

    def __str__(self):
        base = self._wrap(self.inner)
        if self.high is None:
            return "%s{%d,}" % (base, self.low)
        if self.high == self.low:
            return "%s{%d}" % (base, self.low)
        return "%s{%d,%d}" % (base, self.low, self.high)
