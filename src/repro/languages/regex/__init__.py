"""Regular-expression AST, parser and combinators."""

from . import ast, builder
from .parser import parse

__all__ = ["ast", "builder", "parse"]
