"""Programmatic combinators for building regex ASTs.

These helpers normalise trivial cases (flattening nested concatenations,
dropping epsilon in concatenations, deduplicating union branches) so that
generated expressions stay readable.  They perform *syntactic* tidying
only; no language-level simplification is attempted here.
"""

from __future__ import annotations

from .ast import (
    CharClass,
    Concat,
    Empty,
    Epsilon,
    Literal,
    Optional,
    Plus,
    Repeat,
    Star,
    Union,
)


def epsilon():
    """The {ε} expression."""
    return Epsilon()


def empty():
    """The ∅ expression."""
    return Empty()


def literal(symbol):
    """A single-letter expression."""
    return Literal(symbol)


def word(text):
    """Concatenation of the letters of ``text`` (``word('') == ε``)."""
    if not text:
        return Epsilon()
    if len(text) == 1:
        return Literal(text)
    return Concat(tuple(Literal(ch) for ch in text))


def char_class(symbols):
    """Any single letter from ``symbols`` (string or iterable of letters)."""
    ordered = tuple(sorted(set(symbols)))
    if not ordered:
        return Empty()
    if len(ordered) == 1:
        return Literal(ordered[0])
    return CharClass(ordered)


def concat(*parts):
    """Concatenate expressions, flattening and dropping ε parts."""
    flat = []
    for part in parts:
        if isinstance(part, Empty):
            return Empty()
        if isinstance(part, Epsilon):
            continue
        if isinstance(part, Concat):
            flat.extend(part.parts)
        else:
            flat.append(part)
    if not flat:
        return Epsilon()
    if len(flat) == 1:
        return flat[0]
    return Concat(tuple(flat))


def union(*parts):
    """Union of expressions, flattening, deduplicating, dropping ∅."""
    flat = []
    seen = set()
    for part in parts:
        candidates = part.parts if isinstance(part, Union) else (part,)
        for candidate in candidates:
            if isinstance(candidate, Empty):
                continue
            if candidate in seen:
                continue
            seen.add(candidate)
            flat.append(candidate)
    if not flat:
        return Empty()
    if len(flat) == 1:
        return flat[0]
    return Union(tuple(flat))


def star(inner):
    """Kleene star with trivial normalisations (``∅* = ε* = ε``)."""
    if isinstance(inner, (Empty, Epsilon)):
        return Epsilon()
    if isinstance(inner, Star):
        return inner
    return Star(inner)


def plus(inner):
    """One-or-more repetitions."""
    if isinstance(inner, Empty):
        return Empty()
    if isinstance(inner, Epsilon):
        return Epsilon()
    return Plus(inner)


def optional(inner):
    """Zero-or-one occurrence."""
    if isinstance(inner, (Empty, Epsilon)):
        return Epsilon()
    if isinstance(inner, (Optional, Star)):
        return inner
    return Optional(inner)


def repeat(inner, low, high=None):
    """Between ``low`` and ``high`` repetitions (``high=None`` unbounded)."""
    if high == 0:
        return Epsilon()
    if low == 0 and high is None:
        return star(inner)
    if low == 1 and high is None:
        return plus(inner)
    if low == 0 and high == 1:
        return optional(inner)
    return Repeat(inner, low, high)


def at_least(symbols, k):
    """The paper's ``A≥k`` term: at least ``k`` letters from ``symbols``."""
    return repeat(char_class(symbols), k, None)
