"""Language-level properties: finiteness, subword closure, equivalence.

The subword-closure test implements the Mendelzon–Wood tractable class
(languages closed by subword), which the paper identifies with ``trC(0)``
in its conclusion.  A language is subword-closed iff its downward closure
(delete any letters) is contained in it.
"""

from __future__ import annotations

from .nfa import NFA, EPSILON


def downward_closure_nfa(dfa):
    """NFA for the subword (downward) closure of L(dfa).

    For every letter transition ``p --a--> q`` we add an ε-transition
    ``p --ε--> q``: skipping a letter of an accepted word produces exactly
    the subwords.
    """
    transitions = {state: [] for state in dfa.states()}
    for state, symbol, target in dfa.transitions():
        transitions[state].append((symbol, target))
        transitions[state].append((EPSILON, target))
    return NFA(
        dfa.states(),
        dfa.alphabet,
        transitions,
        initial=[dfa.initial],
        accepting=dfa.accepting,
    )


def is_subword_closed(dfa):
    """True iff L is closed under taking (scattered) subwords."""
    closure = downward_closure_nfa(dfa)
    # closed iff closure ⊆ L iff closure ∩ complement(L) = ∅
    outside = closure.intersect_dfa(
        dfa, dfa_accepting=set(dfa.states()) - dfa.accepting
    )
    return outside.is_empty()


def languages_equal(dfa_a, dfa_b):
    """Language equality for two DFAs (alphabets may differ)."""
    return dfa_a.equivalent(dfa_b)


def sample_words(dfa, max_length, limit=None):
    """List of accepted words of length ≤ ``max_length`` (testing aid)."""
    words = []
    for word in dfa.enumerate_words(max_length):
        words.append(word)
        if limit is not None and len(words) >= limit:
            break
    return words


def language_density(dfa, max_length):
    """Number of accepted words per length, ``0..max_length`` inclusive.

    A cheap fingerprint used by tests and benches to compare languages.
    """
    return [dfa.count_words_of_length(n) for n in range(max_length + 1)]
