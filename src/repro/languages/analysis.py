"""Structural analysis of DFAs: components, loops, aperiodicity.

These are the automaton-level notions Section 3 of the paper works with:

* strongly connected *components* of (the graph of) ``A_L``,
* ``Loop(q)`` — the non-empty words that loop on state ``q``,
* the *internal alphabet* ``Σ_C`` of a component (Notation 1),
* aperiodicity (the definition used in Preliminaries),
* ``Loop_a(q)`` — loops whose last letter is ``a`` (Notation 2, used by
  the vertex-labeled variant).
"""

from __future__ import annotations

from collections import deque

from ..errors import AutomatonError
from .nfa import NFA


def strongly_connected_components(dfa, restrict_to=None):
    """SCCs of the DFA's transition graph in topological order.

    Returns a list of frozensets of states.  The order is topological:
    if a transition leads from component ``C_i`` to ``C_j`` with
    ``i != j`` then ``i < j``.  ``restrict_to`` limits the analysis to a
    state subset (defaults to all states).

    Iterative Tarjan to avoid recursion limits on large automata.
    """
    if restrict_to is None:
        states = list(dfa.states())
    else:
        states = sorted(restrict_to)
    allowed = set(states)
    successors = {
        state: sorted(
            {
                dfa.transition(state, symbol)
                for symbol in dfa.alphabet
                if dfa.transition(state, symbol) in allowed
            }
        )
        for state in states
    }
    index_counter = [0]
    indices = {}
    lowlink = {}
    on_stack = set()
    stack = []
    components = []

    for root in states:
        if root in indices:
            continue
        work = [(root, iter(successors[root]))]
        indices[root] = lowlink[root] = index_counter[0]
        index_counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, it = work[-1]
            advanced = False
            for target in it:
                if target not in indices:
                    indices[target] = lowlink[target] = index_counter[0]
                    index_counter[0] += 1
                    stack.append(target)
                    on_stack.add(target)
                    work.append((target, iter(successors[target])))
                    advanced = True
                    break
                if target in on_stack:
                    lowlink[node] = min(lowlink[node], indices[target])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == indices[node]:
                component = set()
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.add(member)
                    if member == node:
                        break
                components.append(frozenset(component))
    # Tarjan emits components in reverse topological order.
    components.reverse()
    return components


def useful_symbols(dfa):
    """Symbols that occur in at least one word of ``L(dfa)``.

    A symbol ``a`` is *useful* iff some transition ``q --a--> r`` has
    ``q`` reachable from the initial state and ``r`` co-accessible (able
    to reach an accepting state): the word ``w1·a·w2`` through that
    transition is then in L.  Everything else is dead-state plumbing the
    completion added — no L-labeled path can ever use it, which is what
    lets the reachability index bound a query by the frozenset returned
    here (the query's *label mask*).
    """
    # Forward closure from the initial state.
    reachable = {dfa.initial}
    queue = deque((dfa.initial,))
    while queue:
        state = queue.popleft()
        for symbol in dfa.alphabet:
            target = dfa.transition(state, symbol)
            if target not in reachable:
                reachable.add(target)
                queue.append(target)
    # Backward closure from the accepting set.
    reverse = {}
    for state in range(dfa.num_states):
        for symbol in dfa.alphabet:
            reverse.setdefault(dfa.transition(state, symbol), []).append(state)
    live = set(dfa.accepting)
    queue = deque(live)
    while queue:
        state = queue.popleft()
        for previous in reverse.get(state, ()):
            if previous not in live:
                live.add(previous)
                queue.append(previous)
    return frozenset(
        symbol
        for state in reachable
        for symbol in dfa.alphabet
        if dfa.transition(state, symbol) in live
    )


def component_of(components, state):
    """The component (frozenset) containing ``state``."""
    for component in components:
        if state in component:
            return component
    raise AutomatonError("state %r not in any component" % (state,))


def has_loop(dfa, state):
    """True iff ``Loop(state) ≠ ∅`` — the state lies on a non-trivial cycle
    or has a self-loop."""
    seen = set()
    queue = deque()
    for symbol in dfa.alphabet:
        target = dfa.transition(state, symbol)
        if target == state:
            return True
        if target not in seen:
            seen.add(target)
            queue.append(target)
    while queue:
        current = queue.popleft()
        for symbol in dfa.alphabet:
            target = dfa.transition(current, symbol)
            if target == state:
                return True
            if target not in seen:
                seen.add(target)
                queue.append(target)
    return False


def looping_states(dfa):
    """Set of states ``q`` with ``Loop(q) ≠ ∅``.

    A state loops iff its SCC contains an internal transition (always the
    case for SCCs with ≥ 2 states; singleton SCCs need a self-loop).
    """
    result = set()
    for component in strongly_connected_components(dfa):
        if len(component) > 1:
            result |= component
            continue
        (state,) = component
        if any(
            dfa.transition(state, symbol) == state for symbol in dfa.alphabet
        ):
            result.add(state)
    return result


def internal_alphabet(dfa, component):
    """``Σ_C``: letters moving between two states of ``component``."""
    letters = set()
    for state in component:
        for symbol in dfa.alphabet:
            if dfa.transition(state, symbol) in component:
                letters.add(symbol)
    return frozenset(letters)


def has_loop_with_last_letter(dfa, state, letter):
    """True iff ``Loop_a(state) ≠ ∅`` for ``a = letter``.

    There is a non-empty loop on ``state`` ending with ``letter`` iff some
    state ``p`` reachable from ``state`` satisfies ``δ(p, letter) = state``.
    """
    reachable = dfa.reachable_states(state)
    return any(
        dfa.transition(p, letter) == state for p in reachable
    )


def loop_nfa(dfa, state, min_loops=1):
    """NFA for ``Loop(state)^min_loops`` — ``min_loops`` consecutive
    non-empty loops on ``state``.

    States of the result are pairs ``(copy, q)``: ``copy`` counts how many
    complete loops have been read so far.  Reading a letter from
    ``(copy, q)`` moves to ``(copy, δ(q, a))`` unless that closes a loop
    (``δ(q, a) == state``), which moves to ``(copy + 1, state)``.
    Accepting state: ``(min_loops, state)``; since each copy switch
    consumes at least one letter, every accepted word is a concatenation
    of ``min_loops`` non-empty loops.  Returning to ``state`` mid-word is
    a nondeterministic choice: it may close the current loop (advance a
    copy) or be an interior visit of a longer loop (stay in the copy).
    """
    if min_loops < 1:
        raise ValueError("min_loops must be >= 1")
    states = set()
    transitions = {}
    for copy in range(min_loops):
        for q in dfa.states():
            source = (copy, q)
            states.add(source)
            arcs = []
            for symbol in dfa.alphabet:
                target_q = dfa.transition(q, symbol)
                arcs.append((symbol, (copy, target_q)))
                if target_q == state:
                    arcs.append((symbol, (copy + 1, state)))
            transitions[source] = arcs
    final = (min_loops, state)
    states.add(final)
    transitions[final] = []
    return NFA(
        states,
        dfa.alphabet,
        transitions,
        initial=[(0, state)],
        accepting=[final],
    )


def loop_with_last_letter_nfa(dfa, state, letter, min_loops=1):
    """NFA for ``(Loop_letter(state))^min_loops`` — loops ending in
    ``letter`` (the vertex-labeled variant's ``Loop_a``)."""
    if min_loops < 1:
        raise ValueError("min_loops must be >= 1")
    states = set()
    transitions = {}
    for copy in range(min_loops):
        for q in dfa.states():
            source = (copy, q)
            states.add(source)
            arcs = []
            for symbol in dfa.alphabet:
                target_q = dfa.transition(q, symbol)
                if target_q == state and symbol == letter:
                    # Closing the loop with the required last letter
                    # advances a copy; closing it with another letter is a
                    # "wrong" loop, but the word may still be a single
                    # longer loop that eventually ends in `letter`, so we
                    # stay in the current copy.
                    arcs.append((symbol, (copy + 1, state)))
                    arcs.append((symbol, (copy, target_q)))
                else:
                    arcs.append((symbol, (copy, target_q)))
            transitions[source] = arcs
    final = (min_loops, state)
    states.add(final)
    transitions[final] = []
    return NFA(
        states,
        dfa.alphabet,
        transitions,
        initial=[(0, state)],
        accepting=[final],
    )


# -- aperiodicity ---------------------------------------------------------------


def transition_monoid(dfa, max_size=200000):
    """The transition monoid of the DFA.

    Elements are tuples ``f`` with ``f[q] = Δ(q, w)`` for some word ``w``;
    the monoid is generated by the letter actions under composition.
    Raises :class:`AutomatonError` when the monoid would exceed
    ``max_size`` elements (a safety valve — minimal DFAs in this project
    are small).
    """
    identity = tuple(range(dfa.num_states))
    generators = []
    for symbol in sorted(dfa.alphabet):
        generators.append(
            tuple(dfa.transition(q, symbol) for q in dfa.states())
        )
    elements = {identity}
    queue = deque([identity])
    while queue:
        f = queue.popleft()
        for g in generators:
            composed = tuple(g[f[q]] for q in dfa.states())
            if composed not in elements:
                if len(elements) >= max_size:
                    raise AutomatonError(
                        "transition monoid exceeds %d elements" % max_size
                    )
                elements.add(composed)
                queue.append(composed)
    return elements


def is_aperiodic(dfa, max_monoid_size=200000):
    """Aperiodicity test (the paper's definition, via the monoid).

    ``L`` is aperiodic iff for every state ``q``, word ``w`` and ``k ≥ 1``,
    ``Δ(q, w^k) = q`` implies ``Δ(q, w) = q``.  Equivalently every element
    of the transition monoid has eventual period 1 (``f^{m+1} = f^m`` for
    some ``m``).  The automaton should be minimal and trimmed for the test
    to reflect the *language* (callers normally pass ``minimized()``).
    """
    monoid = transition_monoid(dfa, max_size=max_monoid_size)
    for f in monoid:
        # Iterate f until the power sequence cycles; aperiodic iff the
        # cycle is a fixed point.
        seen = {}
        current = f
        step = 0
        while current not in seen:
            seen[current] = step
            current = tuple(current[f[q]] for q in dfa.states())
            step += 1
        cycle_length = step - seen[current]
        if cycle_length != 1:
            return False
    return True
