"""Regular-language toolkit: regexes, NFAs, DFAs, structural analysis.

The central convenience is :func:`language`, which takes a regex string
(or AST) and returns a :class:`Language` handle bundling the parsed
expression with its minimal complete DFA.  Everything in the paper is
stated on the minimal DFA ``A_L``, so most of the library passes
``Language`` objects around.
"""

from __future__ import annotations

from .regex import ast as regex_ast
from .regex import builder
from .regex.parser import parse as parse_regex
from .nfa import NFA, nfa_from_ast
from .dfa import DFA, dfa_from_words, from_nfa
from . import analysis, properties


class Language:
    """A regular language: regex AST + minimal complete DFA.

    Parameters
    ----------
    source:
        A regex string, a regex AST node, an :class:`NFA`, or a
        :class:`DFA`.
    alphabet:
        Optional alphabet extension; the DFA is completed over the union
        of this set and the symbols occurring in ``source``.
    name:
        Optional display name (used by the catalog and benches).
    """

    def __init__(self, source, alphabet=None, name=None):
        self.name = name
        self.ast = None
        if isinstance(source, str):
            self.ast = parse_regex(source)
            nfa = nfa_from_ast(self.ast)
            self.dfa = from_nfa(nfa, alphabet).minimized()
        elif isinstance(source, regex_ast.RegexNode):
            self.ast = source
            nfa = nfa_from_ast(source)
            self.dfa = from_nfa(nfa, alphabet).minimized()
        elif isinstance(source, NFA):
            self.dfa = from_nfa(source, alphabet).minimized()
        elif isinstance(source, DFA):
            dfa = source
            if alphabet is not None:
                dfa = dfa.completed(alphabet)
            self.dfa = dfa.minimized()
        else:
            raise TypeError("unsupported language source %r" % (source,))

    # -- delegation to the DFA -------------------------------------------------

    @property
    def alphabet(self):
        return self.dfa.alphabet

    @property
    def num_states(self):
        """M — the size of Q_L in the paper's notation."""
        return self.dfa.num_states

    def accepts(self, word):
        return self.dfa.accepts(word)

    def is_empty(self):
        return self.dfa.is_empty()

    def is_finite(self):
        return self.dfa.is_finite()

    def shortest_word(self):
        return self.dfa.shortest_accepted()

    def words(self, max_length, limit=None):
        return properties.sample_words(self.dfa, max_length, limit)

    def equivalent(self, other):
        other_dfa = other.dfa if isinstance(other, Language) else other
        return self.dfa.equivalent(other_dfa)

    def __repr__(self):
        label = self.name or (str(self.ast) if self.ast is not None else "?")
        return "Language(%s)" % label


def language(source, alphabet=None, name=None):
    """Build a :class:`Language` from a regex string / AST / NFA / DFA."""
    return Language(source, alphabet=alphabet, name=name)


__all__ = [
    "DFA",
    "Language",
    "NFA",
    "analysis",
    "builder",
    "dfa_from_words",
    "from_nfa",
    "language",
    "nfa_from_ast",
    "parse_regex",
    "properties",
    "regex_ast",
]
