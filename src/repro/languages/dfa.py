"""Complete deterministic finite automata.

The paper's constructions all live on the *complete minimal DFA* ``A_L``
of a language (possibly including a sink state), so this class keeps the
transition function total over a fixed alphabet and offers:

* subset construction from an :class:`~repro.languages.nfa.NFA`,
* Moore partition-refinement minimisation,
* boolean products (∩, ∪, \\) and complement,
* emptiness / finiteness / universality / equivalence,
* quotient languages ``L_q`` (same automaton, different initial state),
* word enumeration and shortest-word extraction.

States are integers ``0 .. num_states-1``.
"""

from __future__ import annotations

from collections import deque

from ..errors import AutomatonError


class DFA:
    """A complete DFA over a fixed alphabet."""

    def __init__(self, num_states, alphabet, transitions, initial, accepting):
        if num_states <= 0:
            raise AutomatonError("a DFA needs at least one state")
        self.num_states = num_states
        self.alphabet = frozenset(alphabet)
        self.initial = initial
        self.accepting = frozenset(accepting)
        self._delta = dict(transitions)
        if not 0 <= initial < num_states:
            raise AutomatonError("initial state out of range")
        for state in self.accepting:
            if not 0 <= state < num_states:
                raise AutomatonError("accepting state %r out of range" % (state,))
        for state in range(num_states):
            for symbol in self.alphabet:
                target = self._delta.get((state, symbol))
                if target is None:
                    raise AutomatonError(
                        "DFA is not complete: no transition (%r, %r)"
                        % (state, symbol)
                    )
                if not 0 <= target < num_states:
                    raise AutomatonError("transition target out of range")

    # -- basic queries -------------------------------------------------------

    def transition(self, state, symbol):
        """δ(state, symbol); raises for symbols outside the alphabet."""
        try:
            return self._delta[(state, symbol)]
        except KeyError:
            raise AutomatonError(
                "symbol %r not in alphabet %r" % (symbol, sorted(self.alphabet))
            ) from None

    def run_from(self, state, word):
        """State reached reading ``word`` from ``state`` (Δ(q, w))."""
        current = state
        for symbol in word:
            current = self.transition(current, symbol)
        return current

    def run(self, word):
        """State reached reading ``word`` from the initial state."""
        return self.run_from(self.initial, word)

    def accepts(self, word):
        """Language membership."""
        return self.run(word) in self.accepting

    def states(self):
        """Iterator over all states."""
        return range(self.num_states)

    def transitions(self):
        """Iterator over ``(state, symbol, target)`` triples."""
        for (state, symbol), target in self._delta.items():
            yield state, symbol, target

    # -- reachability ----------------------------------------------------------

    def reachable_states(self, start=None):
        """States reachable from ``start`` (default: the initial state)."""
        if start is None:
            start = self.initial
        seen = {start}
        queue = deque([start])
        while queue:
            state = queue.popleft()
            for symbol in self.alphabet:
                target = self._delta[(state, symbol)]
                if target not in seen:
                    seen.add(target)
                    queue.append(target)
        return seen

    def co_reachable_states(self, targets=None):
        """States from which ``targets`` (default: accepting) are reachable."""
        if targets is None:
            targets = self.accepting
        predecessors = {state: set() for state in range(self.num_states)}
        for (state, _symbol), target in self._delta.items():
            predecessors[target].add(state)
        seen = set(targets)
        queue = deque(targets)
        while queue:
            state = queue.popleft()
            for pred in predecessors[state]:
                if pred not in seen:
                    seen.add(pred)
                    queue.append(pred)
        return seen

    def reaches(self, source, target):
        """True iff ``target`` ∈ Δ(source, Σ*)."""
        return target in self.reachable_states(source)

    # -- language-level predicates ----------------------------------------------

    def is_empty(self):
        """True iff L(A) = ∅."""
        return not (self.reachable_states() & self.accepting)

    def is_universal(self):
        """True iff L(A) = Σ*."""
        return not (
            self.reachable_states() & (set(self.states()) - self.accepting)
        )

    def is_finite(self):
        """True iff L(A) is a finite set of words.

        L is infinite iff some state on an accepting run lies on a cycle,
        i.e. some reachable, co-reachable state can return to itself by a
        non-empty word.
        """
        useful = self.reachable_states() & self.co_reachable_states()
        return not any(
            self._on_cycle_within(state, useful) for state in useful
        )

    def _on_cycle_within(self, state, allowed):
        """True iff ``state`` can come back to itself inside ``allowed``."""
        seen = set()
        queue = deque()
        for symbol in self.alphabet:
            target = self._delta[(state, symbol)]
            if target in allowed and target not in seen:
                seen.add(target)
                queue.append(target)
        while queue:
            current = queue.popleft()
            if current == state:
                return True
            for symbol in self.alphabet:
                target = self._delta[(current, symbol)]
                if target in allowed and target not in seen:
                    seen.add(target)
                    queue.append(target)
        return False

    def shortest_accepted(self, start=None):
        """A shortest word accepted from ``start`` (default initial)."""
        if start is None:
            start = self.initial
        if start in self.accepting:
            return ""
        best = {start: ""}
        queue = deque([start])
        while queue:
            state = queue.popleft()
            for symbol in sorted(self.alphabet):
                target = self._delta[(state, symbol)]
                if target not in best:
                    best[target] = best[state] + symbol
                    if target in self.accepting:
                        return best[target]
                    queue.append(target)
        return None

    def enumerate_words(self, max_length, start=None):
        """Yield all accepted words of length ≤ ``max_length`` in
        length-lexicographic order.

        Dead branches — prefixes whose state cannot reach an accepting
        state at all — are pruned, so the cost is proportional to the
        *live* prefix tree rather than ``|Σ|^max_length`` (a sink-state
        DFA used to blow the full tree up even for tiny languages).
        Still exponential when the language itself has exponentially
        many short words.
        """
        if start is None:
            start = self.initial
        symbols = sorted(self.alphabet)
        live = self.co_reachable_states()
        if start not in live:
            return
        layer = [("", start)]
        if start in self.accepting:
            yield ""
        for _ in range(max_length):
            next_layer = []
            for word, state in layer:
                for symbol in symbols:
                    target = self._delta[(state, symbol)]
                    if target not in live:
                        continue
                    next_word = word + symbol
                    if target in self.accepting:
                        yield next_word
                    next_layer.append((next_word, target))
            layer = next_layer
            if not layer:
                return

    def count_words_of_length(self, length, start=None):
        """Number of accepted words of exactly ``length`` letters."""
        if start is None:
            start = self.initial
        counts = {start: 1}
        for _ in range(length):
            next_counts = {}
            for state, count in counts.items():
                for symbol in self.alphabet:
                    target = self._delta[(state, symbol)]
                    next_counts[target] = next_counts.get(target, 0) + count
            counts = next_counts
        return sum(
            count for state, count in counts.items() if state in self.accepting
        )

    # -- derived automata ---------------------------------------------------------

    def with_initial(self, state):
        """Automaton for the quotient language L_q (same states)."""
        return DFA(
            self.num_states, self.alphabet, self._delta, state, self.accepting
        )

    def with_accepting(self, accepting):
        """Same automaton with a different accepting set."""
        return DFA(
            self.num_states, self.alphabet, self._delta, self.initial, accepting
        )

    def complement(self):
        """Automaton for Σ* \\ L (relies on completeness)."""
        others = set(self.states()) - self.accepting
        return self.with_accepting(others)

    def completed(self, alphabet):
        """Extend to a larger alphabet by adding a sink if necessary."""
        alphabet = frozenset(alphabet) | self.alphabet
        extra = alphabet - self.alphabet
        if not extra:
            return self
        sink = self.num_states
        transitions = dict(self._delta)
        for state in range(self.num_states):
            for symbol in extra:
                transitions[(state, symbol)] = sink
        for symbol in alphabet:
            transitions[(sink, symbol)] = sink
        return DFA(
            self.num_states + 1,
            alphabet,
            transitions,
            self.initial,
            self.accepting,
        )

    def product(self, other, combine):
        """Boolean product automaton.

        ``combine(acc_self, acc_other) -> bool`` selects accepting pairs;
        pass ``and`` semantics for intersection, ``or`` for union, etc.
        Both automata are first completed over the joint alphabet.
        """
        alphabet = self.alphabet | other.alphabet
        left = self.completed(alphabet)
        right = other.completed(alphabet)
        index = {}
        transitions = {}
        accepting = set()
        start = (left.initial, right.initial)
        index[start] = 0
        queue = deque([start])
        while queue:
            pair = queue.popleft()
            state = index[pair]
            if combine(pair[0] in left.accepting, pair[1] in right.accepting):
                accepting.add(state)
            for symbol in alphabet:
                next_pair = (
                    left._delta[(pair[0], symbol)],
                    right._delta[(pair[1], symbol)],
                )
                if next_pair not in index:
                    index[next_pair] = len(index)
                    queue.append(next_pair)
                transitions[(state, symbol)] = index[next_pair]
        # Second pass: transitions reference final indices.
        return DFA(len(index), alphabet, transitions, 0, accepting)

    def intersection(self, other):
        """Automaton for L ∩ L'."""
        return self.product(other, lambda a, b: a and b)

    def union(self, other):
        """Automaton for L ∪ L'."""
        return self.product(other, lambda a, b: a or b)

    def difference(self, other):
        """Automaton for L \\ L'."""
        return self.product(other, lambda a, b: a and not b)

    def symmetric_difference(self, other):
        """Automaton for (L \\ L') ∪ (L' \\ L)."""
        return self.product(other, lambda a, b: a != b)

    def equivalent(self, other):
        """Language equality test via symmetric-difference emptiness."""
        return self.symmetric_difference(other).is_empty()

    def contains_language(self, other):
        """True iff L(other) ⊆ L(self)."""
        return other.difference(self).is_empty()

    def reverse_nfa(self):
        """NFA for the reversed language (used for reversal closure tests)."""
        from .nfa import NFA

        transitions = {state: [] for state in self.states()}
        for (state, symbol), target in self._delta.items():
            transitions[target].append((symbol, state))
        return NFA(
            self.states(),
            self.alphabet,
            transitions,
            initial=self.accepting,
            accepting=[self.initial],
        )

    # -- minimisation ----------------------------------------------------------

    def trimmed_complete(self):
        """Restrict to reachable states (keeps completeness)."""
        reachable = sorted(self.reachable_states())
        index = {state: i for i, state in enumerate(reachable)}
        transitions = {}
        for state in reachable:
            for symbol in self.alphabet:
                transitions[(index[state], symbol)] = index[
                    self._delta[(state, symbol)]
                ]
        accepting = {index[s] for s in self.accepting if s in index}
        return DFA(
            len(reachable),
            self.alphabet,
            transitions,
            index[self.initial],
            accepting,
        )

    def minimized(self):
        """The minimal complete DFA for the same language.

        Moore partition refinement over the reachable part.  States of the
        result are numbered in BFS order from the initial state so the
        output is canonical for a fixed alphabet ordering.
        """
        trimmed = self.trimmed_complete()
        symbols = sorted(trimmed.alphabet)
        # Initial partition: accepting vs non-accepting.
        block_of = [
            0 if state in trimmed.accepting else 1
            for state in range(trimmed.num_states)
        ]
        if not trimmed.accepting:
            block_of = [0] * trimmed.num_states
        while True:
            signatures = {}
            new_block_of = [0] * trimmed.num_states
            for state in range(trimmed.num_states):
                signature = (
                    block_of[state],
                    tuple(
                        block_of[trimmed._delta[(state, symbol)]]
                        for symbol in symbols
                    ),
                )
                if signature not in signatures:
                    signatures[signature] = len(signatures)
                new_block_of[state] = signatures[signature]
            if new_block_of == block_of:
                break
            block_of = new_block_of
        # Renumber canonically by BFS from the initial block.
        order = {}
        queue = deque([block_of[trimmed.initial]])
        order[block_of[trimmed.initial]] = 0
        representatives = {}
        for state in range(trimmed.num_states):
            representatives.setdefault(block_of[state], state)
        while queue:
            block = queue.popleft()
            rep = representatives[block]
            for symbol in symbols:
                next_block = block_of[trimmed._delta[(rep, symbol)]]
                if next_block not in order:
                    order[next_block] = len(order)
                    queue.append(next_block)
        transitions = {}
        accepting = set()
        for block, position in order.items():
            rep = representatives[block]
            if rep in trimmed.accepting:
                accepting.add(position)
            for symbol in symbols:
                target_block = block_of[trimmed._delta[(rep, symbol)]]
                transitions[(position, symbol)] = order[target_block]
        return DFA(
            len(order),
            trimmed.alphabet,
            transitions,
            0,
            accepting,
        )

    def is_minimal(self):
        """True iff this automaton is already minimal (state count check)."""
        return self.minimized().num_states == self.num_states == len(
            self.reachable_states()
        )

    # -- misc --------------------------------------------------------------------

    def __repr__(self):
        return "DFA(states=%d, alphabet=%s, accepting=%s)" % (
            self.num_states,
            "".join(sorted(self.alphabet)),
            sorted(self.accepting),
        )


def from_nfa(nfa, alphabet=None):
    """Subset construction: NFA -> complete DFA.

    ``alphabet`` may extend the NFA's own alphabet (a sink absorbs the
    extra symbols).  The result is *not* minimised.
    """
    if alphabet is None:
        alphabet = nfa.alphabet
    alphabet = frozenset(alphabet) | nfa.alphabet
    if not alphabet:
        # Degenerate case: language over the empty alphabet is {} or {ε}.
        accepting = [0] if not nfa.is_empty() else []
        return DFA(1, [], {}, 0, accepting)
    start = nfa.epsilon_closure(nfa.initial)
    index = {start: 0}
    transitions = {}
    accepting = set()
    queue = deque([start])
    while queue:
        subset = queue.popleft()
        state = index[subset]
        if subset & nfa.accepting:
            accepting.add(state)
        for symbol in alphabet:
            target = nfa.step(subset, symbol)
            if target not in index:
                index[target] = len(index)
                queue.append(target)
            transitions[(state, symbol)] = index[target]
    return DFA(len(index), alphabet, transitions, 0, accepting)


def dfa_from_words(words, alphabet=None):
    """Minimal DFA for a finite language given as an iterable of words."""
    from .nfa import word_nfa, empty_nfa

    words = list(words)
    if alphabet is None:
        alphabet = {symbol for word in words for symbol in word}
    if not words:
        return from_nfa(empty_nfa(), alphabet).minimized()
    nfa = word_nfa(words[0])
    for word in words[1:]:
        nfa = nfa.union(word_nfa(word))
    return from_nfa(nfa, alphabet).minimized()
