"""Stdlib HTTP client and load generator for the query service.

:class:`ServiceClient` speaks the JSON protocol of
:mod:`repro.service.server` over :mod:`http.client` — one connection
per request, matching the server's ``connection: close`` discipline.
Non-2xx responses raise :class:`~repro.errors.ServiceError` carrying
the HTTP status (:class:`~repro.errors.ServiceOverloadedError` for
429), so load generators can distinguish shed load from failures.

:func:`run_load` drives a live server with a workload (the seeded
generators in ``benchmarks/workloads.py`` are the intended source) and
:func:`verify_against_direct` replays the same queries through direct
:func:`~repro.core.solver.solve_rspq` calls, comparing **path for
path** — found flag, strategy, vertex sequence and label word must all
match.  This is the service-level analogue of the differential tests
that pin the engine to the solvers: the network, the JSON codec and
the serving tier may not change a single answer.
"""

from __future__ import annotations

import http.client
import json
import random
import socket
import time
from typing import Any, Iterable, Sequence
from urllib.parse import quote

from ..core.solver import solve_rspq
from ..errors import ServiceError, ServiceOverloadedError


class ServiceClient:
    """Minimal JSON client for one service address.

    Parameters
    ----------
    timeout:
        Legacy single knob: used for both connect and read when the
        split knobs below are not given.
    connect_timeout / read_timeout:
        Separate TCP-connect and response-read timeouts; a wedged
        server can no longer hold a client for the full combined
        window during connect.
    max_retries:
        How many times a 429/503 response (or, for idempotent calls
        only, a connection failure) is retried before the error
        propagates.  0 — the default, for backward compatibility and
        for load generators that *measure* shedding — surfaces every
        rejection immediately.  Registration and eviction never retry
        on connection failures: the request may already have been
        applied.
    backoff_seconds / backoff_cap / backoff_jitter / retry_seed:
        Capped exponential backoff between retries: attempt n sleeps
        ``backoff_seconds * 2**(n-1)`` (capped) with seeded
        ``±backoff_jitter`` fractional jitter.  A server-provided
        ``Retry-After`` (header or structured body) overrides the
        computed delay — the server knows its own drain rate better.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 8080,
                 timeout: float = 60.0,
                 connect_timeout: "float | None" = None,
                 read_timeout: "float | None" = None,
                 max_retries: int = 0,
                 backoff_seconds: float = 0.05,
                 backoff_cap: float = 2.0,
                 backoff_jitter: float = 0.1,
                 retry_seed: int = 0) -> None:
        if max_retries < 0:
            raise ValueError(
                "max_retries must be >= 0, got %d" % max_retries
            )
        if backoff_seconds <= 0 or backoff_cap <= 0:
            raise ValueError("backoff knobs must be positive")
        if not 0.0 <= backoff_jitter < 1.0:
            raise ValueError(
                "backoff_jitter must be in [0, 1), got %r"
                % (backoff_jitter,)
            )
        self.host = host
        self.port = port
        self.timeout = timeout
        self.connect_timeout = (
            timeout if connect_timeout is None else connect_timeout
        )
        self.read_timeout = (
            timeout if read_timeout is None else read_timeout
        )
        self.max_retries = max_retries
        self.backoff_seconds = backoff_seconds
        self.backoff_cap = backoff_cap
        self.backoff_jitter = backoff_jitter
        self._rng = random.Random(retry_seed)
        self.retries = 0

    # -- transport ---------------------------------------------------------------

    def request(self, method: str, path: str,
                payload: Any = None) -> tuple[int, Any]:
        """One HTTP round-trip; returns ``(status, parsed_body)``."""
        status, parsed, _headers = self.request_full(method, path, payload)
        return status, parsed

    def request_full(self, method: str, path: str,
                     payload: Any = None) -> tuple[int, Any, dict]:
        """One HTTP round-trip: ``(status, parsed_body, headers)``."""
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.connect_timeout
        )
        try:
            body: str | None = None
            headers: dict[str, str] = {}
            if payload is not None:
                body = json.dumps(payload)
                headers["content-type"] = "application/json"
            connection.connect()
            if connection.sock is not None:
                # The connect timeout bounded the handshake; from here
                # on the read timeout governs the response wait.
                connection.sock.settimeout(self.read_timeout)
            connection.request(method, path, body=body, headers=headers)
            response = connection.getresponse()
            raw = response.read()
            try:
                parsed = json.loads(raw.decode("utf-8")) if raw else None
            except (UnicodeDecodeError, json.JSONDecodeError):
                parsed = {"error": "unparseable response body"}
            response_headers = {
                name.lower(): value
                for name, value in response.getheaders()
            }
            return response.status, parsed, response_headers
        finally:
            connection.close()

    def _retry_delay(self, attempt, parsed, headers):
        """Seconds to sleep before retry ``attempt`` (1-based).

        Honors the server's Retry-After (structured body first — it
        keeps sub-second precision — then the integer header), falling
        back to capped exponential backoff with seeded jitter.
        """
        hinted = None
        if isinstance(parsed, dict):
            hinted = parsed.get("retry_after")
        if hinted is None and headers:
            raw = headers.get("retry-after")
            if raw is not None:
                try:
                    hinted = float(raw)
                except ValueError:
                    hinted = None
        if isinstance(hinted, (int, float)) and not isinstance(
            hinted, bool
        ) and hinted >= 0:
            delay = float(hinted)
        else:
            delay = min(
                self.backoff_seconds * (2 ** (attempt - 1)),
                self.backoff_cap,
            )
        if self.backoff_jitter:
            delay *= 1.0 + self.backoff_jitter * self._rng.uniform(
                -1.0, 1.0
            )
        return max(delay, 0.0)

    def _checked(self, method, path, payload=None, idempotent=True):
        attempt = 0
        while True:
            try:
                status, parsed, headers = self.request_full(
                    method, path, payload
                )
            except (ConnectionError, socket.timeout, socket.gaierror,
                    OSError):
                # Connect/read failure: retryable like a 503, but only
                # for idempotent calls — after a send, the client
                # cannot tell a lost request from a lost response, and
                # re-sending a registration or eviction the server
                # already applied turns one transient fault into a
                # duplicate-name 409 or a double eviction.  (A 429/503
                # *response* below is always safe to retry: it proves
                # the server refused the request without applying it.)
                if not idempotent or attempt >= self.max_retries:
                    raise
                attempt += 1
                self.retries += 1
                time.sleep(self._retry_delay(attempt, None, None))
                continue
            if status in (429, 503) and attempt < self.max_retries:
                attempt += 1
                self.retries += 1
                time.sleep(self._retry_delay(attempt, parsed, headers))
                continue
            if status == 429:
                raise ServiceOverloadedError(
                    (parsed or {}).get("error", "server overloaded"),
                    retry_after=(parsed or {}).get("retry_after"),
                    error_type=(parsed or {}).get("error_type"),
                )
            if status >= 400:
                raise ServiceError(
                    (parsed or {}).get("error", "request failed"),
                    status=status,
                    retry_after=(parsed or {}).get("retry_after"),
                    error_type=(parsed or {}).get("error_type"),
                )
            return parsed

    # -- endpoints ---------------------------------------------------------------

    def healthz(self) -> Any:
        return self._checked("GET", "/healthz")

    def stats(self) -> Any:
        return self._checked("GET", "/stats")

    def graphs(self) -> Any:
        return self._checked("GET", "/graphs")["graphs"]

    def register_graph(self, name: str, graph_text: str) -> Any:
        # Not idempotent: a re-sent registration the server already
        # applied answers 409, so connection failures surface instead
        # of retrying (429/503 responses still retry — see _checked).
        return self._checked(
            "POST", "/graphs", {"name": name, "graph_text": graph_text},
            idempotent=False,
        )

    def evict_graph(self, name: str) -> Any:
        # Percent-escape so names with spaces/slashes survive the URL
        # (the server unquotes the path segment).  Not idempotent: a
        # re-sent eviction after a lost response 404s.
        return self._checked(
            "DELETE", "/graphs/%s" % quote(name, safe=""),
            idempotent=False,
        )

    def classify(self, language: str) -> Any:
        return self._checked("POST", "/classify", {"language": language})

    def query(self, language: str, source: Any, target: Any,
              graph: str | None = None,
              deadline_seconds: float | None = None,
              budget: int | None = None,
              portfolio: bool | None = None,
              max_path_edges: int | None = None) -> Any:
        payload: dict[str, Any] = {
            "language": language, "source": source, "target": target,
        }
        if graph is not None:
            payload["graph"] = graph
        if deadline_seconds is not None:
            payload["deadline_seconds"] = deadline_seconds
        if budget is not None:
            payload["budget"] = budget
        if portfolio is not None:
            payload["portfolio"] = portfolio
        if max_path_edges is not None:
            payload["max_path_edges"] = max_path_edges
        return self._checked("POST", "/query", payload)

    def batch(self, queries: Iterable[tuple], graph: str | None = None,
              workers: int | None = None, mode: str | None = None,
              deadline_seconds: float | None = None,
              budget: int | None = None,
              vectorize: bool | None = None,
              group_min_size: int | None = None,
              portfolio: bool | None = None,
              max_path_edges: int | None = None) -> Any:
        payload: dict[str, Any] = {
            "queries": [
                [language, source, target]
                for language, source, target in queries
            ]
        }
        if graph is not None:
            payload["graph"] = graph
        if workers is not None:
            payload["workers"] = workers
        if mode is not None:
            payload["mode"] = mode
        if deadline_seconds is not None:
            payload["deadline_seconds"] = deadline_seconds
        if budget is not None:
            payload["budget"] = budget
        if vectorize is not None:
            payload["vectorize"] = vectorize
        if group_min_size is not None:
            payload["group_min_size"] = group_min_size
        if portfolio is not None:
            payload["portfolio"] = portfolio
        if max_path_edges is not None:
            payload["max_path_edges"] = max_path_edges
        return self._checked("POST", "/batch", payload)


def run_load(client: ServiceClient, queries: Iterable[tuple],
             graph: str | None = None, batch_size: int = 32,
             workers: int | None = None,
             mode: str | None = None) -> list[dict]:
    """Drive the server with ``queries``; result records in input order.

    The workload is chunked into ``/batch`` requests of at most
    ``batch_size`` queries (keep it at or under the server's
    ``max_inflight``).  Returns the flat list of result records, one
    per input query, in input order.
    """
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1, got %d" % batch_size)
    query_list = list(queries)
    records: list[dict] = []
    for offset in range(0, len(query_list), batch_size):
        chunk = query_list[offset:offset + batch_size]
        response = client.batch(
            chunk, graph=graph, workers=workers, mode=mode
        )
        records.extend(response["results"])
    return records


def verify_against_direct(
    graph: Any, queries: Sequence[tuple], records: list[dict]
) -> list[tuple]:
    """Mismatches between served records and direct solver answers.

    Replays every query through :func:`solve_rspq` on ``graph`` (the
    raw :class:`DbGraph` or a compiled view) and compares path for
    path.  Returns a list of ``(index, field, direct_value,
    served_value)`` tuples — empty means the service answered every
    query exactly as the library would.
    """
    if len(queries) != len(records):
        raise ValueError(
            "got %d records for %d queries" % (len(records), len(queries))
        )
    mismatches: list[tuple] = []
    for index, ((language, source, target), record) in enumerate(
        zip(queries, records)
    ):
        direct = solve_rspq(language, graph, source, target)
        checks = [
            ("error", None, record.get("error")),
            ("found", direct.found, record.get("found")),
            ("strategy", direct.strategy, record.get("strategy")),
            (
                "path",
                None if direct.path is None else list(direct.path.vertices),
                record.get("path"),
            ),
            (
                "word",
                None if direct.path is None else direct.path.word,
                record.get("word"),
            ),
        ]
        for field, expected, actual in checks:
            if expected != actual:
                mismatches.append((index, field, expected, actual))
    return mismatches
