"""Deterministic fault injection for the serving tier.

Chaos testing only proves something when the faults are *injected into
the production code paths* — a mock that never touches the real pipe
protocol or the real snapshot parser exercises the mock, not the
service.  This module therefore plants tiny, guarded hooks directly
inside the serving tier (worker request loop, snapshot reads, registry
spooling, deadline mapping) and keeps every one of them inert unless a
:class:`FaultPlan` has been explicitly installed.

Design rules (enforced by the ``fault-gate`` invariant rule):

* Every hook function starts with ``if _ACTIVE is None: return ...``
  — with no plan installed, a hook is one global read and a return.
  Production traffic never pays more than that.
* Production modules may only call the hook functions plus the
  propagation helpers (:func:`active_spec` / :func:`install_spec` /
  :func:`install_from_env`); they may never construct a
  :class:`FaultPlan` or call :func:`install` themselves.  Plans enter
  the process exactly two ways: a test calls :func:`install`, or the
  operator sets ``REPRO_FAULTS`` and the CLI calls
  :func:`install_from_env` at startup.

Fault counters are **per process**: each worker counts its own served
requests and its own snapshot reads, so a plan like
``worker_crash_at=(2,)`` means "every worker crashes serving its 2nd
request" — deterministic regardless of how the pool schedules work.
The plan travels into pre-forked workers as a plain dict
(:func:`active_spec` in the parent, :func:`install_spec` in the child)
so a plan installed in a test process faults the real worker
processes it spawns.

All randomness (bit-flip offsets) is seeded through the plan, so a
chaos run replays bit-for-bit.
"""

from __future__ import annotations

import json
import os
import random
import threading
from typing import Any

__all__ = [
    "FaultPlan",
    "active",
    "active_spec",
    "install",
    "install_from_env",
    "install_spec",
    "uninstall",
    "mutate_snapshot_bytes",
    "skewed_deadline",
    "spool_fault",
    "worker_fault",
]

#: Environment variable carrying a JSON fault spec (see FaultPlan.spec).
FAULTS_ENV = "REPRO_FAULTS"

#: The installed plan (None = every hook is inert).
_ACTIVE: "FaultPlan | None" = None


class FaultPlan:
    """One seeded, deterministic schedule of injected faults.

    All ordinals are 1-based and counted per process (see module
    docstring).  Every knob defaults to "no fault", so an empty plan
    is indistinguishable from no plan.

    Parameters
    ----------
    seed:
        Seeds the bit-flip offset choice (and nothing else — the
        schedule itself is the explicit ordinals, not randomness).
    worker_crash_at / worker_hang_at / worker_slow_at:
        Request ordinals at which a pool worker hard-exits
        (``os._exit``), stalls for ``hang_seconds``, or sleeps
        ``slow_seconds`` before answering normally.
    hang_seconds / slow_seconds:
        Stall durations for the hang/slow actions.
    snapshot_truncate_at / snapshot_bitflip_at:
        Snapshot-read ordinals at which the bytes handed to the parser
        are truncated to half, or have one seeded bit flipped — the
        real header/checksum validation then runs against the damage.
    spool_errors:
        The first N registry spool writes raise :class:`OSError`.
    deadline_skew_seconds:
        Added to every per-request deadline the server maps onto a
        query (negative = clocks running fast; the result is clamped
        to stay positive so the skewed deadline still admits work and
        then expires inside the solvers, exercising the real paths).
    """

    _FIELDS = (
        "seed",
        "worker_crash_at", "worker_hang_at", "worker_slow_at",
        "hang_seconds", "slow_seconds",
        "snapshot_truncate_at", "snapshot_bitflip_at",
        "spool_errors", "deadline_skew_seconds",
    )

    def __init__(self, seed: int = 0,
                 worker_crash_at: Any = (),
                 worker_hang_at: Any = (),
                 worker_slow_at: Any = (),
                 hang_seconds: float = 30.0,
                 slow_seconds: float = 0.05,
                 snapshot_truncate_at: Any = (),
                 snapshot_bitflip_at: Any = (),
                 spool_errors: int = 0,
                 deadline_skew_seconds: float = 0.0) -> None:
        self.seed = int(seed)
        self.worker_crash_at = frozenset(int(n) for n in worker_crash_at)
        self.worker_hang_at = frozenset(int(n) for n in worker_hang_at)
        self.worker_slow_at = frozenset(int(n) for n in worker_slow_at)
        self.hang_seconds = float(hang_seconds)
        self.slow_seconds = float(slow_seconds)
        self.snapshot_truncate_at = frozenset(
            int(n) for n in snapshot_truncate_at
        )
        self.snapshot_bitflip_at = frozenset(
            int(n) for n in snapshot_bitflip_at
        )
        self.spool_errors = int(spool_errors)
        self.deadline_skew_seconds = float(deadline_skew_seconds)
        overlap = self.worker_crash_at & self.worker_hang_at | (
            self.worker_crash_at & self.worker_slow_at
        ) | (self.worker_hang_at & self.worker_slow_at)
        if overlap:
            raise ValueError(
                "worker fault ordinals overlap across actions: %s"
                % sorted(overlap)
            )
        # Per-process mutable counters (never shipped in the spec).
        self._lock = threading.Lock()
        self._worker_requests = 0
        self._snapshot_reads = 0
        self._spool_failures_left = self.spool_errors

    # -- (de)serialisation -------------------------------------------------------

    def spec(self) -> dict[str, Any]:
        """A JSON-safe dict reconstructing this plan (counters reset)."""
        return {
            "seed": self.seed,
            "worker_crash_at": sorted(self.worker_crash_at),
            "worker_hang_at": sorted(self.worker_hang_at),
            "worker_slow_at": sorted(self.worker_slow_at),
            "hang_seconds": self.hang_seconds,
            "slow_seconds": self.slow_seconds,
            "snapshot_truncate_at": sorted(self.snapshot_truncate_at),
            "snapshot_bitflip_at": sorted(self.snapshot_bitflip_at),
            "spool_errors": self.spool_errors,
            "deadline_skew_seconds": self.deadline_skew_seconds,
        }

    @classmethod
    def from_spec(cls, spec: dict[str, Any]) -> "FaultPlan":
        unknown = set(spec) - set(cls._FIELDS)
        if unknown:
            raise ValueError(
                "unknown fault spec keys: %s" % ", ".join(sorted(unknown))
            )
        return cls(**spec)

    def __repr__(self) -> str:
        knobs = ", ".join(
            "%s=%r" % (key, value)
            for key, value in sorted(self.spec().items())
            if value not in (0, 0.0, [])
            and key not in ("hang_seconds", "slow_seconds")
        )
        return "FaultPlan(%s)" % knobs

    # -- per-process fault decisions ---------------------------------------------

    def next_worker_action(self) -> "str | None":
        """Fault for the next served worker request (counts the request)."""
        with self._lock:
            self._worker_requests += 1
            ordinal = self._worker_requests
        if ordinal in self.worker_crash_at:
            return "crash"
        if ordinal in self.worker_hang_at:
            return "hang"
        if ordinal in self.worker_slow_at:
            return "slow"
        return None

    def next_snapshot_mutation(self) -> "str | None":
        """Mutation for the next snapshot read (counts the read)."""
        with self._lock:
            self._snapshot_reads += 1
            ordinal = self._snapshot_reads
        if ordinal in self.snapshot_truncate_at:
            return "truncate"
        if ordinal in self.snapshot_bitflip_at:
            return "bitflip"
        return None

    def take_spool_failure(self) -> bool:
        """True when the next spool write should fail (consumes one)."""
        with self._lock:
            if self._spool_failures_left <= 0:
                return False
            self._spool_failures_left -= 1
            return True

    def mutate(self, kind: str, data: bytes) -> bytes:
        """Apply one snapshot mutation to ``data`` (seeded, pure)."""
        if kind == "truncate":
            return bytes(data[: len(data) // 2])
        if kind == "bitflip":
            if not data:
                return data
            rng = random.Random(self.seed * 1000003 + len(data))
            offset = rng.randrange(len(data))
            bit = 1 << rng.randrange(8)
            flipped = bytearray(data)
            flipped[offset] ^= bit
            return bytes(flipped)
        raise ValueError("unknown snapshot mutation %r" % kind)


# -- installation ----------------------------------------------------------------


def install(plan: "FaultPlan | None") -> "FaultPlan | None":
    """Install ``plan`` as the process-wide fault plan; returns the old one.

    Test hook: pair with :func:`uninstall` (or install the returned
    previous plan) in a ``finally`` so one chaos test can never leak
    faults into the next.
    """
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = plan
    return previous


def uninstall() -> None:
    """Remove the installed plan; every hook goes back to inert."""
    install(None)


def active() -> "FaultPlan | None":
    """The installed plan, or None."""
    return _ACTIVE


def active_spec() -> "dict[str, Any] | None":
    """JSON-safe spec of the installed plan (ships it into workers)."""
    if _ACTIVE is None:
        return None
    return _ACTIVE.spec()


def install_spec(spec: "dict[str, Any] | None") -> None:
    """Install a plan from a spec dict; ``None`` is a no-op.

    Propagation hook for pre-forked workers: the parent ships
    :func:`active_spec` (None when chaos is off), so a worker only
    ever installs what the parent already had installed.
    """
    if spec is None:
        return
    install(FaultPlan.from_spec(spec))


def install_from_env() -> "FaultPlan | None":
    """Install a plan from the ``REPRO_FAULTS`` JSON env var, if set.

    The operator-facing activation path (``repro serve`` calls this at
    startup).  Returns the installed plan, or None when the variable
    is unset/empty.  A malformed spec raises :class:`ValueError` —
    a chaos drill with a typo'd schedule must fail loudly, not run
    faultless and "pass".
    """
    raw = os.environ.get(FAULTS_ENV, "").strip()
    if not raw:
        return None
    try:
        spec = json.loads(raw)
    except json.JSONDecodeError as err:
        raise ValueError(
            "%s is not valid JSON: %s" % (FAULTS_ENV, err)
        ) from err
    if not isinstance(spec, dict):
        raise ValueError(
            "%s must be a JSON object of FaultPlan knobs" % FAULTS_ENV
        )
    plan = FaultPlan.from_spec(spec)
    install(plan)
    return plan


# -- hooks (one global read when chaos is off) -----------------------------------


def worker_fault() -> "str | None":
    """Action for the worker request about to be served.

    Called by the pool worker's request loop; returns ``None`` (no
    fault), ``"crash"``, ``"hang"`` or ``"slow"``.
    """
    if _ACTIVE is None:
        return None
    return _ACTIVE.next_worker_action()


def worker_stall_seconds(action: str) -> float:
    """Stall duration for a ``"hang"``/``"slow"`` worker fault."""
    if _ACTIVE is None:
        return 0.0
    return (
        _ACTIVE.hang_seconds if action == "hang" else _ACTIVE.slow_seconds
    )


def mutate_snapshot_bytes(data: Any) -> "bytes | None":
    """Damaged bytes for this snapshot read, or None (serve the real file).

    Called with the mmapped snapshot contents; when the plan schedules
    a fault for this read ordinal, returns a truncated or bit-flipped
    private copy for the parser to choke on — the file itself is never
    touched, so the *next* read can succeed (recovery is testable).
    """
    if _ACTIVE is None:
        return None
    kind = _ACTIVE.next_snapshot_mutation()
    if kind is None:
        return None
    return _ACTIVE.mutate(kind, bytes(data))


def spool_fault(path: Any) -> None:
    """Raise :class:`OSError` when the plan schedules a spool failure."""
    if _ACTIVE is None:
        return
    if _ACTIVE.take_spool_failure():
        raise OSError(
            "injected fault: spool write to %s failed" % (path,)
        )


def skewed_deadline(deadline_seconds: "float | None") -> "float | None":
    """``deadline_seconds`` with the plan's clock skew applied.

    ``None`` (no deadline) stays None; a skewed deadline is clamped to
    a small positive value so it is still *admitted* and then expires
    inside the solver/pool machinery — the paths a skewed clock
    actually breaks in production.
    """
    if _ACTIVE is None:
        return deadline_seconds
    if deadline_seconds is None or not _ACTIVE.deadline_skew_seconds:
        return deadline_seconds
    return max(deadline_seconds + _ACTIVE.deadline_skew_seconds, 1e-3)
