"""The multi-graph registry behind the query service.

A long-lived service owns many graphs at once — one per tenant,
dataset or snapshot generation — and must amortise compilation across
every request that hits the same graph.  :class:`GraphRegistry` does
exactly that: each registered name is bound once to a compiled
:class:`~repro.engine.IndexedGraph` wrapped in a
:class:`~repro.engine.QueryEngine` (which carries the thread-safe LRU
plan cache), plus a :class:`GraphStats` block of serving counters.

Registration accepts a mutable :class:`~repro.graphs.dbgraph.DbGraph`
(compiled here), an already-compiled view, or a snapshot path
(:func:`~repro.service.snapshot.load_snapshot` — the warm-start path).
Eviction drops the engine, its plan cache and its stats atomically.
All operations lock internally; the registry is shared by every
request handler of the server.
"""

from __future__ import annotations

import os
import shutil
import tempfile
import threading
import time
from dataclasses import dataclass, field
from types import MappingProxyType
from typing import TYPE_CHECKING, Any

from ..errors import ServiceError
from ..engine import IndexedGraph, QueryEngine
from . import faults
from .snapshot import attach_snapshot, load_snapshot

if TYPE_CHECKING:
    from ..engine.engine import BatchResult, EngineResult
    from .workers import WorkerPool


def _safe_name(name: str) -> str:
    """A filesystem-safe slug of a graph name (spool file naming)."""
    return "".join(
        ch if ch.isalnum() or ch in "-_." else "_" for ch in name[:48]
    )


@dataclass
class GraphStats:
    """Serving counters for one registered graph."""

    #: "compiled" (from a DbGraph / IndexedGraph) or "snapshot".
    source: str = "compiled"
    #: Seconds spent compiling or thawing the indexed view.
    prepare_seconds: float = 0.0
    registered_at: float = field(default_factory=time.time)
    queries: int = 0
    batches: int = 0
    found: int = 0
    errors: int = 0
    busy_seconds: float = 0.0
    #: Requests that exhausted the pool's crash-retry budget
    #: (surfaced to clients as 503 + Retry-After).
    worker_crashes: int = 0
    #: Requests answered below full service (degradation ladder > 0).
    degraded: int = 0

    def as_dict(self) -> dict[str, Any]:
        return {
            "source": self.source,
            "prepare_seconds": self.prepare_seconds,
            "registered_at": self.registered_at,
            "queries": self.queries,
            "batches": self.batches,
            "found": self.found,
            "errors": self.errors,
            "busy_seconds": self.busy_seconds,
            "worker_crashes": self.worker_crashes,
            "degraded": self.degraded,
        }


class RegisteredGraph:
    """One registry entry: name, engine, serving stats, optional pool.

    When the registry runs with ``worker_processes > 0``, ``pool`` is
    the entry's pre-fork :class:`~repro.service.workers.WorkerPool`
    (workers attached to the graph's shared snapshot); the server
    dispatches ``/query`` and ``/batch`` to it instead of the
    in-process engine.
    """

    __slots__ = ("name", "engine", "stats", "pool", "_lock")

    def __init__(self, name: str, engine: QueryEngine,
                 stats: GraphStats,
                 pool: "WorkerPool | None" = None) -> None:
        self.name = name
        self.engine = engine
        self.stats = stats
        self.pool = pool
        self._lock = threading.Lock()

    def close(self) -> None:
        """Release serving resources (the worker pool, if any)."""
        if self.pool is not None:
            self.pool.close()

    def record_batch(self, batch: BatchResult) -> None:
        """Fold one :class:`BatchResult` into the serving counters."""
        with self._lock:
            self.stats.batches += 1
            self.stats.queries += len(batch)
            self.stats.found += batch.found_count
            self.stats.errors += batch.error_count
            self.stats.busy_seconds += batch.seconds

    def record_query(self, result: EngineResult, seconds: float) -> None:
        """Fold one :class:`EngineResult` into the serving counters."""
        with self._lock:
            self.stats.queries += 1
            if result.found:
                self.stats.found += 1
            if result.error is not None:
                self.stats.errors += 1
            self.stats.busy_seconds += seconds

    def record_query_failure(self, seconds: float) -> None:
        """One query that raised before producing a result."""
        with self._lock:
            self.stats.queries += 1
            self.stats.errors += 1
            self.stats.busy_seconds += seconds

    def record_worker_crash(self) -> None:
        """One request lost to a crashed pool worker (after retries)."""
        with self._lock:
            self.stats.worker_crashes += 1

    def record_degraded(self) -> None:
        """One request answered below full service quality."""
        with self._lock:
            self.stats.degraded += 1

    def describe(self) -> dict[str, Any]:
        """A JSON-safe stats dict (graph shape + serving counters)."""
        graph = self.engine.graph
        cache = self.engine.cache_stats()
        with self._lock:
            stats = self.stats.as_dict()
        result_cache = self.engine.result_cache_stats()
        stats.update(
            name=self.name,
            num_vertices=graph.num_vertices,
            num_edges=graph.num_edges,
            labels="".join(sorted(graph.labels())),
            graph_view=self.engine.view_kind,
            plan_cache={
                "hits": cache.hits,
                "misses": cache.misses,
                "evictions": cache.evictions,
                "compiles": cache.compiles,
            },
            result_cache=result_cache.as_dict(),
            reachability_index=self.engine.reachability_info(),
            vectorized={
                "enabled": self.engine.vectorize,
                "group_min_size": self.engine.group_min_size,
            },
            portfolio={
                "enabled": self.engine.portfolio,
                "failure_probability": (
                    self.engine.portfolio_failure_probability
                ),
                "seed": self.engine.portfolio_seed,
            },
        )
        if self.pool is not None:
            # Pool-served graphs report both sides: the shared
            # parent-side counters above and the per-worker
            # cache/serving counters below.
            stats["workers"] = self.pool.stats()
            stats["snapshot_path"] = self.pool.snapshot_path
        return stats


class GraphRegistry:
    """Thread-safe name → compiled graph + engine + stats mapping.

    Parameters are the engine defaults applied to every graph
    registered through this registry (individual requests can still
    override deadline/budget per query).

    Parameters
    ----------
    plan_cache_size:
        LRU capacity of each graph's plan cache.
    exact_budget:
        Default step budget for exact-strategy queries.
    deadline_seconds:
        Default per-query wall-clock deadline.
    max_graphs:
        Optional cap on simultaneously registered graphs; registering
        beyond it raises :class:`~repro.errors.ServiceError` (evict
        first — the registry never silently drops a graph).
    result_cache / result_cache_size:
        Per-graph engine result cache knobs (see
        :class:`~repro.engine.QueryEngine`): repeated identical
        queries replay without touching a solver.
    use_reach_index:
        Build the label-constrained reachability index for every
        registered graph (short-circuits provably-negative queries).
    vectorize / group_min_size:
        Per-graph vectorized batch-execution knobs (see
        :class:`~repro.engine.QueryEngine`): batch queries sharing one
        plan are answered by a shared product sweep when the group has
        at least ``group_min_size`` members.  Individual ``/batch``
        requests can still override both.
    portfolio / portfolio_failure_probability / portfolio_seed:
        Per-graph hard-regime ladder knobs (see
        :class:`~repro.engine.QueryEngine`): ``portfolio`` routes
        exact-strategy queries through the anytime strategy ladder by
        default; individual ``/query`` and ``/batch`` requests can
        still override the routing either way.
    worker_processes:
        When > 0, every registered graph gets a pre-fork
        :class:`~repro.service.workers.WorkerPool` of this many
        processes, all attached read-only to one shared snapshot
        mapping, and the server answers ``/query`` and ``/batch``
        from the pool.  Graphs registered from memory (not from a
        snapshot file) are spooled to ``spool_dir`` first.  ``0``
        (the default) keeps the classic in-process serving path.
    spool_dir:
        Where pool snapshots for memory-registered graphs land.
        ``None`` creates a private temporary directory, removed by
        :meth:`close`.
    pool_kwargs:
        Extra :class:`~repro.service.workers.WorkerPool` constructor
        kwargs applied to every pool this registry builds (e.g.
        ``watchdog_seconds``, ``grace_seconds``); ignored when
        ``worker_processes`` is 0.
    """

    def __init__(self, plan_cache_size: int = 128,
                 exact_budget: int | None = None,
                 deadline_seconds: float | None = None,
                 max_graphs: int | None = None,
                 result_cache: bool = True,
                 result_cache_size: int = 1024,
                 use_reach_index: bool = True,
                 vectorize: bool = True,
                 group_min_size: int = 2,
                 portfolio: bool = False,
                 portfolio_failure_probability: float = 1e-3,
                 portfolio_seed: int = 0,
                 worker_processes: int = 0,
                 spool_dir: Any = None,
                 pool_kwargs: dict | None = None) -> None:
        if max_graphs is not None and max_graphs < 1:
            raise ValueError(
                "max_graphs must be >= 1 or None, got %r" % (max_graphs,)
            )
        if worker_processes < 0:
            raise ValueError(
                "worker_processes must be >= 0, got %d" % worker_processes
            )
        self.plan_cache_size = plan_cache_size
        self.exact_budget = exact_budget
        self.deadline_seconds = deadline_seconds
        self.max_graphs = max_graphs
        self.result_cache = result_cache
        self.result_cache_size = result_cache_size
        self.use_reach_index = use_reach_index
        self.vectorize = vectorize
        self.group_min_size = group_min_size
        self.portfolio = portfolio
        self.portfolio_failure_probability = portfolio_failure_probability
        self.portfolio_seed = portfolio_seed
        self.worker_processes = worker_processes
        # Read-only after construction (applied to every pool build).
        self.pool_kwargs = MappingProxyType(dict(pool_kwargs or {}))
        self._spool_dir = None if spool_dir is None else os.fspath(spool_dir)
        self._spool_owned = False
        self._spool_counter = 0
        self._entries: dict[str, RegisteredGraph] = {}
        self._lock = threading.Lock()

    def _engine_kwargs(self) -> dict[str, Any]:
        return {
            "plan_cache_size": self.plan_cache_size,
            "exact_budget": self.exact_budget,
            "deadline_seconds": self.deadline_seconds,
            "result_cache": self.result_cache,
            "result_cache_size": self.result_cache_size,
            "use_reach_index": self.use_reach_index,
            "vectorize": self.vectorize,
            "group_min_size": self.group_min_size,
            "portfolio": self.portfolio,
            "portfolio_failure_probability": (
                self.portfolio_failure_probability
            ),
            "portfolio_seed": self.portfolio_seed,
        }

    # -- worker pools ------------------------------------------------------------

    def _ensure_spool_dir(self) -> str:
        with self._lock:
            if self._spool_dir is None:
                self._spool_dir = tempfile.mkdtemp(prefix="repro-spool-")
                self._spool_owned = True
            else:
                os.makedirs(self._spool_dir, exist_ok=True)
            return self._spool_dir

    def _build_pool(self, name: str, engine: QueryEngine) -> Any:
        """The pre-fork pool for one graph (None when pools are off).

        Pool workers need a snapshot file to attach to; an engine
        built from an in-memory graph gets one spooled here first
        (the snapshot *is* the shared-memory segment).
        """
        if not self.worker_processes:
            return None
        from .workers import WorkerPool

        snapshot_path = engine.snapshot_path
        if snapshot_path is None:
            directory = self._ensure_spool_dir()
            with self._lock:
                self._spool_counter += 1
                count = self._spool_counter
            snapshot_path = os.path.join(
                directory, "graph-%04d-%s.snap" % (count, _safe_name(name))
            )
            try:
                faults.spool_fault(snapshot_path)
                engine.save_snapshot(snapshot_path)
            except OSError as err:
                # Spool-dir IO failure (disk full, permissions, or an
                # injected fault): a clean 503 the client can retry,
                # not a stack trace — and no half-written snapshot
                # (save_snapshot writes via rename).
                raise ServiceError(
                    "could not spool snapshot for graph %r: %s"
                    % (name, err),
                    status=503,
                    retry_after=1.0,
                    error_type="spool_io",
                ) from err
        return WorkerPool(
            snapshot_path,
            engine_kwargs=engine._worker_engine_kwargs(),
            workers=self.worker_processes,
            **self.pool_kwargs,
        )

    def close(self) -> None:
        """Shut down every entry's worker pool and drop the registry.

        A pool-less registry needs no teardown; with pools this must
        run before interpreter exit so workers exit cleanly and an
        owned spool directory is removed.
        """
        with self._lock:
            entries = list(self._entries.values())
            self._entries.clear()
            spool_dir = self._spool_dir if self._spool_owned else None
            self._spool_dir = None if self._spool_owned else self._spool_dir
            self._spool_owned = False
        for entry in entries:
            entry.close()
        if spool_dir is not None:
            shutil.rmtree(spool_dir, ignore_errors=True)

    # -- registration -----------------------------------------------------------

    # invariant: holds-lock
    def _admit(self, name: str) -> None:
        if name in self._entries:
            raise ServiceError(
                "graph %r is already registered (evict it first)" % name,
                status=409,
            )
        if self.max_graphs is not None and (
            len(self._entries) >= self.max_graphs
        ):
            raise ServiceError(
                "registry is full (%d graphs); evict one before "
                "registering %r" % (len(self._entries), name),
                status=409,
            )

    def _install(self, name: str, engine: QueryEngine,
                 stats: GraphStats, pool: Any = None) -> RegisteredGraph:
        entry = RegisteredGraph(name, engine, stats, pool)
        try:
            with self._lock:
                self._admit(name)
                self._entries[name] = entry
        except BaseException:
            entry.close()  # a raced duplicate must not leak its pool
            raise
        return entry

    def register(self, name: str, graph: Any) -> RegisteredGraph:
        """Register ``graph`` under ``name``, compiling it if needed.

        Accepts a :class:`DbGraph` (compiled to an indexed view here)
        or a pre-compiled :class:`IndexedGraph` (e.g. one thawed from a
        snapshot by the caller).  Returns the :class:`RegisteredGraph`.
        """
        with self._lock:
            self._admit(name)  # fail fast before paying for the compile
        start = time.perf_counter()
        engine = QueryEngine(graph, **self._engine_kwargs())
        pool = self._build_pool(name, engine)
        stats = GraphStats(
            source=(
                "indexed" if isinstance(graph, IndexedGraph) else "compiled"
            ),
            prepare_seconds=time.perf_counter() - start,
        )
        return self._install(name, engine, stats, pool)

    def register_snapshot(self, name: str, path: Any) -> RegisteredGraph:
        """Warm-start ``name`` from a snapshot file on disk.

        With worker pools enabled the parent *attaches* to the
        snapshot instead of copying it — parent and every pool worker
        then share one physical copy of the graph.
        """
        with self._lock:
            self._admit(name)
        start = time.perf_counter()
        if self.worker_processes:
            graph = attach_snapshot(path)
        else:
            graph = load_snapshot(path)
        engine = QueryEngine(graph, **self._engine_kwargs())
        pool = self._build_pool(name, engine)
        stats = GraphStats(
            source="snapshot",
            prepare_seconds=time.perf_counter() - start,
        )
        return self._install(name, engine, stats, pool)

    def evict(self, name: str) -> RegisteredGraph:
        """Drop ``name`` (engine, plan cache, pool and stats go with it)."""
        with self._lock:
            entry = self._entries.pop(name, None)
        if entry is None:
            raise ServiceError("unknown graph %r" % name, status=404)
        entry.close()
        return entry

    # -- lookup ------------------------------------------------------------------

    def get(self, name: str) -> RegisteredGraph:
        """The :class:`RegisteredGraph` for ``name`` (404 if unknown)."""
        with self._lock:
            entry = self._entries.get(name)
            known = sorted(self._entries) if entry is None else []
        if entry is None:
            raise ServiceError(
                "unknown graph %r (registered: %s)"
                % (name, ", ".join(known) or "none"),
                status=404,
            )
        return entry

    def resolve(self, name: str | None) -> RegisteredGraph:
        """Like :meth:`get`, but ``None`` picks the sole graph if any.

        A single-graph deployment should not need to spell the name in
        every request; with two or more graphs the name is required.
        """
        if name is not None:
            return self.get(name)
        with self._lock:
            if len(self._entries) == 1:
                return next(iter(self._entries.values()))
            count = len(self._entries)
        raise ServiceError(
            "request names no graph and the registry holds %d — pass "
            "'graph'" % count,
            status=400,
        )

    def engine(self, name: str) -> QueryEngine:
        return self.get(name).engine

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._entries)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._entries

    def describe(self) -> list[dict[str, Any]]:
        """JSON-safe stats for every registered graph (sorted by name)."""
        with self._lock:
            entries = sorted(self._entries.items())
        return [entry.describe() for _name, entry in entries]
