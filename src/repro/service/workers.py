"""Pre-fork worker pool serving queries off one shared snapshot.

The single-interpreter bottleneck: every solver in this repo runs
under the GIL, so one process can saturate exactly one core no matter
how many threads the service executor spawns.  The classic escape —
``run_batch(mode="process")`` — used to pickle the whole compiled
graph into every worker, multiplying memory by the worker count and
dominating startup with array deserialisation.

:class:`WorkerPool` replaces both costs with the snapshot file
itself.  Workers are spawned with only a *path* and an engine config;
each one attaches read-only to the mmapped snapshot
(:func:`~repro.service.snapshot.attach_snapshot`) — zero array
copies, so N workers share one physical copy of the graph through
the page cache — and builds its own :class:`~repro.engine.QueryEngine`
around it (private plan cache, private result cache, private
``ExecutionContext`` per query, exactly like an independent server).

Parent ↔ worker protocol is a strict request/response over one
:func:`multiprocessing.Pipe` per worker:

``("query", (language, source, target, overrides))``
    One RSPQ; the reply carries the :class:`EngineResult` or a
    re-raisable :class:`~repro.errors.ReproError` by class name.
``("batch", (shard, overrides, vectorized, group_min_size))``
    An indexed shard of a batch — ``[(index, (lang, src, tgt)), ...]``
    — answered serially or through the vectorized shared-plan sweep,
    replying with ``(pairs, plan_delta, result_delta, vec_stats)``.
``("stats",)`` / ``("ping",)`` / ``("shutdown",)``
    Introspection, liveness and orderly exit.

The parent side polls the pipe with a short interval so it can
notice three things between frames: the reply arriving, the worker
*dying* (``is_alive`` goes false → respawn with exponential backoff
and retry the request on a sibling — queries are pure, so the retry
is idempotent), and the request overrunning its deadline plus a
grace period (the worker is presumed wedged, killed, respawned, and
the caller gets :class:`~repro.errors.DeadlineExceededError`).

Batch sharding reuses the engine's plan-group discipline: queries
are grouped by compiled plan, groups placed largest-first onto the
least-loaded worker, ungroupable leftovers strided — the same
balancing ``run_batch(mode="process")`` uses, so pool answers are
bit-identical to single-process answers.
"""

from __future__ import annotations

import multiprocessing
import os
import queue
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from types import MappingProxyType
from typing import Any

from .. import errors as _errors
from ..errors import (
    DeadlineExceededError,
    ReproError,
    SnapshotError,
    WorkerCrashError,
)
from ..engine import (
    BatchResult,
    PlanCacheStats,
    QueryEngine,
    VectorizedBatchStats,
    group_by_plan,
)
from . import faults

_OVERRIDE_KEYS = (
    "deadline_seconds", "budget", "portfolio", "max_path_edges",
)


def _rss_mb():
    """This process's resident set size in MiB (None if unknown)."""
    try:
        with open("/proc/self/status") as handle:
            for line in handle:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1]) / 1024.0
    except (OSError, ValueError, IndexError):  # pragma: no cover
        pass
    return None  # pragma: no cover - non-procfs hosts


def _worker_main(snapshot_path, engine_kwargs, conn, fault_spec=None):
    """Worker process body: attach once, then serve requests forever.

    Every mapped buffer the attached graph exposes is read-only
    shared state — nothing here may write into it (enforced by the
    ``snapshot-readonly`` invariant rule).

    ``fault_spec`` propagates the parent's installed
    :class:`~repro.service.faults.FaultPlan` (None in production):
    installing it *before* the attach means snapshot-corruption
    faults exercise the real worker startup path too.
    """
    from .snapshot import attach_snapshot

    faults.install_spec(fault_spec)
    try:
        graph = attach_snapshot(snapshot_path)
        engine = QueryEngine(graph, **engine_kwargs)
    except BaseException as err:
        try:
            conn.send(
                ("startup-error", "%s: %s" % (type(err).__name__, err))
            )
        except (BrokenPipeError, OSError):  # pragma: no cover
            pass
        conn.close()
        return
    conn.send(("ready", os.getpid()))
    served_queries = 0
    served_batches = 0
    while True:
        try:
            request = conn.recv()
        except (EOFError, OSError):
            break
        kind = request[0]
        if kind == "shutdown":
            try:
                conn.send(("ok", None))
            except (BrokenPipeError, OSError):  # pragma: no cover
                pass
            break
        if kind == "exit":
            # Test hook: simulate a hard crash (no reply, no cleanup).
            os._exit(int(request[1]))
        if kind in ("query", "batch"):
            action = faults.worker_fault()
            if action == "crash":
                os._exit(3)
            elif action is not None:
                # "hang" sleeps past any deadline (the parent kills
                # us); "slow" delays the reply but still answers.
                time.sleep(faults.worker_stall_seconds(action))
        try:
            if kind == "query":
                language, source, target, overrides = request[1]
                result = engine.query(language, source, target, **overrides)
                served_queries += 1
                reply = ("ok", result)
            elif kind == "batch":
                shard, overrides, vectorized, min_size = request[1]
                plan_before = engine.cache_stats()
                results_before = engine.result_cache_stats()
                if vectorized:
                    pairs, vec_stats = engine._run_batch_vectorized_indexed(
                        shard, overrides, min_size
                    )
                else:
                    vec_stats = None
                    pairs = [
                        (
                            index,
                            engine._run_single(
                                language, source, target, **overrides
                            ),
                        )
                        for index, (language, source, target) in shard
                    ]
                served_batches += 1
                served_queries += len(shard)
                reply = ("ok", (
                    pairs,
                    engine.plan_cache.stats_delta(plan_before),
                    engine._result_cache_delta(results_before),
                    vec_stats,
                ))
            elif kind == "stats":
                cache = engine.cache_stats()
                reply = ("ok", {
                    "pid": os.getpid(),
                    "served_queries": served_queries,
                    "served_batches": served_batches,
                    "rss_mb": _rss_mb(),
                    "plan_cache": {
                        "hits": cache.hits,
                        "misses": cache.misses,
                        "evictions": cache.evictions,
                        "compiles": cache.compiles,
                    },
                    "result_cache": engine.result_cache_stats().as_dict(),
                })
            elif kind == "ping":
                reply = ("ok", os.getpid())
            else:
                reply = (
                    "error", "ValueError",
                    "unknown request kind %r" % (kind,),
                )
        except ReproError as err:
            # Engine-level errors are *answers*: re-raised by class
            # name on the parent side, exactly like in-process serving.
            reply = ("repro-error", type(err).__name__, str(err))
        except BaseException as err:  # pragma: no cover - defensive
            reply = ("error", type(err).__name__, str(err))
        try:
            conn.send(reply)
        except (BrokenPipeError, OSError):  # pragma: no cover
            break
    conn.close()


class _WorkerDied(Exception):
    """Internal: the worker's process ended mid-request."""


class _WorkerHung(Exception):
    """Internal: the worker overran deadline + grace without replying."""


class _WorkerHandle:
    """Parent-side bookkeeping for one worker process."""

    __slots__ = ("index", "process", "conn", "crashes", "lock",
                 "busy_since", "busy_deadline", "busy_token")

    def __init__(self, index, process, conn):
        self.index = index
        self.process = process
        self.conn = conn
        #: Consecutive crashes at this slot (drives respawn backoff;
        #: reset by the first successful reply).
        self.crashes = 0
        #: Guards the busy_* fields: the request thread stamps and
        #: clears them under this lock, and the watchdog re-checks
        #: under it immediately before a kill, so a worker that just
        #: finished (or started a fresh request) is never shot for a
        #: stale observation.
        self.lock = threading.Lock()
        #: Monotonic instant the in-flight request started (None when
        #: idle) and its absolute give-up time — what the watchdog
        #: reads to find wedged workers.
        self.busy_since = None
        self.busy_deadline = None
        #: Generation counter bumped at every checkout; the watchdog
        #: only kills if the token it scanned is still the one in
        #: flight.
        self.busy_token = 0


class WorkerPool:
    """Pre-fork query workers attached to one shared snapshot.

    Parameters
    ----------
    snapshot_path:
        The snapshot every worker attaches to (see module docstring).
    engine_kwargs:
        :class:`~repro.engine.QueryEngine` constructor kwargs applied
        in every worker (typically ``engine._worker_engine_kwargs()``).
    workers:
        Number of pre-forked processes.
    respawn_backoff / max_backoff:
        Exponential backoff between a crash and the respawn: the n-th
        consecutive crash of a slot waits ``respawn_backoff * 2**(n-1)``
        seconds, capped at ``max_backoff``.
    grace_seconds:
        Extra wall-clock allowance past a request's deadline before
        the worker is presumed wedged and killed.
    poll_interval:
        Pipe polling granularity (crash/deadline detection latency).
    max_retries:
        How many times one request may be retried across crashes
        before :class:`~repro.errors.WorkerCrashError` surfaces.
    start_timeout:
        Seconds to wait for a fresh worker's ready handshake.
    watchdog_seconds:
        When set, a daemon watchdog thread hard-kills any worker
        that has been busy on one request for longer than this (or
        past the request's own give-up deadline, whichever is
        sooner).  This is what reclaims a wedged worker holding a
        request *without* a deadline — the per-request ``_recv``
        timeout only fires when a deadline exists.  None disables it.
    """

    def __init__(self, snapshot_path: Any,
                 engine_kwargs: dict | None = None,
                 workers: int = 2,
                 respawn_backoff: float = 0.05,
                 max_backoff: float = 2.0,
                 grace_seconds: float = 10.0,
                 poll_interval: float = 0.05,
                 max_retries: int = 2,
                 start_timeout: float = 60.0,
                 watchdog_seconds: float | None = None,
                 mp_context: Any = None) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1, got %d" % workers)
        if watchdog_seconds is not None and watchdog_seconds <= 0:
            raise ValueError(
                "watchdog_seconds must be positive or None, got %r"
                % (watchdog_seconds,)
            )
        self.snapshot_path = os.fspath(snapshot_path)
        # Read-only after construction (workers inherit it at fork
        # time); the proxy also keeps it out of lock-guarded state.
        self.engine_kwargs = MappingProxyType(dict(engine_kwargs or {}))
        self.respawn_backoff = respawn_backoff
        self.max_backoff = max_backoff
        self.grace_seconds = grace_seconds
        self.poll_interval = poll_interval
        self.max_retries = max_retries
        self.start_timeout = start_timeout
        self.watchdog_seconds = watchdog_seconds
        self._watchdog_kills = 0
        self._watchdog_stop = threading.Event()
        self._watchdog_thread: threading.Thread | None = None
        self._workers = workers
        self._ctx = (
            mp_context if mp_context is not None
            else multiprocessing.get_context()
        )
        self._lock = threading.Lock()
        self._closed = False
        self._crashes = 0
        self._respawns = 0
        self._requests = 0
        self._idle: queue.Queue = queue.Queue()
        self._handles: list[_WorkerHandle] = []
        self._executor = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-pool"
        )
        try:
            for index in range(workers):
                self._handles.append(self._spawn(index))
        except BaseException:
            for handle in self._handles:
                self._kill(handle)
            self._executor.shutdown(wait=False)
            raise
        for handle in self._handles:
            self._idle.put(handle)
        if watchdog_seconds is not None:
            self._watchdog_thread = threading.Thread(
                target=self._watchdog_loop,
                name="repro-pool-watchdog",
                daemon=True,
            )
            self._watchdog_thread.start()

    # -- lifecycle ---------------------------------------------------------------

    @property
    def workers(self) -> int:
        return self._workers

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self, timeout: float = 5.0) -> None:
        """Shut every worker down (drain in-flight batches first)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            handles = list(self._handles)
        self._watchdog_stop.set()
        if self._watchdog_thread is not None:
            self._watchdog_thread.join(timeout=timeout)
        self._executor.shutdown(wait=True)
        for handle in handles:
            try:
                handle.conn.send(("shutdown",))
            except (BrokenPipeError, OSError):
                pass
        for handle in handles:
            handle.process.join(timeout=timeout)
            if handle.process.is_alive():  # pragma: no cover - stuck worker
                handle.process.kill()
                handle.process.join(timeout=timeout)
            try:
                handle.conn.close()
            except OSError:  # pragma: no cover
                pass

    def kill_worker(self, index: int) -> None:
        """Test hook: hard-kill worker ``index`` (crash-recovery drills)."""
        with self._lock:
            handle = self._handles[index]
        if handle.process.is_alive():
            handle.process.kill()
            handle.process.join(timeout=5.0)

    def _spawn(self, index):
        parent_conn, child_conn = self._ctx.Pipe()
        process = self._ctx.Process(
            target=_worker_main,
            args=(self.snapshot_path, dict(self.engine_kwargs), child_conn,
                  faults.active_spec()),
            name="repro-pool-%d" % index,
            daemon=True,
        )
        process.start()
        child_conn.close()
        deadline = time.monotonic() + self.start_timeout
        message = None
        while True:
            remaining = deadline - time.monotonic()
            try:
                if parent_conn.poll(min(max(remaining, 0.0), 0.1)):
                    message = parent_conn.recv()
                    break
            except (EOFError, OSError):
                break
            if not process.is_alive():
                # One final poll: the ready frame may have landed just
                # before the exit.
                try:
                    if parent_conn.poll(0):
                        message = parent_conn.recv()
                except (EOFError, OSError):  # pragma: no cover
                    pass
                break
            if remaining <= 0:
                break
        if message is None:
            process.kill()
            process.join(timeout=5.0)
            parent_conn.close()
            raise WorkerCrashError(
                "pool worker %d died or hung before its ready handshake"
                % index
            )
        if message[0] != "ready":
            process.join(timeout=5.0)
            parent_conn.close()
            raise SnapshotError(
                "pool worker %d could not attach %s: %s"
                % (index, self.snapshot_path, message[1])
            )
        return _WorkerHandle(index, process, parent_conn)

    def _kill(self, handle):
        if handle.process.is_alive():
            handle.process.kill()
        handle.process.join(timeout=5.0)
        try:
            handle.conn.close()
        except OSError:  # pragma: no cover
            pass

    def _respawn(self, handle):
        """Replace a dead worker: backoff, spawn, register, return it."""
        self._kill(handle)
        with self._lock:
            self._crashes += 1
            handle.crashes += 1
            crashes = handle.crashes
            closed = self._closed
        if closed:
            raise WorkerCrashError("pool is closed")
        delay = min(
            self.respawn_backoff * (2 ** (crashes - 1)), self.max_backoff
        )
        if delay > 0:
            time.sleep(delay)
        fresh = self._spawn(handle.index)
        fresh.crashes = crashes
        with self._lock:
            self._handles[handle.index] = fresh
            self._respawns += 1
        return fresh

    def _watchdog_loop(self):
        """Hard-kill workers wedged on one request for too long.

        Scans every ``poll_interval`` for handles whose in-flight
        request has outlived ``watchdog_seconds`` (or its own give-up
        deadline) and kills the process.  The thread blocked in
        ``_recv`` then observes the death and runs the normal
        respawn-and-retry path — the watchdog only converts a silent
        wedge into a detectable crash.

        The kill re-validates the scanned generation token under the
        handle lock: between the scan and the kill the long request
        may have completed and the worker been checked out for a new
        one — shooting it then would crash a healthy request and feed
        a spurious failure into the breaker and the ladder.
        """
        interval = max(self.poll_interval, 0.01)
        while not self._watchdog_stop.wait(interval):
            now = time.monotonic()
            with self._lock:
                handles = list(self._handles)
            for handle in handles:
                with handle.lock:
                    busy_since = handle.busy_since
                    busy_deadline = handle.busy_deadline
                    busy_token = handle.busy_token
                if busy_since is None:
                    continue
                limit = busy_since + self.watchdog_seconds
                if busy_deadline is not None:
                    limit = min(limit, busy_deadline)
                if now <= limit or not handle.process.is_alive():
                    continue
                with handle.lock:
                    if (handle.busy_since is None
                            or handle.busy_token != busy_token):
                        continue  # that request already completed
                    handle.process.kill()
                with self._lock:
                    self._watchdog_kills += 1

    # -- request plumbing --------------------------------------------------------

    def _checkout(self, deadline):
        with self._lock:
            if self._closed:
                raise WorkerCrashError("pool is closed")
        timeout = (
            None if deadline is None else max(deadline - time.monotonic(), 0)
        )
        try:
            return self._idle.get(timeout=timeout)
        except queue.Empty:
            raise DeadlineExceededError(
                "no pool worker became idle before the request deadline"
            ) from None

    def _recv(self, handle, deadline):
        """Deadline-aware reply wait with crash detection."""
        conn = handle.conn
        process = handle.process
        while True:
            if deadline is not None and time.monotonic() > deadline:
                raise _WorkerHung()
            try:
                if conn.poll(self.poll_interval):
                    return conn.recv()
            except (EOFError, OSError):
                raise _WorkerDied() from None
            if not process.is_alive():
                # Drain a reply the worker may have flushed right
                # before dying.
                try:
                    if conn.poll(0):
                        return conn.recv()
                except (EOFError, OSError):  # pragma: no cover
                    pass
                raise _WorkerDied()

    def _roundtrip(self, message, deadline=None):
        """Send one request to an idle worker; returns the raw reply.

        Crashed workers are respawned (with backoff) and the request
        retried on a sibling up to ``max_retries`` times; a worker
        overrunning ``deadline`` is killed and the caller gets a
        :class:`DeadlineExceededError`.
        """
        attempts = 0
        while True:
            handle = self._checkout(deadline)
            with handle.lock:
                handle.busy_token += 1
                handle.busy_since = time.monotonic()
                handle.busy_deadline = deadline
            try:
                handle.conn.send(message)
                reply = self._recv(handle, deadline)
            except (_WorkerDied, BrokenPipeError, OSError):
                replacement = self._respawn(handle)
                self._idle.put(replacement)
                attempts += 1
                if attempts > self.max_retries:
                    raise WorkerCrashError(
                        "pool worker died %d time(s) answering one "
                        "request (each crash respawned a replacement)"
                        % attempts
                    ) from None
                continue
            except _WorkerHung:
                replacement = self._respawn(handle)
                self._idle.put(replacement)
                raise DeadlineExceededError(
                    "pool worker overran the request deadline plus "
                    "%.1fs grace and was respawned" % self.grace_seconds
                ) from None
            except BaseException:
                # Parent-side failure with the worker healthy.
                with handle.lock:
                    handle.busy_since = None
                    handle.busy_deadline = None
                self._idle.put(handle)
                raise
            with handle.lock:
                handle.busy_since = None
                handle.busy_deadline = None
            handle.crashes = 0
            self._idle.put(handle)
            with self._lock:
                self._requests += 1
            return reply

    @staticmethod
    def _unwrap(reply):
        kind = reply[0]
        if kind == "ok":
            return reply[1]
        if kind == "repro-error":
            _kind, cls_name, message = reply
            cls = getattr(_errors, cls_name, ReproError)
            if not (isinstance(cls, type) and issubclass(cls, ReproError)):
                cls = ReproError  # pragma: no cover - defensive
            raise cls(message)
        raise WorkerCrashError(
            "pool worker failed a request: %s: %s" % (reply[1], reply[2])
        )

    def _request_deadline(self, deadline_seconds, weight):
        """Absolute give-up time for one request (None = wait forever).

        The worker enforces the real per-query deadline inside its
        ``ExecutionContext``; this is only the parent-side hang
        detector, so it is scaled by the shard size and padded with
        the grace period.
        """
        effective = deadline_seconds
        if effective is None:
            effective = self.engine_kwargs.get("deadline_seconds")
        if effective is None:
            return None
        return (
            time.monotonic()
            + effective * max(1, weight)
            + self.grace_seconds
        )

    # -- public query API --------------------------------------------------------

    def query(self, language: Any, source: Any, target: Any,
              deadline_seconds: float | None = None,
              budget: int | None = None,
              portfolio: bool | None = None,
              max_path_edges: int | None = None) -> Any:
        """One RSPQ answered by a pool worker (engine-identical).

        Raises exactly what :meth:`QueryEngine.query` raises
        (re-constructed by class), plus :class:`WorkerCrashError` when
        the retry budget is spent.
        """
        QueryEngine._check_overrides(deadline_seconds, budget, max_path_edges)
        overrides = {
            "deadline_seconds": deadline_seconds,
            "budget": budget,
            "portfolio": portfolio,
            "max_path_edges": max_path_edges,
        }
        deadline = self._request_deadline(deadline_seconds, 1)
        reply = self._roundtrip(
            ("query", (language, source, target, overrides)), deadline
        )
        return self._unwrap(reply)

    def run_batch(self, queries: Any, workers: int | None = None,
                  deadline_seconds: float | None = None,
                  budget: int | None = None,
                  vectorize: bool | None = None,
                  group_min_size: int | None = None,
                  portfolio: bool | None = None,
                  max_path_edges: int | None = None) -> BatchResult:
        """A batch sharded across the pool; same contract as the engine.

        Results land in input order and are bit-identical to
        ``QueryEngine.run_batch`` on the same snapshot: shards are
        built with the engine's own plan grouping (largest group to
        the least-loaded worker, leftovers strided), and each worker
        answers its shard through the identical serial-or-vectorized
        dispatch.
        """
        query_list = list(queries)
        QueryEngine._check_overrides(deadline_seconds, budget, max_path_edges)
        if workers is None:
            workers = self._workers
        if workers < 1:
            raise ValueError("workers must be >= 1, got %d" % workers)
        use_vectorize = (
            vectorize if vectorize is not None
            else self.engine_kwargs.get("vectorize", True)
        )
        # Mirror QueryEngine._sweep_allowed: any *effective* budget or
        # deadline (override or worker-engine default) disables shared
        # sweeps so pool batches stay bit-identical to serial ones.
        effective_budget = (
            self.engine_kwargs.get("exact_budget")
            if budget is None else budget
        )
        effective_deadline = (
            self.engine_kwargs.get("deadline_seconds")
            if deadline_seconds is None else deadline_seconds
        )
        if effective_budget is not None or effective_deadline is not None:
            use_vectorize = False
        min_size = (
            group_min_size if group_min_size is not None
            else self.engine_kwargs.get("group_min_size", 2)
        )
        if min_size < 1:
            raise ValueError(
                "group_min_size must be >= 1, got %d" % min_size
            )
        overrides = {
            "deadline_seconds": deadline_seconds,
            "budget": budget,
            "portfolio": portfolio,
            "max_path_edges": max_path_edges,
        }
        start = time.perf_counter()
        shard_count = max(1, min(workers, self._workers, len(query_list)))
        shards: list[list] = [[] for _ in range(shard_count)]
        if use_vectorize:
            groups, ungroupable = group_by_plan(
                list(enumerate(query_list))
            )
            loads = [0] * shard_count
            ordered = sorted(
                groups.values(),
                key=lambda members: (-len(members), members[0][0]),
            )
            for members in ordered:
                slot = loads.index(min(loads))
                shards[slot].extend(members)
                loads[slot] += len(members)
            for offset, item in enumerate(ungroupable):
                shards[offset % shard_count].append(item)
        else:
            for index, triple in enumerate(query_list):
                shards[index % shard_count].append((index, triple))
        futures = [
            self._executor.submit(
                self._run_shard, shard, overrides, use_vectorize,
                min_size, deadline_seconds,
            )
            for shard in shards if shard
        ]
        results: list = [None] * len(query_list)
        plan_stats = PlanCacheStats()
        result_cache_stats = None
        vec_stats = VectorizedBatchStats() if use_vectorize else None
        errors = []
        for future in futures:
            try:
                pairs, shard_plan, shard_result, shard_vec = future.result()
            except BaseException as err:
                errors.append(err)
                continue
            for index, result in pairs:
                results[index] = result
            plan_stats = plan_stats + shard_plan
            if shard_result is not None:
                result_cache_stats = (
                    shard_result if result_cache_stats is None
                    else result_cache_stats + shard_result
                )
            if vec_stats is not None and shard_vec is not None:
                vec_stats = vec_stats + shard_vec
        if errors:
            raise errors[0]
        return BatchResult(
            results=results,
            seconds=time.perf_counter() - start,
            cache_stats=plan_stats,
            workers=shard_count,
            result_cache_stats=result_cache_stats,
            stats=vec_stats,
        )

    def _run_shard(self, shard, overrides, vectorized, min_size,
                   deadline_seconds):
        deadline = self._request_deadline(deadline_seconds, len(shard))
        reply = self._roundtrip(
            ("batch", (shard, overrides, vectorized, min_size)), deadline
        )
        return self._unwrap(reply)

    # -- introspection -----------------------------------------------------------

    def stats(self) -> dict[str, Any]:
        """Pool counters plus a per-worker sample (for ``/stats``).

        Per-worker blocks are collected from workers that are *idle*
        at the instant of the call (a stats probe never queues behind
        a long-running query); ``sampled`` says how many of the
        ``workers`` answered.  Aggregate cache/serving counters are
        summed over the sampled workers.
        """
        with self._lock:
            info: dict[str, Any] = {
                "workers": self._workers,
                "requests": self._requests,
                "crashes": self._crashes,
                "respawns": self._respawns,
                "watchdog_kills": self._watchdog_kills,
            }
        handles = []
        while True:
            try:
                handles.append(self._idle.get_nowait())
            except queue.Empty:
                break
        per_worker = []
        aggregate = {
            "served_queries": 0,
            "served_batches": 0,
            "plan_cache": {
                "hits": 0, "misses": 0, "evictions": 0, "compiles": 0,
            },
        }
        probe_deadline = time.monotonic() + self.grace_seconds
        for handle in handles:
            try:
                handle.conn.send(("stats",))
                block = self._unwrap(self._recv(handle, probe_deadline))
            except (_WorkerDied, _WorkerHung, BrokenPipeError, OSError,
                    WorkerCrashError):
                # A worker found dead during a probe is respawned like
                # any other crash; the probe itself is best-effort.
                try:
                    self._idle.put(self._respawn(handle))
                except ReproError:  # pragma: no cover - respawn failed
                    pass
                continue
            self._idle.put(handle)
            per_worker.append(block)
            aggregate["served_queries"] += block["served_queries"]
            aggregate["served_batches"] += block["served_batches"]
            for key in aggregate["plan_cache"]:
                aggregate["plan_cache"][key] += block["plan_cache"][key]
        info["sampled"] = len(per_worker)
        info["aggregate"] = aggregate
        info["per_worker"] = per_worker
        return info

    def __repr__(self):
        return "WorkerPool(workers=%d, snapshot=%r)" % (
            self._workers, self.snapshot_path,
        )
