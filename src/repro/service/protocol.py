"""Wire format shared by the HTTP service and the ``--jsonl`` output.

One :class:`~repro.engine.engine.EngineResult` serialises to one flat
JSON object.  The field order is part of the contract — consumers may
stream-parse or diff outputs byte-for-byte — and is pinned by
:data:`RESULT_FIELDS`:

``language, source, target, strategy, found, length, word, path,
decompose_failed, steps, seconds, plan_cache_hit, result_cache_hit,
short_circuit, vectorized, confidence, failure_bound, degraded,
error``

* ``language`` — the language spec as a string (regex text).
* ``source`` / ``target`` — endpoints exactly as queried (JSON keeps
  int/string vertex names apart).
* ``strategy`` — the dispatched solver (``finite-AC0`` /
  ``trc-nice-path`` / ``exact-backtracking``) or ``error``.
* ``found`` — whether a simple path exists; ``length`` / ``word`` /
  ``path`` are ``null`` when it does not (or on error).
* ``decompose_failed`` — the tractable-but-undecomposed warning flag.
* ``steps`` — the dispatched solver's work counter; ``seconds`` —
  wall-clock for this query; ``plan_cache_hit`` — whether the plan was
  already cached.
* ``result_cache_hit`` — the answer was replayed from the engine
  result cache (no solver ran; ``steps`` reports the original solve).
* ``short_circuit`` — the reachability index proved NOT_FOUND under
  the plan's label mask and no solver ran (``steps`` is 0).
* ``vectorized`` — a shared multi-query product sweep proved the
  answer (batch mode only; ``steps`` reports sweep rounds charged to
  this query).
* ``confidence`` — ``certified`` for exact answers (every classic
  strategy, and portfolio answers backed by a witness or proof);
  ``probabilistic`` for portfolio negatives whose randomized rungs
  may have missed a path.
* ``failure_bound`` — the error bound of a probabilistic negative;
  ``null`` when ``confidence`` is ``certified``.
* ``degraded`` — the serving tier answered below full service (the
  degradation ladder routed this query through the portfolio or the
  reachability index only); always ``false`` for direct engine use.
  Degraded answers are never *wrong* — ``confidence`` /
  ``failure_bound`` still say exactly how strong the answer is.
* ``error`` — ``null`` for answered queries, otherwise the message of
  the isolated per-query failure.

:func:`result_record` is the single producer of that shape; both
``repro batch --jsonl`` and the server's ``/query`` and ``/batch``
responses go through it, so differential tooling can compare the two
transports directly.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:
    from ..engine.engine import BatchResult, EngineResult

#: The documented, deterministic field order of one result record.
RESULT_FIELDS = (
    "language",
    "source",
    "target",
    "strategy",
    "found",
    "length",
    "word",
    "path",
    "decompose_failed",
    "steps",
    "seconds",
    "plan_cache_hit",
    "result_cache_hit",
    "short_circuit",
    "vectorized",
    "confidence",
    "failure_bound",
    "degraded",
    "error",
)


def result_record(result: EngineResult,
                  degraded: bool = False) -> dict[str, Any]:
    """One :class:`EngineResult` as a dict in :data:`RESULT_FIELDS` order."""
    return {
        "language": str(result.language),
        "source": result.source,
        "target": result.target,
        "strategy": result.strategy,
        "found": result.found,
        "length": result.length,
        "word": None if result.path is None else result.path.word,
        "path": (
            None if result.path is None else list(result.path.vertices)
        ),
        "decompose_failed": result.decompose_failed,
        "steps": result.stats.steps,
        "seconds": result.stats.seconds,
        "plan_cache_hit": result.stats.plan_cache_hit,
        "result_cache_hit": result.stats.result_cache_hit,
        "short_circuit": result.stats.short_circuit,
        "vectorized": result.stats.vectorized,
        "confidence": result.confidence,
        "failure_bound": result.failure_bound,
        "degraded": degraded,
        "error": result.error,
    }


def batch_record(batch: BatchResult,
                 degraded: bool = False) -> dict[str, Any]:
    """A :class:`BatchResult` as a JSON-safe dict (results + counters)."""
    record: dict[str, Any] = {
        "results": [
            result_record(result, degraded=degraded)
            for result in batch.results
        ],
        "seconds": batch.seconds,
        "workers": batch.workers,
        "found_count": batch.found_count,
        "error_count": batch.error_count,
        "plans_compiled": batch.plans_compiled,
        "plan_cache_hits": batch.plan_cache_hits,
    }
    if batch.cache_stats is not None:
        record["cache_stats"] = {
            "hits": batch.cache_stats.hits,
            "misses": batch.cache_stats.misses,
            "evictions": batch.cache_stats.evictions,
            "compiles": batch.cache_stats.compiles,
        }
    if batch.result_cache_stats is not None:
        record["result_cache_stats"] = {
            "hits": batch.result_cache_stats.hits,
            "misses": batch.result_cache_stats.misses,
            "invalidations": batch.result_cache_stats.invalidations,
        }
    if batch.stats is not None:
        record["vectorized_stats"] = batch.stats.as_dict()
    return record
