"""repro.service — the long-lived, multi-graph query serving tier.

The engine layer (:mod:`repro.engine`) answers one batch against one
compiled graph, in process.  This package turns that into a service:

* :class:`GraphRegistry` (:mod:`repro.service.registry`) hosts many
  named graphs, each bound to its compiled
  :class:`~repro.engine.IndexedGraph` and a thread-safe plan cache,
  with register/evict semantics and per-graph serving stats;
* :mod:`repro.service.snapshot` persists a compiled graph (CSR arrays
  + label table behind a versioned, checksummed header) so a restarted
  service warm-starts from disk instead of recompiling — loading a
  snapshot skips every repr-sort the compile pass pays for, and
  *attaching* (:func:`attach_snapshot`) maps the file read-only with
  zero array copies so many processes share one copy of the graph;
* :class:`WorkerPool` (:mod:`repro.service.workers`) pre-forks N
  query workers attached to one shared snapshot mapping — the
  multi-core serving path (``repro serve --worker-processes N``) with
  crash detection, respawn-with-backoff and deadline-aware dispatch;
* :class:`QueryService` (:mod:`repro.service.server`) is a stdlib-only
  asyncio JSON-over-HTTP server (``repro serve``) exposing
  query/batch/classify/stats/graph-management endpoints, with
  admission control (bounded in-flight queries, immediate 429 beyond
  capacity) and per-request deadlines mapped onto each query's
  :class:`~repro.execution.ExecutionContext`;
* :class:`ServiceClient` (:mod:`repro.service.client`) is the matching
  stdlib HTTP client plus a load generator that drives a live server
  and checks responses path-for-path against direct
  :func:`~repro.core.solver.solve_rspq` answers;
* :mod:`repro.service.protocol` pins the wire format — in particular
  :data:`~repro.service.protocol.RESULT_FIELDS`, the documented,
  deterministic field order shared by the HTTP responses and the
  ``repro batch --jsonl`` output;
* :mod:`repro.service.resilience` holds the self-healing primitives —
  per-graph :class:`CircuitBreaker`, deadline-aware
  :class:`LoadShedder` and the graceful-degradation
  :class:`DegradationLadder` the server wires together;
* :mod:`repro.service.faults` is the deterministic fault-injection
  harness (:class:`FaultPlan`) the chaos tests drive — worker
  crash/hang/slow-reply, snapshot corruption, spool IO errors and
  clock-skewed deadlines, all dormant unless a plan is explicitly
  installed.

Everything here is standard library only, by design: the serving tier
must run wherever the solvers do.

Submodules load lazily (PEP 562): ``from repro.service import X``
works for every name below, but importing just the wire protocol (as
the CLI does for ``--jsonl``) does not drag in the asyncio server or
the HTTP client.
"""

from importlib import import_module

#: Public name -> defining submodule (resolved on first attribute use).
_EXPORTS = {
    "GraphRegistry": ".registry",
    "GraphStats": ".registry",
    "RegisteredGraph": ".registry",
    "attach_snapshot": ".snapshot",
    "AttachedGraph": ".snapshot",
    "load_snapshot": ".snapshot",
    "save_snapshot": ".snapshot",
    "snapshot_info": ".snapshot",
    "WorkerPool": ".workers",
    "QueryService": ".server",
    "ServiceConfig": ".server",
    "ServiceThread": ".server",
    "ServiceClient": ".client",
    "run_load": ".client",
    "verify_against_direct": ".client",
    "RESULT_FIELDS": ".protocol",
    "result_record": ".protocol",
    "FaultPlan": ".faults",
    "BreakerConfig": ".resilience",
    "CircuitBreaker": ".resilience",
    "DegradationLadder": ".resilience",
    "LadderConfig": ".resilience",
    "LoadShedder": ".resilience",
    "ShedConfig": ".resilience",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name):
    submodule = _EXPORTS.get(name)
    if submodule is None:
        raise AttributeError(
            "module %r has no attribute %r" % (__name__, name)
        )
    value = getattr(import_module(submodule, __name__), name)
    globals()[name] = value  # cache: next access skips this hook
    return value


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))
