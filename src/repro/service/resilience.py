"""Self-healing serving primitives: breaker, shedder, degradation ladder.

Three small state machines that keep the service *correct and live*
when workers crash, load spikes, or storage rots — the failure modes
:mod:`repro.service.faults` injects deterministically and
``tests/test_chaos.py`` asserts invariants over:

* :class:`CircuitBreaker` — per-graph closed → open → half-open with
  seeded jittered exponential cooldown.  Repeated server-side faults
  (worker crashes) open the circuit so clients get an immediate 503 +
  ``Retry-After`` instead of queueing onto a broken pool; one
  half-open probe per cooldown decides recovery.
* :class:`LoadShedder` — deadline-aware admission control replacing
  the flat in-flight bound.  The hard cap still holds, but inside the
  pressure band above the soft watermark the shedder drops the work
  that is *cheapest to retry* first (small, deadline-less requests)
  while still admitting expensive batches, and sheds doomed work —
  requests whose deadline cannot survive the current queue — upfront.
  Every shed carries a ``Retry-After`` hint derived from the observed
  service rate.
* :class:`DegradationLadder` — the service-wide health level.  Fault
  events (worker crashes, breaker opens, sustained shedding) escalate
  it; quiet time steps it back down one rung at a time.  The server
  maps levels onto answer quality: level 1 routes hard-regime queries
  through the anytime portfolio (probabilistic answers, surfaced via
  the existing ``confidence`` / ``failure_bound`` protocol fields and
  ``degraded=true``), level 2 serves only reachability-index-certified
  negatives and sheds everything else.  Degraded mode never returns a
  *wrong* answer — only a cheaper or refused one.

Every class takes an injectable monotonic ``clock`` so the chaos unit
tests drive transitions deterministically; all jitter is seeded.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable

from ..errors import ServiceOverloadedError

__all__ = [
    "BreakerConfig",
    "BreakerOpenError",
    "CircuitBreaker",
    "DegradationLadder",
    "LadderConfig",
    "LoadShedder",
    "ShedConfig",
    "LEVEL_FULL",
    "LEVEL_PORTFOLIO",
    "LEVEL_REACH_ONLY",
    "LEVEL_NAMES",
]

#: Degradation rungs (see DegradationLadder).
LEVEL_FULL = 0
LEVEL_PORTFOLIO = 1
LEVEL_REACH_ONLY = 2
LEVEL_NAMES = ("full", "portfolio", "reach-only")

#: Breaker states.
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class BreakerOpenError(ServiceOverloadedError):
    """Raised when a request hits an open circuit (maps to 503)."""

    def __init__(self, message: str, retry_after: "float | None" = None):
        super().__init__(message, status=503)
        self.retry_after = retry_after
        self.error_type = "circuit_open"


@dataclass
class BreakerConfig:
    """Knobs for one :class:`CircuitBreaker`."""

    #: Consecutive server-side failures that trip the circuit open.
    failure_threshold: int = 5
    #: Base cooldown before the first half-open probe; doubles per
    #: consecutive open, capped at ``max_cooldown_seconds``.
    cooldown_seconds: float = 1.0
    max_cooldown_seconds: float = 30.0
    #: Fractional jitter applied to each cooldown (seeded).
    jitter: float = 0.1

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ValueError(
                "failure_threshold must be >= 1, got %d"
                % self.failure_threshold
            )
        if self.cooldown_seconds <= 0:
            raise ValueError(
                "cooldown_seconds must be positive, got %r"
                % (self.cooldown_seconds,)
            )
        if self.max_cooldown_seconds < self.cooldown_seconds:
            raise ValueError(
                "max_cooldown_seconds must be >= cooldown_seconds"
            )
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError(
                "jitter must be in [0, 1), got %r" % (self.jitter,)
            )


class CircuitBreaker:
    """Closed → open → half-open failure isolation for one graph.

    ``admit()`` returns ``None`` when the request may proceed, or the
    seconds until the next probe slot when the circuit is open (the
    caller turns that into 503 + ``Retry-After``).  While half-open,
    exactly one in-flight probe is admitted; its outcome closes or
    re-opens the circuit.  Only *server-side* faults should be fed to
    :meth:`record_failure` — a client's bad regex is not a reason to
    stop serving a graph.
    """

    def __init__(self, config: "BreakerConfig | None" = None,
                 seed: int = 0,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.config = config or BreakerConfig()
        self._clock = clock
        self._rng = random.Random(seed)
        self._lock = threading.Lock()
        self._state = CLOSED
        self._consecutive_failures = 0
        self._opens = 0
        self._opened_at: "float | None" = None
        self._cooldown = 0.0
        self._probe_inflight = False
        self._probe_started_at: "float | None" = None
        self._rejections = 0

    # -- decisions ---------------------------------------------------------------

    # invariant: holds-lock
    def _next_cooldown(self) -> float:
        base = min(
            self.config.cooldown_seconds * (2 ** max(self._opens - 1, 0)),
            self.config.max_cooldown_seconds,
        )
        if self.config.jitter:
            base *= 1.0 + self.config.jitter * self._rng.uniform(-1.0, 1.0)
        return base

    # invariant: holds-lock
    def _trip(self) -> None:
        self._opens += 1
        self._state = OPEN
        self._opened_at = self._clock()
        self._cooldown = self._next_cooldown()
        self._probe_inflight = False
        self._probe_started_at = None

    def admit(self) -> "float | None":
        """None = admitted; else seconds the caller should retry after."""
        with self._lock:
            if self._state == CLOSED:
                return None
            now = self._clock()
            assert self._opened_at is not None
            remaining = self._opened_at + self._cooldown - now
            if self._state == OPEN:
                if remaining > 0:
                    self._rejections += 1
                    return max(remaining, 1e-3)
                self._state = HALF_OPEN
                self._probe_inflight = False
                self._probe_started_at = None
            # Half-open: one probe at a time decides recovery.  A probe
            # outstanding for longer than a full cooldown is presumed
            # lost (its request was shed downstream or its handler died
            # before reporting an outcome) and its slot re-opens — a
            # leaked probe must never wedge the circuit half-open with
            # every request rejected and nothing left to close it.
            if self._probe_inflight and (
                self._probe_started_at is not None
                and now - self._probe_started_at < self._cooldown
            ):
                self._rejections += 1
                return max(self._cooldown, 1e-3)
            self._probe_inflight = True
            self._probe_started_at = now
            return None

    def release_probe(self) -> None:
        """Hand back an unresolved half-open probe slot.

        The server calls this in a ``finally`` after every admitted
        request: when the request ended without reaching
        :meth:`record_success` or :meth:`record_failure` (shed by the
        load shedder, rejected input, deadline/budget exhaustion, an
        unexpected handler error, …) it learned nothing about server
        health, so the probe it may have been holding returns and the
        next request can probe instead.  No-op when the probe was
        already resolved or no probe is outstanding.
        """
        with self._lock:
            if self._state == HALF_OPEN:
                self._probe_inflight = False
                self._probe_started_at = None

    def record_success(self) -> None:
        """A served request: closes a half-open circuit, clears failures."""
        with self._lock:
            self._consecutive_failures = 0
            self._probe_inflight = False
            self._probe_started_at = None
            if self._state == HALF_OPEN:
                self._state = CLOSED
                self._opened_at = None
                self._opens = 0

    def record_failure(self) -> None:
        """A server-side fault: trips the circuit at the threshold."""
        with self._lock:
            if self._state == HALF_OPEN:
                # The probe failed: straight back to open, with the
                # next (longer) cooldown.
                self._trip()
                return
            self._consecutive_failures += 1
            if self._state == CLOSED and (
                self._consecutive_failures
                >= self.config.failure_threshold
            ):
                self._trip()

    # -- introspection -----------------------------------------------------------

    @property
    def state(self) -> str:
        with self._lock:
            # An expired open circuit reads as half-open: the next
            # request *will* be admitted as a probe.
            if self._state == OPEN:
                assert self._opened_at is not None
                if self._clock() >= self._opened_at + self._cooldown:
                    return HALF_OPEN
            return self._state

    def describe(self) -> dict[str, Any]:
        state = self.state
        with self._lock:
            return {
                "state": state,
                "consecutive_failures": self._consecutive_failures,
                "opens": self._opens,
                "rejections": self._rejections,
                "cooldown_seconds": round(self._cooldown, 6),
            }


@dataclass
class ShedConfig:
    """Knobs for one :class:`LoadShedder`.

    ``policy="flat"`` reproduces the legacy admission rule exactly
    (hard in-flight cap, nothing else).  ``policy="deadline"`` keeps
    the hard cap and adds the soft band and doomed-deadline checks;
    with ``soft_inflight`` unset the band is empty, so the default
    configuration still behaves like the legacy rule.
    """

    policy: str = "deadline"
    max_inflight: int = 64
    #: Concurrent service lanes draining the in-flight queue (the
    #: executor/pool worker count).  Wait and drain estimates divide
    #: by this: N workers serve N queries per per-query interval.
    workers: int = 1
    #: Start shedding cheap-to-retry work above this watermark
    #: (None = no soft band; only the hard cap sheds).
    soft_inflight: "int | None" = None
    #: Weight at or below which a request counts as cheap to retry
    #: (a single query is 1; batches weigh their query count).
    cheap_weight: int = 1
    #: Fallback Retry-After hint before any service-rate observations.
    retry_after_seconds: float = 0.05

    def __post_init__(self) -> None:
        if self.policy not in ("flat", "deadline"):
            raise ValueError(
                "policy must be 'flat' or 'deadline', got %r"
                % (self.policy,)
            )
        if self.max_inflight < 1:
            raise ValueError(
                "max_inflight must be >= 1, got %d" % self.max_inflight
            )
        if self.workers < 1:
            raise ValueError(
                "workers must be >= 1, got %d" % self.workers
            )
        if self.soft_inflight is not None and not (
            1 <= self.soft_inflight <= self.max_inflight
        ):
            raise ValueError(
                "soft_inflight must be in [1, max_inflight], got %r"
                % (self.soft_inflight,)
            )
        if self.cheap_weight < 1:
            raise ValueError(
                "cheap_weight must be >= 1, got %d" % self.cheap_weight
            )
        if self.retry_after_seconds <= 0:
            raise ValueError(
                "retry_after_seconds must be positive, got %r"
                % (self.retry_after_seconds,)
            )


class LoadShedder:
    """Deadline-aware admission control with cheapest-first shedding.

    Admission rules, in order (``weight`` = in-flight queries the
    request would add, ``deadline_seconds`` = the request's effective
    per-query deadline, None when it has none):

    1. **hard cap** — past ``max_inflight`` everything is shed (the
       legacy rule; bounded queueing beats unbounded latency);
    2. **doomed work** (deadline policy) — a request whose deadline is
       smaller than the estimated wait for a slot is shed immediately:
       admitting it burns a slot to produce a guaranteed 504;
    3. **soft band** (deadline policy) — between ``soft_inflight`` and
       the hard cap, requests of weight <= ``cheap_weight`` are shed.
       They are the cheapest for a client to retry (one query, resent
       in one line), so dropping them first preserves the expensive
       batches that would cost the most offered work to resubmit.

    Sheds raise :class:`~repro.errors.ServiceOverloadedError` carrying
    a ``retry_after`` drain estimate from an EWMA of observed query
    seconds, so well-behaved clients back off just long enough.
    """

    def __init__(self, config: "ShedConfig | None" = None,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.config = config or ShedConfig()
        self._clock = clock
        self._lock = threading.Lock()
        self._inflight = 0
        self._admitted = 0
        self._shed_hard = 0
        self._shed_soft = 0
        self._shed_doomed = 0
        #: EWMA of per-query service seconds (None until first sample).
        self._avg_query_seconds: "float | None" = None

    # -- accounting --------------------------------------------------------------

    @property
    def inflight(self) -> int:
        with self._lock:
            return self._inflight

    def observe(self, seconds: float, weight: int = 1) -> None:
        """Feed one completed request's wall-clock into the EWMA."""
        if weight < 1 or seconds < 0:
            return
        per_query = seconds / weight
        with self._lock:
            if self._avg_query_seconds is None:
                self._avg_query_seconds = per_query
            else:
                self._avg_query_seconds += 0.2 * (
                    per_query - self._avg_query_seconds
                )

    # invariant: holds-lock
    def _retry_after(self, excess: int) -> float:
        """Seconds until ``excess`` queries have likely drained.

        Floored at 1ms (like the breaker's hints) so a sub-millisecond
        drain estimate survives the server's 3-decimal body rounding —
        a shed must never advertise ``retry_after: 0``.
        """
        per_query = self._avg_query_seconds
        if per_query is None or per_query <= 0:
            return self.config.retry_after_seconds
        return max(
            max(excess, 1) * per_query / self.config.workers, 1e-3
        )

    # invariant: holds-lock
    def _estimated_wait(self) -> float:
        """Expected seconds before a new request reaches a worker.

        The queue drains ``workers`` queries per per-query interval,
        not one — estimating serially would overstate the wait N-fold
        and shed doomed-deadline work whose deadline would hold.
        """
        per_query = self._avg_query_seconds
        if per_query is None:
            return 0.0
        return self._inflight * per_query / self.config.workers

    def admit(self, weight: int,
              deadline_seconds: "float | None" = None) -> None:
        """Reserve ``weight`` slots or raise 429 with a retry hint."""
        if weight < 1:
            raise ValueError("weight must be >= 1, got %d" % weight)
        config = self.config
        with self._lock:
            would_be = self._inflight + weight
            if would_be > config.max_inflight:
                self._shed_hard += 1
                raise ServiceOverloadedError(
                    "server overloaded: %d queries in flight, +%d "
                    "requested, limit %d"
                    % (self._inflight, weight, config.max_inflight),
                    status=429,
                    retry_after=self._retry_after(
                        would_be - config.max_inflight
                    ),
                    error_type="overloaded",
                )
            if config.policy == "deadline":
                if deadline_seconds is not None:
                    wait = self._estimated_wait()
                    if wait > deadline_seconds:
                        self._shed_doomed += 1
                        raise ServiceOverloadedError(
                            "request deadline %.3fs cannot survive the "
                            "estimated %.3fs queue — shed instead of "
                            "serving a guaranteed timeout"
                            % (deadline_seconds, wait),
                            status=429,
                            retry_after=self._retry_after(self._inflight),
                            error_type="doomed_deadline",
                        )
                soft = config.soft_inflight
                if (
                    soft is not None
                    and would_be > soft
                    and weight <= config.cheap_weight
                ):
                    self._shed_soft += 1
                    raise ServiceOverloadedError(
                        "server under pressure (%d/%d in flight): "
                        "shedding cheap-to-retry work first"
                        % (self._inflight, config.max_inflight),
                        status=429,
                        retry_after=self._retry_after(would_be - soft),
                        error_type="pressure_shed",
                    )
            self._inflight = would_be
            self._admitted += 1

    def release(self, weight: int) -> None:
        with self._lock:
            self._inflight = max(self._inflight - weight, 0)

    # -- introspection -----------------------------------------------------------

    @property
    def shed_total(self) -> int:
        with self._lock:
            return self._shed_hard + self._shed_soft + self._shed_doomed

    def describe(self) -> dict[str, Any]:
        with self._lock:
            return {
                "policy": self.config.policy,
                "max_inflight": self.config.max_inflight,
                "workers": self.config.workers,
                "soft_inflight": self.config.soft_inflight,
                "inflight": self._inflight,
                "admitted": self._admitted,
                "shed_hard": self._shed_hard,
                "shed_soft": self._shed_soft,
                "shed_doomed": self._shed_doomed,
                "avg_query_seconds": self._avg_query_seconds,
            }


@dataclass
class LadderConfig:
    """Knobs for one :class:`DegradationLadder`."""

    #: Worker-loss events inside the window that climb one rung.
    crash_threshold: int = 3
    #: Shed events inside the window that climb one rung.
    shed_threshold: int = 16
    #: Rolling event window.
    window_seconds: float = 30.0
    #: Quiet seconds (no fault events) before stepping one rung down.
    recovery_seconds: float = 5.0

    def __post_init__(self) -> None:
        if self.crash_threshold < 1 or self.shed_threshold < 1:
            raise ValueError("ladder thresholds must be >= 1")
        if self.window_seconds <= 0 or self.recovery_seconds <= 0:
            raise ValueError("ladder windows must be positive")


class DegradationLadder:
    """Service-wide graceful-degradation level (full → reach-only).

    The ladder never refuses anything itself — it only *names* the
    level; the server maps levels onto answer quality.  Escalation is
    event-driven (crashes, sustained shedding, breaker opens climb one
    rung immediately once their windowed threshold trips); recovery is
    time-driven (each successfully served request after a quiet
    ``recovery_seconds`` steps one rung down), so a service climbs
    fast under fire and descends deliberately.
    """

    def __init__(self, config: "LadderConfig | None" = None,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.config = config or LadderConfig()
        self._clock = clock
        self._lock = threading.Lock()
        self._level = LEVEL_FULL
        self._forced: "int | None" = None
        self._crash_times: list[float] = []
        self._shed_times: list[float] = []
        self._last_fault_at: "float | None" = None
        self._escalations = 0
        self._recoveries = 0
        self._transitions: list[tuple[float, int, str]] = []

    # invariant: holds-lock
    def _prune(self, now: float) -> None:
        horizon = now - self.config.window_seconds
        self._crash_times = [t for t in self._crash_times if t > horizon]
        self._shed_times = [t for t in self._shed_times if t > horizon]

    # invariant: holds-lock
    def _climb(self, now: float, reason: str) -> None:
        self._last_fault_at = now
        if self._level < LEVEL_REACH_ONLY:
            self._level += 1
            self._escalations += 1
            self._transitions.append((now, self._level, reason))
            # A climb consumes the events that caused it; the window
            # starts accumulating evidence for the *next* rung.
            self._crash_times.clear()
            self._shed_times.clear()

    # -- event feeds -------------------------------------------------------------

    def record_crash(self) -> None:
        """One worker-loss event (crash, hang-kill, failed respawn)."""
        now = self._clock()
        with self._lock:
            self._prune(now)
            self._crash_times.append(now)
            self._last_fault_at = now
            if len(self._crash_times) >= self.config.crash_threshold:
                self._climb(now, "worker-loss")

    def record_shed(self) -> None:
        """One shed/overload event."""
        now = self._clock()
        with self._lock:
            self._prune(now)
            self._shed_times.append(now)
            self._last_fault_at = now
            if len(self._shed_times) >= self.config.shed_threshold:
                self._climb(now, "overload")

    def record_breaker_open(self) -> None:
        """A circuit opening is always enough evidence to climb."""
        now = self._clock()
        with self._lock:
            self._prune(now)
            self._climb(now, "breaker-open")

    def record_ok(self) -> None:
        """A healthy served request; steps down after quiet time."""
        now = self._clock()
        with self._lock:
            if self._level == LEVEL_FULL or self._forced is not None:
                return
            quiet_since = self._last_fault_at
            if quiet_since is None or (
                now - quiet_since >= self.config.recovery_seconds
            ):
                self._level -= 1
                self._recoveries += 1
                self._transitions.append((now, self._level, "recovery"))
                # Descend one rung per quiet period, not per request.
                self._last_fault_at = now

    # -- level -------------------------------------------------------------------

    def force(self, level: "int | None") -> None:
        """Pin the level (ops/test hook); ``None`` resumes automatic."""
        if level is not None and not (
            LEVEL_FULL <= level <= LEVEL_REACH_ONLY
        ):
            raise ValueError("level must be 0..2 or None, got %r" % level)
        now = self._clock()
        with self._lock:
            self._forced = level
            if level is not None:
                self._level = level
                self._transitions.append((now, level, "forced"))

    @property
    def level(self) -> int:
        with self._lock:
            return self._level if self._forced is None else self._forced

    @property
    def level_name(self) -> str:
        return LEVEL_NAMES[self.level]

    def describe(self) -> dict[str, Any]:
        level = self.level
        with self._lock:
            return {
                "level": level,
                "level_name": LEVEL_NAMES[level],
                "forced": self._forced,
                "escalations": self._escalations,
                "recoveries": self._recoveries,
                "recent_crashes": len(self._crash_times),
                "recent_sheds": len(self._shed_times),
                "transitions": [
                    {
                        "at": round(at, 6),
                        "level": lvl,
                        "reason": reason,
                    }
                    for at, lvl, reason in self._transitions[-8:]
                ],
            }
