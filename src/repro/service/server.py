"""Stdlib-only asyncio JSON-over-HTTP query server (``repro serve``).

One :class:`QueryService` wraps a
:class:`~repro.service.registry.GraphRegistry` and serves it over a
minimal HTTP/1.1 implementation built directly on
:func:`asyncio.start_server` — no third-party web framework, because
the serving tier must run wherever the solvers do.

Endpoints (all request/response bodies are JSON):

``GET /healthz``
    Liveness: status, graph count, in-flight queries.
``GET /stats``
    Service counters (requests, rejections, errors, uptime) plus
    per-graph serving stats and plan-cache counters.
``GET /graphs``
    The per-graph stats list on its own.
``POST /graphs``  ``{"name": ..., "graph_text": ...}``
    Register a graph from the :mod:`repro.graphs.io` text format
    (compiled on arrival).  409 if the name is taken.
``DELETE /graphs/<name>``
    Evict a graph (engine, plan cache and stats drop together).
``POST /query``
    ``{"graph"?, "language", "source", "target", "deadline_seconds"?,
    "budget"?, "portfolio"?, "max_path_edges"?}`` — one RSPQ.  The
    optional per-request deadline/budget
    map onto the query's :class:`~repro.execution.ExecutionContext`;
    non-positive values are rejected upfront with 400 (an
    already-expired deadline can never admit work).  ``portfolio``
    (boolean) overrides the engine's default hard-regime ladder
    routing; ``max_path_edges`` (int >= 0) bounds the answer to
    simple paths of at most that many edges (k-RSPQ).  Result records
    carry ``confidence`` / ``failure_bound`` for ladder answers.
    Failures map to
    statuses: 400 bad input, 404 unknown graph, 422 budget exhausted,
    504 deadline exceeded.
``POST /batch``
    ``{"graph"?, "queries": [[language, source, target], ...],
    "workers"?, "mode"?, "deadline_seconds"?, "budget"?,
    "vectorize"?, "group_min_size"?, "portfolio"?,
    "max_path_edges"?}`` — a batch dispatched into
    :meth:`QueryEngine.run_batch` worker pools.  ``vectorize`` /
    ``group_min_size`` override the engine's vectorized-execution
    knobs for this batch (grouped queries sharing a plan sweep the
    product graph together; the response's ``vectorized_stats`` block
    reports groups, sweeps and peels).  Per-query failures stay
    isolated inside the 200 response (each result record carries its
    own ``error`` field), exactly like the library contract.
``POST /classify``
    ``{"language": ...}`` — trichotomy classification plus the solver
    strategy the engine would dispatch to (plan-cached service-side).

Admission control: the service bounds **in-flight queries** (not
connections).  A single query weighs 1, a batch weighs its query
count; when accepting a request would push the total past
``max_inflight`` it is rejected *immediately* with 429 — bounded
queueing beats unbounded latency.  Consequently a batch larger than
``max_inflight`` can never be admitted; split it client-side.

Solving happens in a thread-pool executor so the event loop stays free
to answer health checks while long queries run.
"""

from __future__ import annotations

import asyncio
import functools
import json
import math
import signal
import time
from typing import TYPE_CHECKING, Any
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from threading import Event, Thread
from urllib.parse import unquote

from ..errors import (
    BudgetExceededError,
    DeadlineExceededError,
    ReproError,
    ServiceError,
    ServiceOverloadedError,
    WorkerCrashError,
)
from ..engine.plan import PlanCache, QueryPlan, plan_key
from ..core.trichotomy import classify
from ..graphs import io as graph_io
from . import faults
from .protocol import batch_record, result_record
from .resilience import (
    LEVEL_PORTFOLIO,
    LEVEL_REACH_ONLY,
    BreakerConfig,
    CircuitBreaker,
    DegradationLadder,
    LadderConfig,
    LoadShedder,
    ShedConfig,
)

if TYPE_CHECKING:
    from .registry import GraphRegistry

#: Bytes of request body the server is willing to read.
MAX_BODY_BYTES = 32 * 1024 * 1024

#: Header-section bounds — a client streaming endless header lines
#: must exhaust its welcome, not the server's memory.
MAX_HEADER_LINES = 100
MAX_HEADER_BYTES = 16 * 1024

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    422: "Unprocessable Entity",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


@dataclass
class ServiceConfig:
    """Ops knobs for one :class:`QueryService`.

    Parameters
    ----------
    workers:
        Size of the solve executor and the default (and maximum)
        ``workers`` for ``/batch`` requests.
    parallel_mode:
        Default scheduler for multi-worker batches.
    max_inflight:
        Admission-control bound on simultaneously in-flight queries.
    read_timeout:
        Seconds allowed for reading one request off a connection.
    shed_policy / soft_inflight:
        Load-shedding knobs (see
        :class:`~repro.service.resilience.LoadShedder`): ``"flat"``
        is the legacy hard cap only; ``"deadline"`` (the default)
        additionally sheds doomed-deadline work and, above
        ``soft_inflight``, cheap-to-retry requests first.  With
        ``soft_inflight`` unset the soft band is empty.
    breaker_threshold / breaker_cooldown / breaker_max_cooldown /
    breaker_jitter / breaker_seed:
        Per-graph circuit-breaker knobs (see
        :class:`~repro.service.resilience.CircuitBreaker`): after
        ``breaker_threshold`` consecutive worker-crash failures a
        graph's circuit opens for a seeded-jittered exponential
        cooldown; one half-open probe decides recovery.
    degrade_crash_threshold / degrade_shed_threshold /
    degrade_window_seconds / degrade_recovery_seconds:
        Graceful-degradation ladder knobs (see
        :class:`~repro.service.resilience.DegradationLadder`).
    drain_timeout:
        Seconds :meth:`QueryService.shutdown` waits for in-flight
        requests to finish before tearing the executor down.
    """

    workers: int = 4
    parallel_mode: str = "thread"
    max_inflight: int = 64
    read_timeout: float = 30.0
    shed_policy: str = "deadline"
    soft_inflight: int | None = None
    breaker_threshold: int = 5
    breaker_cooldown: float = 1.0
    breaker_max_cooldown: float = 30.0
    breaker_jitter: float = 0.1
    breaker_seed: int = 0
    degrade_crash_threshold: int = 3
    degrade_shed_threshold: int = 16
    degrade_window_seconds: float = 30.0
    degrade_recovery_seconds: float = 5.0
    drain_timeout: float = 10.0

    def __post_init__(self):
        if self.workers < 1:
            raise ValueError("workers must be >= 1, got %d" % self.workers)
        if self.parallel_mode not in ("thread", "process"):
            raise ValueError(
                "parallel_mode must be 'thread' or 'process', got %r"
                % (self.parallel_mode,)
            )
        if self.max_inflight < 1:
            raise ValueError(
                "max_inflight must be >= 1, got %d" % self.max_inflight
            )
        if self.read_timeout <= 0:
            raise ValueError(
                "read_timeout must be positive, got %r"
                % (self.read_timeout,)
            )
        if self.drain_timeout < 0:
            raise ValueError(
                "drain_timeout must be >= 0, got %r"
                % (self.drain_timeout,)
            )
        # The resilience configs validate their own knobs eagerly so a
        # bad flag fails at construction, not at the first overload.
        self.shed_config()
        self.breaker_config()
        self.ladder_config()

    def shed_config(self) -> ShedConfig:
        return ShedConfig(
            policy=self.shed_policy,
            max_inflight=self.max_inflight,
            workers=self.workers,
            soft_inflight=self.soft_inflight,
        )

    def breaker_config(self) -> BreakerConfig:
        return BreakerConfig(
            failure_threshold=self.breaker_threshold,
            cooldown_seconds=self.breaker_cooldown,
            max_cooldown_seconds=self.breaker_max_cooldown,
            jitter=self.breaker_jitter,
        )

    def ladder_config(self) -> LadderConfig:
        return LadderConfig(
            crash_threshold=self.degrade_crash_threshold,
            shed_threshold=self.degrade_shed_threshold,
            window_seconds=self.degrade_window_seconds,
            recovery_seconds=self.degrade_recovery_seconds,
        )


def _resolve_vertex(graph, value, side):
    """Map a JSON endpoint onto the graph's vertex universe.

    JSON cannot express "the int 3" vs "the string '3'" ambiguity a
    curl user faces, so when the literal value is unknown the other
    spelling is tried before giving up (the engine still raises its
    own :class:`GraphError` for genuinely unknown vertices).
    """
    if not isinstance(value, (int, str)) or isinstance(value, bool):
        raise ServiceError(
            "%s must be an int or string vertex name, got %r"
            % (side, value)
        )
    if graph.has_vertex(value):
        return value
    if isinstance(value, int) and graph.has_vertex(str(value)):
        return str(value)
    if isinstance(value, str):
        try:
            as_int = int(value)
        except ValueError:
            pass
        else:
            if graph.has_vertex(as_int):
                return as_int
    return value


def _checked_language(value):
    if not isinstance(value, str) or not value.strip():
        raise ServiceError(
            "'language' must be a non-empty regex string, got %r" % (value,)
        )
    return value


def _checked_overrides(payload):
    """Validated (deadline_seconds, budget) from a request payload."""
    deadline = payload.get("deadline_seconds")
    if deadline is not None:
        if not isinstance(deadline, (int, float)) or isinstance(
            deadline, bool
        ):
            raise ServiceError(
                "'deadline_seconds' must be a number, got %r" % (deadline,)
            )
        if deadline <= 0:
            raise ServiceError(
                "'deadline_seconds' must be positive, got %r — an "
                "already-expired deadline can never admit work"
                % (deadline,)
            )
    budget = payload.get("budget")
    if budget is not None:
        if not isinstance(budget, int) or isinstance(budget, bool):
            raise ServiceError(
                "'budget' must be an integer, got %r" % (budget,)
            )
        if budget <= 0:
            raise ServiceError(
                "'budget' must be a positive step count, got %r" % (budget,)
            )
    return deadline, budget


def _checked_portfolio_knobs(payload):
    """Validated (portfolio, max_path_edges) from a request payload."""
    portfolio = payload.get("portfolio")
    if portfolio is not None and not isinstance(portfolio, bool):
        raise ServiceError(
            "'portfolio' must be a boolean, got %r" % (portfolio,)
        )
    max_path_edges = payload.get("max_path_edges")
    if max_path_edges is not None:
        if not isinstance(max_path_edges, int) or isinstance(
            max_path_edges, bool
        ) or max_path_edges < 0:
            raise ServiceError(
                "'max_path_edges' must be an integer >= 0, got %r"
                % (max_path_edges,)
            )
    return portfolio, max_path_edges


class QueryService:
    """The serving tier: registry + admission control + HTTP front end."""

    def __init__(self, registry: "GraphRegistry",
                 config: "ServiceConfig | None" = None) -> None:
        self.registry = registry
        self.config = config or ServiceConfig()
        self._requests = 0
        self._rejected = 0
        self._errors = 0
        self._started_at = time.time()
        self._executor: Any = None
        self._server: Any = None
        # Graph-independent plans for /classify (small, service-wide).
        self._classify_cache = PlanCache(64)
        # Resilience state: one shedder and one degradation ladder for
        # the whole service, one circuit breaker per graph (created
        # lazily; all accessed from the event loop, internally locked).
        self.shedder = LoadShedder(self.config.shed_config())
        self.ladder = DegradationLadder(self.config.ladder_config())
        self._breakers: dict[str, CircuitBreaker] = {}
        self._worker_crashes = 0

    # -- lifecycle ---------------------------------------------------------------

    async def start(self, host: str = "127.0.0.1",
                    port: int = 8080) -> "asyncio.AbstractServer":
        """Bind the listening socket; returns the asyncio server."""
        self._executor = ThreadPoolExecutor(
            max_workers=self.config.workers,
            thread_name_prefix="repro-serve",
        )
        self._server = await asyncio.start_server(
            self._handle_client, host, port
        )
        self._started_at = time.time()
        return self._server

    @property
    def port(self) -> int:
        """The bound port (after :meth:`start`; supports ``port=0``)."""
        return self._server.sockets[0].getsockname()[1]

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._executor is not None:
            self._executor.shutdown(wait=True)

    async def shutdown(self, drain_timeout: "float | None" = None) -> None:
        """Graceful teardown: stop accepting, drain, close the registry.

        Closes the listening socket first (no new connections), waits
        up to ``drain_timeout`` (default: the config's) for in-flight
        queries to finish, then shuts the executor down and closes the
        registry — worker pools exit cleanly and owned spool
        directories are removed.  This is what ``repro serve`` runs on
        SIGTERM/SIGINT.
        """
        timeout = (
            self.config.drain_timeout if drain_timeout is None
            else drain_timeout
        )
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        give_up = time.monotonic() + timeout
        while self.shedder.inflight > 0 and time.monotonic() < give_up:
            await asyncio.sleep(0.02)
        if self._executor is not None:
            self._executor.shutdown(wait=True)
        self.registry.close()

    async def serve_forever(self, host: str = "127.0.0.1",
                            port: int = 8080) -> None:
        server = await self.start(host, port)
        async with server:
            await server.serve_forever()

    async def serve_until_interrupted(
            self, host: str = "127.0.0.1", port: int = 8080,
            ready: "Any | None" = None) -> None:
        """Serve until SIGTERM/SIGINT, then drain and close cleanly.

        ``ready``, when given, is called with the bound port once the
        socket is listening (``port=0`` deployments need the real
        one).  Falls back to plain serving when the platform or the
        calling thread cannot install loop signal handlers.
        """
        await self.start(host, port)
        if ready is not None:
            ready(self.port)
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        installed = []
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, stop.set)
            except (NotImplementedError, RuntimeError, ValueError):
                continue  # non-main thread or platform without support
            installed.append(signum)
        try:
            await stop.wait()
        finally:
            for signum in installed:
                loop.remove_signal_handler(signum)
            await self.shutdown()

    # -- HTTP plumbing -----------------------------------------------------------

    async def _handle_client(self, reader, writer):
        try:
            retry_after = None
            try:
                status, payload = await self._handle_request(reader)
            except (asyncio.TimeoutError, asyncio.IncompleteReadError):
                status, payload = 400, {"error": "incomplete request"}
            except ServiceError as err:
                # Structured error body: machine-readable type and
                # retry hint beside the human message, mirrored by the
                # Retry-After header below for header-only clients.
                status, payload = err.status, {"error": str(err)}
                if err.error_type is not None:
                    payload["error_type"] = err.error_type
                if err.retry_after is not None:
                    retry_after = max(err.retry_after, 0.0)
                    payload["retry_after"] = round(retry_after, 3)
            except Exception as err:  # never kill the acceptor
                status, payload = 500, {
                    "error": "internal error: %s" % err,
                    "error_type": type(err).__name__,
                }
            self._requests += 1
            if status == 429:
                self._rejected += 1
            elif status >= 400:
                self._errors += 1
            body = json.dumps(payload).encode("utf-8")
            headers = (
                "HTTP/1.1 %d %s\r\n"
                "content-type: application/json\r\n"
                "content-length: %d\r\n"
                % (status, _REASONS.get(status, "Error"), len(body))
            )
            if retry_after is not None and status in (429, 503):
                # HTTP Retry-After is integer seconds; round up so the
                # header never promises an earlier retry than the body.
                headers += "retry-after: %d\r\n" % math.ceil(retry_after)
            headers += "connection: close\r\n\r\n"
            writer.write(headers.encode("ascii"))
            writer.write(body)
            await writer.drain()
        except (ConnectionError, BrokenPipeError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, BrokenPipeError):
                pass

    async def _handle_request(self, reader):
        timeout = self.config.read_timeout
        request_line = await asyncio.wait_for(
            reader.readline(), timeout=timeout
        )
        parts = request_line.decode("latin-1").split()
        if len(parts) < 2:
            raise ServiceError("malformed request line", status=400)
        method, path = parts[0].upper(), parts[1]
        headers = {}
        header_bytes = 0
        while True:
            line = await asyncio.wait_for(reader.readline(), timeout=timeout)
            if line in (b"\r\n", b"\n", b""):
                break
            header_bytes += len(line)
            if len(headers) >= MAX_HEADER_LINES or (
                header_bytes > MAX_HEADER_BYTES
            ):
                raise ServiceError(
                    "request header section exceeds %d lines / %d bytes"
                    % (MAX_HEADER_LINES, MAX_HEADER_BYTES),
                    status=400,
                )
            name, _sep, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        body = b""
        length = headers.get("content-length")
        if length is not None:
            try:
                length = int(length)
            except ValueError:
                raise ServiceError(
                    "bad content-length", status=400
                ) from None
            if length > MAX_BODY_BYTES:
                raise ServiceError(
                    "request body exceeds %d bytes" % MAX_BODY_BYTES,
                    status=413,
                )
            if length:
                body = await asyncio.wait_for(
                    reader.readexactly(length), timeout=timeout
                )
        return await self._route(method, path, body)

    @staticmethod
    def _json_body(body):
        if not body:
            raise ServiceError("request needs a JSON body", status=400)
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as err:
            raise ServiceError("bad JSON body: %s" % err, status=400) from err
        if not isinstance(payload, dict):
            raise ServiceError(
                "JSON body must be an object, got %s"
                % type(payload).__name__,
                status=400,
            )
        return payload

    async def _route(self, method, path, body):
        if path == "/healthz" and method == "GET":
            return 200, self._healthz()
        if path == "/stats" and method == "GET":
            return 200, self._stats()
        if path == "/graphs" and method == "GET":
            return 200, {"graphs": self.registry.describe()}
        if path == "/graphs" and method == "POST":
            return await self._register_graph(self._json_body(body))
        if path.startswith("/graphs/") and method == "DELETE":
            return self._evict_graph(unquote(path[len("/graphs/"):]))
        if path == "/query" and method == "POST":
            return await self._query(self._json_body(body))
        if path == "/batch" and method == "POST":
            return await self._batch(self._json_body(body))
        if path == "/classify" and method == "POST":
            return await self._classify(self._json_body(body))
        if path in ("/healthz", "/stats", "/graphs", "/query", "/batch",
                    "/classify") or path.startswith("/graphs/"):
            raise ServiceError(
                "%s does not support %s" % (path, method), status=405
            )
        raise ServiceError("no such endpoint %r" % path, status=404)

    # -- admission control -------------------------------------------------------

    def _admit(self, weight, deadline_seconds=None):
        """Reserve ``weight`` in-flight query slots or raise 429.

        Delegates to the :class:`LoadShedder` (hard cap, doomed
        deadlines, soft-band cheap-first shedding); a shed feeds the
        degradation ladder's overload window before propagating.  The
        reservation is released in the caller's ``finally`` via
        ``self.shedder.release(weight)``.
        """
        try:
            self.shedder.admit(weight, deadline_seconds)
        except ServiceOverloadedError:
            self.ladder.record_shed()
            raise

    def _breaker(self, name):
        """The (lazily created) circuit breaker for graph ``name``."""
        breaker = self._breakers.get(name)
        if breaker is None:
            breaker = CircuitBreaker(
                self.config.breaker_config(),
                seed=self.config.breaker_seed,
            )
            self._breakers[name] = breaker
        return breaker

    def _check_breaker(self, name):
        """503 + Retry-After when ``name``'s circuit refuses admission."""
        retry_in = self._breaker(name).admit()
        if retry_in is not None:
            raise ServiceError(
                "graph %r circuit is open after repeated worker "
                "failures; retry in %.3fs" % (name, retry_in),
                status=503,
                retry_after=retry_in,
                error_type="circuit_open",
            )

    def _record_worker_crash(self, entry, failure):
        """Fold one unrecovered worker crash into every counter it feeds."""
        self._worker_crashes += 1
        entry.record_worker_crash()
        breaker = self._breaker(entry.name)
        breaker.record_failure()
        if breaker.state != "closed":
            self.ladder.record_breaker_open()
        else:
            self.ladder.record_crash()
        return ServiceError(
            "worker pool lost the request to a crashed worker: %s"
            % failure,
            status=503,
            retry_after=1.0,
            error_type="worker_crash",
        )

    async def _in_executor(self, fn):
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(self._executor, fn)

    # -- endpoints ---------------------------------------------------------------

    def _healthz(self):
        level = self.ladder.level
        return {
            "status": "ok" if level == 0 else "degraded",
            "graphs": len(self.registry),
            "inflight": self.shedder.inflight,
            "degradation": {
                "level": level,
                "level_name": self.ladder.level_name,
            },
            "uptime_seconds": time.time() - self._started_at,
        }

    def _stats(self):
        return {
            "service": {
                "uptime_seconds": time.time() - self._started_at,
                "inflight": self.shedder.inflight,
                "max_inflight": self.config.max_inflight,
                "workers": self.config.workers,
                "parallel_mode": self.config.parallel_mode,
                "requests": self._requests,
                "rejected": self._rejected,
                "errors": self._errors,
                "worker_crashes": self._worker_crashes,
            },
            "resilience": {
                "shedder": self.shedder.describe(),
                "ladder": self.ladder.describe(),
                "breakers": {
                    name: breaker.describe()
                    for name, breaker in sorted(self._breakers.items())
                },
            },
            "graphs": self.registry.describe(),
        }

    async def _register_graph(self, payload):
        name = payload.get("name")
        if not isinstance(name, str) or not name:
            raise ServiceError("'name' must be a non-empty string")
        text = payload.get("graph_text")
        if not isinstance(text, str):
            raise ServiceError(
                "'graph_text' must carry the graph in the text format "
                "(e source label target / v vertex, one per line)"
            )

        def work():
            # Parse + compile off the event loop: a large registration
            # must not stall health checks or in-flight responses.
            return self.registry.register(name, graph_io.loads(text))

        try:
            entry = await self._in_executor(work)
        except ServiceError:
            raise  # already carries its status (409 duplicate/full)
        except ReproError as err:
            raise ServiceError(str(err), status=400) from err
        return 200, {"registered": name, "stats": entry.describe()}

    def _evict_graph(self, name):
        entry = self.registry.evict(name)
        return 200, {"evicted": name, "stats": entry.describe()}

    async def _query(self, payload):
        entry = self.registry.resolve(payload.get("graph"))
        engine = entry.engine
        language = _checked_language(payload.get("language"))
        if "source" not in payload or "target" not in payload:
            raise ServiceError("'source' and 'target' are required")
        source = _resolve_vertex(engine.graph, payload["source"], "source")
        target = _resolve_vertex(engine.graph, payload["target"], "target")
        deadline, budget = _checked_overrides(payload)
        portfolio, max_path_edges = _checked_portfolio_knobs(payload)
        deadline = faults.skewed_deadline(deadline)
        breaker = self._breaker(entry.name)
        self._check_breaker(entry.name)
        # Past this point the request may hold the breaker's single
        # half-open probe slot.  Every exit path must either resolve
        # the probe (record_success / record_failure) or hand it back
        # — a request shed by admission, rejected for bad input, or
        # timed out says nothing about the graph's health, and a
        # leaked slot would 503 the graph forever.
        try:
            return await self._query_checked(
                entry, engine, language, source, target,
                deadline, budget, portfolio, max_path_edges,
            )
        finally:
            breaker.release_probe()

    async def _query_checked(self, entry, engine, language, source,
                             target, deadline, budget, portfolio,
                             max_path_edges):
        level = self.ladder.level
        if level >= LEVEL_REACH_ONLY:
            return await self._query_reach_only(
                entry, language, source, target
            )
        degraded = level >= LEVEL_PORTFOLIO
        if degraded and portfolio is None:
            # Ladder level 1: hard-regime queries go through the
            # anytime portfolio by default (an explicit per-request
            # override still wins).  Finite/tractable plans are
            # unaffected — the engine routes only hard plans through
            # the ladder, so easy queries stay certified.
            portfolio = True
        self._admit(1, deadline)
        # Pool-backed graphs answer on a pre-forked worker process
        # (shared-snapshot memory model); the executor thread only
        # waits on the worker's pipe, so the GIL stays free.
        run_query = engine.query if entry.pool is None else entry.pool.query
        start = time.perf_counter()
        failure = None
        try:
            result = await self._in_executor(
                functools.partial(
                    run_query,
                    language,
                    source,
                    target,
                    deadline_seconds=deadline,
                    budget=budget,
                    portfolio=portfolio,
                    max_path_edges=max_path_edges,
                )
            )
        except ReproError as err:
            failure = err
        finally:
            self.shedder.release(1)
            seconds = time.perf_counter() - start
        if failure is not None:
            # Failed queries count in the per-graph stats exactly as
            # they would inside a batch (queries and errors both move).
            entry.record_query_failure(seconds)
            if isinstance(failure, DeadlineExceededError):
                raise ServiceError(
                    "query exceeded its deadline: %s" % failure, status=504
                )
            if isinstance(failure, BudgetExceededError):
                raise ServiceError(
                    "query exhausted its step budget: %s" % failure,
                    status=422,
                )
            if isinstance(failure, WorkerCrashError):
                # A crashed-and-unrecovered pool worker is a server
                # fault, not a bad request: 503 + Retry-After, counted
                # per graph, fed to the breaker and the ladder.
                raise self._record_worker_crash(entry, failure)
            raise ServiceError(str(failure), status=400)
        self.shedder.observe(seconds, 1)
        self._breaker(entry.name).record_success()
        self.ladder.record_ok()
        entry.record_query(result, seconds)
        if degraded:
            entry.record_degraded()
        return 200, result_record(result, degraded=degraded)

    async def _query_reach_only(self, entry, language, source, target):
        """Ladder level 2: certified index negatives only, shed the rest.

        The deepest degradation rung never runs a solver: the
        reachability index either *proves* NOT_FOUND (served with
        ``degraded=true``, still certified) or the request is shed
        with 503 + Retry-After — a wrong answer is never an option.
        """
        self._admit(1, None)
        start = time.perf_counter()
        try:
            result = await self._in_executor(
                functools.partial(
                    entry.engine.reach_only_result, language, source, target
                )
            )
        except ReproError as err:
            self.shedder.release(1)
            entry.record_query_failure(time.perf_counter() - start)
            raise ServiceError(str(err), status=400) from err
        finally:
            seconds = time.perf_counter() - start
        self.shedder.release(1)
        if result is None:
            raise ServiceError(
                "service is in reach-only degraded mode and the "
                "reachability index cannot certify this query; retry "
                "after recovery",
                status=503,
                retry_after=self.config.degrade_recovery_seconds,
                error_type="degraded_reach_only",
            )
        # A certified negative is a served request: it must close a
        # half-open breaker exactly like the full and batch paths, or
        # a service stuck at reach-only could never re-close circuits.
        self._breaker(entry.name).record_success()
        self.ladder.record_ok()
        entry.record_query(result, seconds)
        entry.record_degraded()
        return 200, result_record(result, degraded=True)

    async def _batch(self, payload):
        entry = self.registry.resolve(payload.get("graph"))
        engine = entry.engine
        raw_queries = payload.get("queries")
        if not isinstance(raw_queries, list) or not raw_queries:
            raise ServiceError(
                "'queries' must be a non-empty list of "
                "[language, source, target] triples"
            )
        triples = []
        for index, item in enumerate(raw_queries):
            if (not isinstance(item, (list, tuple))) or len(item) != 3:
                raise ServiceError(
                    "queries[%d] is not a [language, source, target] "
                    "triple: %r" % (index, item)
                )
            lang, source, target = item
            triples.append((
                _checked_language(lang),
                _resolve_vertex(engine.graph, source, "source"),
                _resolve_vertex(engine.graph, target, "target"),
            ))
        deadline, budget = _checked_overrides(payload)
        portfolio, max_path_edges = _checked_portfolio_knobs(payload)
        deadline = faults.skewed_deadline(deadline)
        breaker = self._breaker(entry.name)
        self._check_breaker(entry.name)
        # Same probe discipline as _query: hand back an unresolved
        # half-open probe slot on every exit path.
        try:
            return await self._batch_checked(
                entry, engine, payload, triples,
                deadline, budget, portfolio, max_path_edges,
            )
        finally:
            breaker.release_probe()

    async def _batch_checked(self, entry, engine, payload, triples,
                             deadline, budget, portfolio,
                             max_path_edges):
        level = self.ladder.level
        if level >= LEVEL_REACH_ONLY:
            # Reach-only mode cannot bound a whole batch's work;
            # batches are shed until the service steps back down
            # (single queries still get index-certified negatives).
            raise ServiceError(
                "service is in reach-only degraded mode; batches are "
                "shed until recovery — retry later or resend as "
                "individual queries",
                status=503,
                retry_after=self.config.degrade_recovery_seconds,
                error_type="degraded_reach_only",
            )
        degraded = level >= LEVEL_PORTFOLIO
        if degraded and portfolio is None:
            portfolio = True
        workers = payload.get("workers", 1)
        if not isinstance(workers, int) or isinstance(workers, bool) or (
            workers < 1
        ):
            raise ServiceError(
                "'workers' must be a positive integer, got %r" % (workers,)
            )
        workers = min(workers, self.config.workers)
        mode = payload.get("mode", self.config.parallel_mode)
        if mode not in ("thread", "process"):
            raise ServiceError(
                "'mode' must be 'thread' or 'process', got %r" % (mode,)
            )
        vectorize = payload.get("vectorize")
        if vectorize is not None and not isinstance(vectorize, bool):
            raise ServiceError(
                "'vectorize' must be a boolean, got %r" % (vectorize,)
            )
        group_min_size = payload.get("group_min_size")
        if group_min_size is not None and (
            not isinstance(group_min_size, int)
            or isinstance(group_min_size, bool)
            or group_min_size < 1
        ):
            raise ServiceError(
                "'group_min_size' must be a positive integer, got %r"
                % (group_min_size,)
            )
        self._admit(len(triples), deadline)
        if entry.pool is not None:
            # Pool dispatch: the batch is sharded across pre-forked
            # workers attached to the shared snapshot ('mode' is
            # irrelevant — the pool *is* the process mode, with the
            # graph mapped once instead of pickled per worker).
            run_batch = functools.partial(
                entry.pool.run_batch,
                triples,
                workers=workers,
                deadline_seconds=deadline,
                budget=budget,
                vectorize=vectorize,
                group_min_size=group_min_size,
                portfolio=portfolio,
                max_path_edges=max_path_edges,
            )
        else:
            run_batch = functools.partial(
                engine.run_batch,
                triples,
                workers=workers,
                mode=mode,
                deadline_seconds=deadline,
                budget=budget,
                vectorize=vectorize,
                group_min_size=group_min_size,
                portfolio=portfolio,
                max_path_edges=max_path_edges,
            )
        start = time.perf_counter()
        try:
            batch = await self._in_executor(run_batch)
        except WorkerCrashError as err:
            raise self._record_worker_crash(entry, err)
        finally:
            self.shedder.release(len(triples))
        self.shedder.observe(time.perf_counter() - start, len(triples))
        self._breaker(entry.name).record_success()
        self.ladder.record_ok()
        entry.record_batch(batch)
        if degraded:
            entry.record_degraded()
        return 200, batch_record(batch, degraded=degraded)

    async def _classify(self, payload):
        regex = _checked_language(payload.get("language"))

        def work():
            key = plan_key(regex)
            plan = self._classify_cache.get(key)
            if plan is None:
                plan = QueryPlan.compile(regex, key=key)
                self._classify_cache.put(key, plan)
            lang = plan.language
            classification = classify(lang.dfa, with_witness=False)
            return {
                "language": regex,
                "num_states": lang.num_states,
                "alphabet": "".join(sorted(lang.alphabet)),
                "finite": classification.finite,
                "in_trc": classification.in_trc,
                "complexity_class": classification.complexity_class.value,
                "strategy": plan.strategy,
                "decompose_failed": plan.decompose_failed,
            }

        try:
            return 200, await self._in_executor(work)
        except ReproError as err:
            raise ServiceError(str(err), status=400) from err


class ServiceThread:
    """Run a :class:`QueryService` on a background event-loop thread.

    The harness tests, benchmarks and load generators use: enter the
    context manager, read :attr:`port` (``port=0`` picks a free one),
    drive the server over real sockets, and the exit path shuts the
    loop down cleanly.
    """

    def __init__(self, service: QueryService, host: str = "127.0.0.1",
                 port: int = 0) -> None:
        self.service = service
        self.host = host
        self._requested_port = port
        self.port: int | None = None
        self._ready = Event()
        self._loop: Any = None
        self._stop: Any = None
        self._startup_error: Exception | None = None
        self._thread = Thread(
            target=self._run, name="repro-service", daemon=True
        )

    def _run(self):
        asyncio.run(self._main())

    async def _main(self):
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        try:
            server = await self.service.start(
                self.host, self._requested_port
            )
        except Exception as err:
            self._startup_error = err
            self._ready.set()
            return
        self.port = self.service.port
        self._ready.set()
        try:
            async with server:
                await self._stop.wait()
        finally:
            await self.service.close()

    def start(self) -> "ServiceThread":
        self._thread.start()
        self._ready.wait(timeout=30)
        if not self._ready.is_set():
            raise RuntimeError("service thread failed to start in time")
        if self._startup_error is not None:
            raise self._startup_error
        return self

    def stop(self) -> None:
        """Signal shutdown and join; safe after failed or no startup."""
        if self._loop is not None and self._stop is not None:
            try:
                self._loop.call_soon_threadsafe(self._stop.set)
            except RuntimeError:
                pass  # loop already closed (startup-failure path)
        if self._thread.ident is not None:
            self._thread.join(timeout=30)

    def __enter__(self):
        return self.start()

    def __exit__(self, exc_type, exc_value, traceback):
        self.stop()
        return False
