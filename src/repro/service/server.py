"""Stdlib-only asyncio JSON-over-HTTP query server (``repro serve``).

One :class:`QueryService` wraps a
:class:`~repro.service.registry.GraphRegistry` and serves it over a
minimal HTTP/1.1 implementation built directly on
:func:`asyncio.start_server` — no third-party web framework, because
the serving tier must run wherever the solvers do.

Endpoints (all request/response bodies are JSON):

``GET /healthz``
    Liveness: status, graph count, in-flight queries.
``GET /stats``
    Service counters (requests, rejections, errors, uptime) plus
    per-graph serving stats and plan-cache counters.
``GET /graphs``
    The per-graph stats list on its own.
``POST /graphs``  ``{"name": ..., "graph_text": ...}``
    Register a graph from the :mod:`repro.graphs.io` text format
    (compiled on arrival).  409 if the name is taken.
``DELETE /graphs/<name>``
    Evict a graph (engine, plan cache and stats drop together).
``POST /query``
    ``{"graph"?, "language", "source", "target", "deadline_seconds"?,
    "budget"?, "portfolio"?, "max_path_edges"?}`` — one RSPQ.  The
    optional per-request deadline/budget
    map onto the query's :class:`~repro.execution.ExecutionContext`;
    non-positive values are rejected upfront with 400 (an
    already-expired deadline can never admit work).  ``portfolio``
    (boolean) overrides the engine's default hard-regime ladder
    routing; ``max_path_edges`` (int >= 0) bounds the answer to
    simple paths of at most that many edges (k-RSPQ).  Result records
    carry ``confidence`` / ``failure_bound`` for ladder answers.
    Failures map to
    statuses: 400 bad input, 404 unknown graph, 422 budget exhausted,
    504 deadline exceeded.
``POST /batch``
    ``{"graph"?, "queries": [[language, source, target], ...],
    "workers"?, "mode"?, "deadline_seconds"?, "budget"?,
    "vectorize"?, "group_min_size"?, "portfolio"?,
    "max_path_edges"?}`` — a batch dispatched into
    :meth:`QueryEngine.run_batch` worker pools.  ``vectorize`` /
    ``group_min_size`` override the engine's vectorized-execution
    knobs for this batch (grouped queries sharing a plan sweep the
    product graph together; the response's ``vectorized_stats`` block
    reports groups, sweeps and peels).  Per-query failures stay
    isolated inside the 200 response (each result record carries its
    own ``error`` field), exactly like the library contract.
``POST /classify``
    ``{"language": ...}`` — trichotomy classification plus the solver
    strategy the engine would dispatch to (plan-cached service-side).

Admission control: the service bounds **in-flight queries** (not
connections).  A single query weighs 1, a batch weighs its query
count; when accepting a request would push the total past
``max_inflight`` it is rejected *immediately* with 429 — bounded
queueing beats unbounded latency.  Consequently a batch larger than
``max_inflight`` can never be admitted; split it client-side.

Solving happens in a thread-pool executor so the event loop stays free
to answer health checks while long queries run.
"""

from __future__ import annotations

import asyncio
import functools
import json
import time
from typing import TYPE_CHECKING, Any
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from threading import Event, Thread
from urllib.parse import unquote

from ..errors import (
    BudgetExceededError,
    DeadlineExceededError,
    ReproError,
    ServiceError,
    ServiceOverloadedError,
    WorkerCrashError,
)
from ..engine.plan import PlanCache, QueryPlan, plan_key
from ..core.trichotomy import classify
from ..graphs import io as graph_io
from .protocol import batch_record, result_record

if TYPE_CHECKING:
    from .registry import GraphRegistry

#: Bytes of request body the server is willing to read.
MAX_BODY_BYTES = 32 * 1024 * 1024

#: Header-section bounds — a client streaming endless header lines
#: must exhaust its welcome, not the server's memory.
MAX_HEADER_LINES = 100
MAX_HEADER_BYTES = 16 * 1024

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    422: "Unprocessable Entity",
    429: "Too Many Requests",
    500: "Internal Server Error",
    504: "Gateway Timeout",
}


@dataclass
class ServiceConfig:
    """Ops knobs for one :class:`QueryService`.

    Parameters
    ----------
    workers:
        Size of the solve executor and the default (and maximum)
        ``workers`` for ``/batch`` requests.
    parallel_mode:
        Default scheduler for multi-worker batches.
    max_inflight:
        Admission-control bound on simultaneously in-flight queries.
    read_timeout:
        Seconds allowed for reading one request off a connection.
    """

    workers: int = 4
    parallel_mode: str = "thread"
    max_inflight: int = 64
    read_timeout: float = 30.0

    def __post_init__(self):
        if self.workers < 1:
            raise ValueError("workers must be >= 1, got %d" % self.workers)
        if self.parallel_mode not in ("thread", "process"):
            raise ValueError(
                "parallel_mode must be 'thread' or 'process', got %r"
                % (self.parallel_mode,)
            )
        if self.max_inflight < 1:
            raise ValueError(
                "max_inflight must be >= 1, got %d" % self.max_inflight
            )
        if self.read_timeout <= 0:
            raise ValueError(
                "read_timeout must be positive, got %r"
                % (self.read_timeout,)
            )


def _resolve_vertex(graph, value, side):
    """Map a JSON endpoint onto the graph's vertex universe.

    JSON cannot express "the int 3" vs "the string '3'" ambiguity a
    curl user faces, so when the literal value is unknown the other
    spelling is tried before giving up (the engine still raises its
    own :class:`GraphError` for genuinely unknown vertices).
    """
    if not isinstance(value, (int, str)) or isinstance(value, bool):
        raise ServiceError(
            "%s must be an int or string vertex name, got %r"
            % (side, value)
        )
    if graph.has_vertex(value):
        return value
    if isinstance(value, int) and graph.has_vertex(str(value)):
        return str(value)
    if isinstance(value, str):
        try:
            as_int = int(value)
        except ValueError:
            pass
        else:
            if graph.has_vertex(as_int):
                return as_int
    return value


def _checked_language(value):
    if not isinstance(value, str) or not value.strip():
        raise ServiceError(
            "'language' must be a non-empty regex string, got %r" % (value,)
        )
    return value


def _checked_overrides(payload):
    """Validated (deadline_seconds, budget) from a request payload."""
    deadline = payload.get("deadline_seconds")
    if deadline is not None:
        if not isinstance(deadline, (int, float)) or isinstance(
            deadline, bool
        ):
            raise ServiceError(
                "'deadline_seconds' must be a number, got %r" % (deadline,)
            )
        if deadline <= 0:
            raise ServiceError(
                "'deadline_seconds' must be positive, got %r — an "
                "already-expired deadline can never admit work"
                % (deadline,)
            )
    budget = payload.get("budget")
    if budget is not None:
        if not isinstance(budget, int) or isinstance(budget, bool):
            raise ServiceError(
                "'budget' must be an integer, got %r" % (budget,)
            )
        if budget <= 0:
            raise ServiceError(
                "'budget' must be a positive step count, got %r" % (budget,)
            )
    return deadline, budget


def _checked_portfolio_knobs(payload):
    """Validated (portfolio, max_path_edges) from a request payload."""
    portfolio = payload.get("portfolio")
    if portfolio is not None and not isinstance(portfolio, bool):
        raise ServiceError(
            "'portfolio' must be a boolean, got %r" % (portfolio,)
        )
    max_path_edges = payload.get("max_path_edges")
    if max_path_edges is not None:
        if not isinstance(max_path_edges, int) or isinstance(
            max_path_edges, bool
        ) or max_path_edges < 0:
            raise ServiceError(
                "'max_path_edges' must be an integer >= 0, got %r"
                % (max_path_edges,)
            )
    return portfolio, max_path_edges


class QueryService:
    """The serving tier: registry + admission control + HTTP front end."""

    def __init__(self, registry: "GraphRegistry",
                 config: "ServiceConfig | None" = None) -> None:
        self.registry = registry
        self.config = config or ServiceConfig()
        self._inflight = 0
        self._requests = 0
        self._rejected = 0
        self._errors = 0
        self._started_at = time.time()
        self._executor: Any = None
        self._server: Any = None
        # Graph-independent plans for /classify (small, service-wide).
        self._classify_cache = PlanCache(64)

    # -- lifecycle ---------------------------------------------------------------

    async def start(self, host: str = "127.0.0.1",
                    port: int = 8080) -> "asyncio.AbstractServer":
        """Bind the listening socket; returns the asyncio server."""
        self._executor = ThreadPoolExecutor(
            max_workers=self.config.workers,
            thread_name_prefix="repro-serve",
        )
        self._server = await asyncio.start_server(
            self._handle_client, host, port
        )
        self._started_at = time.time()
        return self._server

    @property
    def port(self) -> int:
        """The bound port (after :meth:`start`; supports ``port=0``)."""
        return self._server.sockets[0].getsockname()[1]

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._executor is not None:
            self._executor.shutdown(wait=True)

    async def serve_forever(self, host: str = "127.0.0.1",
                            port: int = 8080) -> None:
        server = await self.start(host, port)
        async with server:
            await server.serve_forever()

    # -- HTTP plumbing -----------------------------------------------------------

    async def _handle_client(self, reader, writer):
        try:
            try:
                status, payload = await self._handle_request(reader)
            except (asyncio.TimeoutError, asyncio.IncompleteReadError):
                status, payload = 400, {"error": "incomplete request"}
            except ServiceError as err:
                status, payload = err.status, {"error": str(err)}
            except Exception as err:  # never kill the acceptor
                status, payload = 500, {
                    "error": "internal error: %s" % err,
                    "error_type": type(err).__name__,
                }
            self._requests += 1
            if status == 429:
                self._rejected += 1
            elif status >= 400:
                self._errors += 1
            body = json.dumps(payload).encode("utf-8")
            writer.write(
                (
                    "HTTP/1.1 %d %s\r\n"
                    "content-type: application/json\r\n"
                    "content-length: %d\r\n"
                    "connection: close\r\n\r\n"
                    % (status, _REASONS.get(status, "Error"), len(body))
                ).encode("ascii")
            )
            writer.write(body)
            await writer.drain()
        except (ConnectionError, BrokenPipeError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, BrokenPipeError):
                pass

    async def _handle_request(self, reader):
        timeout = self.config.read_timeout
        request_line = await asyncio.wait_for(
            reader.readline(), timeout=timeout
        )
        parts = request_line.decode("latin-1").split()
        if len(parts) < 2:
            raise ServiceError("malformed request line", status=400)
        method, path = parts[0].upper(), parts[1]
        headers = {}
        header_bytes = 0
        while True:
            line = await asyncio.wait_for(reader.readline(), timeout=timeout)
            if line in (b"\r\n", b"\n", b""):
                break
            header_bytes += len(line)
            if len(headers) >= MAX_HEADER_LINES or (
                header_bytes > MAX_HEADER_BYTES
            ):
                raise ServiceError(
                    "request header section exceeds %d lines / %d bytes"
                    % (MAX_HEADER_LINES, MAX_HEADER_BYTES),
                    status=400,
                )
            name, _sep, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        body = b""
        length = headers.get("content-length")
        if length is not None:
            try:
                length = int(length)
            except ValueError:
                raise ServiceError(
                    "bad content-length", status=400
                ) from None
            if length > MAX_BODY_BYTES:
                raise ServiceError(
                    "request body exceeds %d bytes" % MAX_BODY_BYTES,
                    status=413,
                )
            if length:
                body = await asyncio.wait_for(
                    reader.readexactly(length), timeout=timeout
                )
        return await self._route(method, path, body)

    @staticmethod
    def _json_body(body):
        if not body:
            raise ServiceError("request needs a JSON body", status=400)
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as err:
            raise ServiceError("bad JSON body: %s" % err, status=400) from err
        if not isinstance(payload, dict):
            raise ServiceError(
                "JSON body must be an object, got %s"
                % type(payload).__name__,
                status=400,
            )
        return payload

    async def _route(self, method, path, body):
        if path == "/healthz" and method == "GET":
            return 200, self._healthz()
        if path == "/stats" and method == "GET":
            return 200, self._stats()
        if path == "/graphs" and method == "GET":
            return 200, {"graphs": self.registry.describe()}
        if path == "/graphs" and method == "POST":
            return await self._register_graph(self._json_body(body))
        if path.startswith("/graphs/") and method == "DELETE":
            return self._evict_graph(unquote(path[len("/graphs/"):]))
        if path == "/query" and method == "POST":
            return await self._query(self._json_body(body))
        if path == "/batch" and method == "POST":
            return await self._batch(self._json_body(body))
        if path == "/classify" and method == "POST":
            return await self._classify(self._json_body(body))
        if path in ("/healthz", "/stats", "/graphs", "/query", "/batch",
                    "/classify") or path.startswith("/graphs/"):
            raise ServiceError(
                "%s does not support %s" % (path, method), status=405
            )
        raise ServiceError("no such endpoint %r" % path, status=404)

    # -- admission control -------------------------------------------------------

    def _admit(self, weight):
        """Reserve ``weight`` in-flight query slots or raise 429.

        Runs on the event loop only, so the counter needs no lock; the
        reservation is released in the caller's ``finally``.
        """
        if self._inflight + weight > self.config.max_inflight:
            raise ServiceOverloadedError(
                "server overloaded: %d queries in flight, +%d requested, "
                "limit %d"
                % (self._inflight, weight, self.config.max_inflight)
            )
        self._inflight += weight

    async def _in_executor(self, fn):
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(self._executor, fn)

    # -- endpoints ---------------------------------------------------------------

    def _healthz(self):
        return {
            "status": "ok",
            "graphs": len(self.registry),
            "inflight": self._inflight,
            "uptime_seconds": time.time() - self._started_at,
        }

    def _stats(self):
        return {
            "service": {
                "uptime_seconds": time.time() - self._started_at,
                "inflight": self._inflight,
                "max_inflight": self.config.max_inflight,
                "workers": self.config.workers,
                "parallel_mode": self.config.parallel_mode,
                "requests": self._requests,
                "rejected": self._rejected,
                "errors": self._errors,
            },
            "graphs": self.registry.describe(),
        }

    async def _register_graph(self, payload):
        name = payload.get("name")
        if not isinstance(name, str) or not name:
            raise ServiceError("'name' must be a non-empty string")
        text = payload.get("graph_text")
        if not isinstance(text, str):
            raise ServiceError(
                "'graph_text' must carry the graph in the text format "
                "(e source label target / v vertex, one per line)"
            )

        def work():
            # Parse + compile off the event loop: a large registration
            # must not stall health checks or in-flight responses.
            return self.registry.register(name, graph_io.loads(text))

        try:
            entry = await self._in_executor(work)
        except ServiceError:
            raise  # already carries its status (409 duplicate/full)
        except ReproError as err:
            raise ServiceError(str(err), status=400) from err
        return 200, {"registered": name, "stats": entry.describe()}

    def _evict_graph(self, name):
        entry = self.registry.evict(name)
        return 200, {"evicted": name, "stats": entry.describe()}

    async def _query(self, payload):
        entry = self.registry.resolve(payload.get("graph"))
        engine = entry.engine
        language = _checked_language(payload.get("language"))
        if "source" not in payload or "target" not in payload:
            raise ServiceError("'source' and 'target' are required")
        source = _resolve_vertex(engine.graph, payload["source"], "source")
        target = _resolve_vertex(engine.graph, payload["target"], "target")
        deadline, budget = _checked_overrides(payload)
        portfolio, max_path_edges = _checked_portfolio_knobs(payload)
        self._admit(1)
        # Pool-backed graphs answer on a pre-forked worker process
        # (shared-snapshot memory model); the executor thread only
        # waits on the worker's pipe, so the GIL stays free.
        run_query = engine.query if entry.pool is None else entry.pool.query
        start = time.perf_counter()
        failure = None
        try:
            result = await self._in_executor(
                functools.partial(
                    run_query,
                    language,
                    source,
                    target,
                    deadline_seconds=deadline,
                    budget=budget,
                    portfolio=portfolio,
                    max_path_edges=max_path_edges,
                )
            )
        except ReproError as err:
            failure = err
        finally:
            self._inflight -= 1
            seconds = time.perf_counter() - start
        if failure is not None:
            # Failed queries count in the per-graph stats exactly as
            # they would inside a batch (queries and errors both move).
            entry.record_query_failure(seconds)
            if isinstance(failure, DeadlineExceededError):
                raise ServiceError(
                    "query exceeded its deadline: %s" % failure, status=504
                )
            if isinstance(failure, BudgetExceededError):
                raise ServiceError(
                    "query exhausted its step budget: %s" % failure,
                    status=422,
                )
            if isinstance(failure, WorkerCrashError):
                # A crashed-and-unrecovered pool worker is a server
                # fault, not a bad request.
                raise ServiceError(str(failure), status=500)
            raise ServiceError(str(failure), status=400)
        entry.record_query(result, seconds)
        return 200, result_record(result)

    async def _batch(self, payload):
        entry = self.registry.resolve(payload.get("graph"))
        engine = entry.engine
        raw_queries = payload.get("queries")
        if not isinstance(raw_queries, list) or not raw_queries:
            raise ServiceError(
                "'queries' must be a non-empty list of "
                "[language, source, target] triples"
            )
        triples = []
        for index, item in enumerate(raw_queries):
            if (not isinstance(item, (list, tuple))) or len(item) != 3:
                raise ServiceError(
                    "queries[%d] is not a [language, source, target] "
                    "triple: %r" % (index, item)
                )
            lang, source, target = item
            triples.append((
                _checked_language(lang),
                _resolve_vertex(engine.graph, source, "source"),
                _resolve_vertex(engine.graph, target, "target"),
            ))
        deadline, budget = _checked_overrides(payload)
        portfolio, max_path_edges = _checked_portfolio_knobs(payload)
        workers = payload.get("workers", 1)
        if not isinstance(workers, int) or isinstance(workers, bool) or (
            workers < 1
        ):
            raise ServiceError(
                "'workers' must be a positive integer, got %r" % (workers,)
            )
        workers = min(workers, self.config.workers)
        mode = payload.get("mode", self.config.parallel_mode)
        if mode not in ("thread", "process"):
            raise ServiceError(
                "'mode' must be 'thread' or 'process', got %r" % (mode,)
            )
        vectorize = payload.get("vectorize")
        if vectorize is not None and not isinstance(vectorize, bool):
            raise ServiceError(
                "'vectorize' must be a boolean, got %r" % (vectorize,)
            )
        group_min_size = payload.get("group_min_size")
        if group_min_size is not None and (
            not isinstance(group_min_size, int)
            or isinstance(group_min_size, bool)
            or group_min_size < 1
        ):
            raise ServiceError(
                "'group_min_size' must be a positive integer, got %r"
                % (group_min_size,)
            )
        self._admit(len(triples))
        if entry.pool is not None:
            # Pool dispatch: the batch is sharded across pre-forked
            # workers attached to the shared snapshot ('mode' is
            # irrelevant — the pool *is* the process mode, with the
            # graph mapped once instead of pickled per worker).
            run_batch = functools.partial(
                entry.pool.run_batch,
                triples,
                workers=workers,
                deadline_seconds=deadline,
                budget=budget,
                vectorize=vectorize,
                group_min_size=group_min_size,
                portfolio=portfolio,
                max_path_edges=max_path_edges,
            )
        else:
            run_batch = functools.partial(
                engine.run_batch,
                triples,
                workers=workers,
                mode=mode,
                deadline_seconds=deadline,
                budget=budget,
                vectorize=vectorize,
                group_min_size=group_min_size,
                portfolio=portfolio,
                max_path_edges=max_path_edges,
            )
        try:
            batch = await self._in_executor(run_batch)
        finally:
            self._inflight -= len(triples)
        entry.record_batch(batch)
        return 200, batch_record(batch)

    async def _classify(self, payload):
        regex = _checked_language(payload.get("language"))

        def work():
            key = plan_key(regex)
            plan = self._classify_cache.get(key)
            if plan is None:
                plan = QueryPlan.compile(regex, key=key)
                self._classify_cache.put(key, plan)
            lang = plan.language
            classification = classify(lang.dfa, with_witness=False)
            return {
                "language": regex,
                "num_states": lang.num_states,
                "alphabet": "".join(sorted(lang.alphabet)),
                "finite": classification.finite,
                "in_trc": classification.in_trc,
                "complexity_class": classification.complexity_class.value,
                "strategy": plan.strategy,
                "decompose_failed": plan.decompose_failed,
            }

        try:
            return 200, await self._in_executor(work)
        except ReproError as err:
            raise ServiceError(str(err), status=400) from err


class ServiceThread:
    """Run a :class:`QueryService` on a background event-loop thread.

    The harness tests, benchmarks and load generators use: enter the
    context manager, read :attr:`port` (``port=0`` picks a free one),
    drive the server over real sockets, and the exit path shuts the
    loop down cleanly.
    """

    def __init__(self, service: QueryService, host: str = "127.0.0.1",
                 port: int = 0) -> None:
        self.service = service
        self.host = host
        self._requested_port = port
        self.port: int | None = None
        self._ready = Event()
        self._loop: Any = None
        self._stop: Any = None
        self._startup_error: Exception | None = None
        self._thread = Thread(
            target=self._run, name="repro-service", daemon=True
        )

    def _run(self):
        asyncio.run(self._main())

    async def _main(self):
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        try:
            server = await self.service.start(
                self.host, self._requested_port
            )
        except Exception as err:
            self._startup_error = err
            self._ready.set()
            return
        self.port = self.service.port
        self._ready.set()
        try:
            async with server:
                await self._stop.wait()
        finally:
            await self.service.close()

    def start(self) -> "ServiceThread":
        self._thread.start()
        self._ready.wait(timeout=30)
        if not self._ready.is_set():
            raise RuntimeError("service thread failed to start in time")
        if self._startup_error is not None:
            raise self._startup_error
        return self

    def stop(self) -> None:
        """Signal shutdown and join; safe after failed or no startup."""
        if self._loop is not None and self._stop is not None:
            try:
                self._loop.call_soon_threadsafe(self._stop.set)
            except RuntimeError:
                pass  # loop already closed (startup-failure path)
        if self._thread.ident is not None:
            self._thread.join(timeout=30)

    def __enter__(self):
        return self.start()

    def __exit__(self, exc_type, exc_value, traceback):
        self.stop()
        return False
