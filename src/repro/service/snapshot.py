"""Snapshot persistence for compiled graphs (warm-start from disk).

Compiling a :class:`~repro.engine.indexed.IndexedGraph` from a
:class:`~repro.graphs.dbgraph.DbGraph` pays one repr-sort per vertex
(forward and reverse adjacency) plus the per-label CSR build.  A
snapshot freezes the *result* of that work: loading one back rebuilds
the compiled view with pure array reads and tuple construction — no
sorting, no dict-of-sets traversal — which is what lets a restarted
query service warm-start in a fraction of the compile time
(``benchmarks/bench_service.py`` asserts the speedup).

Format (version 3; versions 1 and 2 still load)
------------------------------------------------

Little-endian throughout::

    offset 0   magic          8 bytes  b"RSPQSNAP"
    offset 8   version        u32      currently 3
    offset 12  header_len     u32
    offset 16  header         header_len bytes of UTF-8 JSON
    ...        payload_crc32  u32      zlib.crc32 of header + arrays
    ...        array section  concatenated int64 arrays

The JSON header carries the label table, the vertex table (ints and
strings only — JSON round-trips both losslessly) and an ordered
``arrays`` manifest of ``[name, element_count]`` pairs describing the
binary section:

``out_indptr`` / ``out_labels`` / ``out_targets``
    Forward adjacency in compiled (repr) order as one CSR: vertex ``i``
    owns slice ``out_indptr[i]:out_indptr[i+1]``; labels are indices
    into the label table, targets are vertex ids.
``in_indptr`` / ``in_labels`` / ``in_sources``
    Reverse adjacency, same encoding.
``csr_offsets`` / ``csr_indptr`` / ``csr_targets``
    The per-label CSR arrays exactly as the compiled view stores them:
    label ``j`` owns ``csr_indptr`` rows ``j*(n+1):(j+1)*(n+1)`` and
    the ``csr_targets`` slice ``csr_offsets[j]:csr_offsets[j+1]``.
``rcsr_offsets`` / ``rcsr_indptr`` / ``rcsr_sources`` (version ≥ 2)
    The label-partitioned *reverse* CSR, same layout as the forward
    per-label section: label ``j`` owns ``rcsr_indptr`` rows
    ``j*(n+1):(j+1)*(n+1)`` and the ``rcsr_sources`` slice
    ``rcsr_offsets[j]:rcsr_offsets[j+1]``.  Solvers use it for
    backward product searches; persisting it means a warm start
    rebuilds nothing.
``scc_comp_of`` / ``scc_edge_labels`` / ``scc_edge_sources`` /
``scc_edge_targets`` (version ≥ 3)
    The label-constrained reachability index's compiled parts:
    ``scc_comp_of`` maps each vertex to its SCC component id (the
    header carries ``num_comps``), and the three edge arrays list the
    distinct inter-component condensation edges as parallel
    ``(label_id, comp_from, comp_to)`` columns sorted by that triple.
    A warm start thaws the index instead of re-running Tarjan; the
    closure bitsets stay lazy either way.

A version-1 snapshot (no reverse-CSR section) still loads: the reverse
index is rebuilt in memory by transposing the forward per-label CSR,
and the thawed graph serves queries identically.  Likewise a version-1
or version-2 snapshot (no reachability section) loads by re-condensing
in memory on first index use.  Loading validates
magic, version, header shape and the checksum over the
header-plus-arrays payload, raising
:class:`~repro.errors.SnapshotError` with the reason on any mismatch —
a truncated or bit-rotted snapshot never produces a silently wrong
graph.  Files are written atomically (tmp + rename), so a crash
mid-save cannot corrupt an existing snapshot.
"""

from __future__ import annotations

import json
import mmap
import os
import struct
import sys
import weakref
import zlib
from array import array
from typing import Any, Iterable, Iterator

from ..errors import SnapshotError
from ..engine.indexed import CsrView, IndexedGraph, _transpose_label_csr
from . import faults

MAGIC = b"RSPQSNAP"
FORMAT_VERSION = 3
SUPPORTED_VERSIONS = (1, 2, 3)

_U32 = struct.Struct("<I")

#: Manifest order of the binary arrays (fixed for determinism).
_ARRAY_NAMES_V1 = (
    "out_indptr",
    "out_labels",
    "out_targets",
    "in_indptr",
    "in_labels",
    "in_sources",
    "csr_offsets",
    "csr_indptr",
    "csr_targets",
)

#: Version-2 appends the label-partitioned reverse CSR.
_REVERSE_ARRAY_NAMES = ("rcsr_offsets", "rcsr_indptr", "rcsr_sources")

#: Version-3 appends the reachability index (SCC condensation).
_REACH_ARRAY_NAMES = (
    "scc_comp_of",
    "scc_edge_labels",
    "scc_edge_sources",
    "scc_edge_targets",
)


def _array_names(version):
    names = _ARRAY_NAMES_V1
    if version >= 2:
        names = names + _REVERSE_ARRAY_NAMES
    if version >= 3:
        names = names + _REACH_ARRAY_NAMES
    return names


#: Recently *saved* graphs by absolute path: path -> (stored_crc,
#: weakref to the compiled graph).  Loading the same file back while
#: the saved graph is alive reuses its already-compiled condensation
#: (object identity) instead of re-thawing the reach section.  Weak
#: references only — the registry never keeps a graph alive — and no
#: lock: dict get/set are GIL-atomic, and a stale read merely skips
#: the reuse (a pure optimisation).
_SAVED_GRAPHS: dict[str, tuple[int, Any]] = {}
_SAVED_LIMIT = 16

#: Process-local attach cache for pickled snapshot-backed graphs:
#: (path, crc) -> attached graph.  A process-mode batch that fans N
#: shards into one worker attaches once, not N times.
_ATTACHED_CACHE: Any = weakref.WeakValueDictionary()


def _remember_saved(path, crc, graph):
    key = os.path.abspath(os.fspath(path))
    while len(_SAVED_GRAPHS) >= _SAVED_LIMIT:
        _SAVED_GRAPHS.pop(next(iter(_SAVED_GRAPHS)))
    _SAVED_GRAPHS[key] = (crc, weakref.ref(graph))


def _saved_reach_parts(path, crc):
    """The live, already-compiled condensation for ``(path, crc)``."""
    key = os.path.abspath(os.fspath(path))
    entry = _SAVED_GRAPHS.get(key)
    if entry is None:
        return None
    saved_crc, ref = entry
    graph = ref()
    if graph is None:
        _SAVED_GRAPHS.pop(key, None)
        return None
    if saved_crc != crc:
        return None
    return graph._reach_parts


def _int64_bytes(values):
    """``values`` as little-endian int64 bytes (portable across hosts)."""
    arr = array("q", values)
    if sys.byteorder == "big":  # pragma: no cover - exotic hosts
        arr = array("q", arr)
        arr.byteswap()
    return arr.tobytes()


def _int64_array(raw, count, name):
    """Parse ``count`` little-endian int64 values out of ``raw``."""
    expected = count * 8
    if len(raw) != expected:
        raise SnapshotError(
            "array %r truncated: expected %d bytes, got %d"
            % (name, expected, len(raw))
        )
    arr = array("q")
    arr.frombytes(raw)
    if sys.byteorder == "big":  # pragma: no cover - exotic hosts
        arr.byteswap()
    return arr


def _checked_vertices(vertices):
    """Vertices as a JSON-safe list (ints and strings only)."""
    checked = []
    for vertex in vertices:
        if not isinstance(vertex, (int, str)):
            raise SnapshotError(
                "snapshot vertices must be ints or strings, got %r "
                "(type %s)" % (vertex, type(vertex).__name__)
            )
        checked.append(vertex)
    return checked


def save_snapshot(graph: Any, path: Any,
                  format_version: int = FORMAT_VERSION) -> int:
    """Persist a compiled graph to ``path``; returns the byte size.

    ``graph`` may be an :class:`IndexedGraph` or anything its
    constructor accepts (a :class:`DbGraph` is compiled first).  The
    write is atomic: the snapshot lands under a temporary name and is
    renamed into place, so readers never observe a partial file.

    ``format_version`` defaults to the current format; passing ``1``
    or ``2`` writes the legacy layouts without the reverse-CSR and/or
    reachability-index sections (useful for serving fleets mid-upgrade
    — every supported version loads).
    """
    if format_version not in SUPPORTED_VERSIONS:
        raise SnapshotError(
            "cannot write snapshot format version %r (supported: %s)"
            % (format_version, ", ".join(map(str, SUPPORTED_VERSIONS)))
        )
    if not isinstance(graph, IndexedGraph):
        graph = IndexedGraph(graph)

    vertices = _checked_vertices(graph._vertex_of)
    labels = sorted(graph._labels)
    label_id = {label: index for index, label in enumerate(labels)}
    id_of = graph._id_of

    out_indptr, out_labels, out_targets = [0], [], []
    for pairs in graph._out:
        for label, target in pairs:
            out_labels.append(label_id[label])
            out_targets.append(id_of[target])
        out_indptr.append(len(out_targets))

    in_indptr, in_labels, in_sources = [0], [], []
    for pairs in graph._in:
        for label, source in pairs:
            in_labels.append(label_id[label])
            in_sources.append(id_of[source])
        in_indptr.append(len(in_sources))

    csr_offsets, csr_indptr, csr_targets = [0], [], []
    for label in labels:
        csr_indptr.extend(graph._label_indptr[label])
        csr_targets.extend(graph._label_targets[label])
        csr_offsets.append(len(csr_targets))

    sections = {
        "out_indptr": out_indptr,
        "out_labels": out_labels,
        "out_targets": out_targets,
        "in_indptr": in_indptr,
        "in_labels": in_labels,
        "in_sources": in_sources,
        "csr_offsets": csr_offsets,
        "csr_indptr": csr_indptr,
        "csr_targets": csr_targets,
    }
    if format_version >= 2:
        rcsr_offsets, rcsr_indptr, rcsr_sources = [0], [], []
        for label in labels:
            rcsr_indptr.extend(graph._rev_label_indptr[label])
            rcsr_sources.extend(graph._rev_label_sources[label])
            rcsr_offsets.append(len(rcsr_sources))
        sections["rcsr_offsets"] = rcsr_offsets
        sections["rcsr_indptr"] = rcsr_indptr
        sections["rcsr_sources"] = rcsr_sources

    num_comps = None
    if format_version >= 3:
        comp_of, num_comps, label_edges = graph.reach_parts()
        edge_labels, edge_sources, edge_targets = [], [], []
        for label_id, edges in enumerate(label_edges):
            for comp_from, comp_to in edges:
                edge_labels.append(label_id)
                edge_sources.append(comp_from)
                edge_targets.append(comp_to)
        sections["scc_comp_of"] = comp_of
        sections["scc_edge_labels"] = edge_labels
        sections["scc_edge_sources"] = edge_sources
        sections["scc_edge_targets"] = edge_targets

    names = _array_names(format_version)
    array_section = b"".join(
        _int64_bytes(sections[name]) for name in names
    )
    header = {
        "format_version": format_version,
        "vertices": vertices,
        "labels": labels,
        "num_edges": graph._num_edges,
        "arrays": [[name, len(sections[name])] for name in names],
    }
    if num_comps is not None:
        header["num_comps"] = num_comps
    header_bytes = json.dumps(header, separators=(",", ":")).encode("utf-8")

    # One checksum over header *and* arrays: a bit-rotted vertex name
    # or edge count must fail the load, not rename a vertex silently.
    payload_crc = zlib.crc32(array_section, zlib.crc32(header_bytes))
    blob = b"".join((
        MAGIC,
        _U32.pack(format_version),
        _U32.pack(len(header_bytes)),
        header_bytes,
        _U32.pack(payload_crc & 0xFFFFFFFF),
        array_section,
    ))
    tmp_path = "%s.tmp.%d" % (path, os.getpid())
    try:
        with open(tmp_path, "wb") as handle:
            handle.write(blob)
        os.replace(tmp_path, path)
    except BaseException:
        # A failed write (disk full, interrupt) must not leave orphan
        # tmp files accumulating next to the snapshot.
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise
    # The graph is now snapshot-backed: pickling ships the path (see
    # IndexedGraph.__reduce_ex__) and an immediate load of the same
    # file reuses this graph's compiled condensation by identity.
    crc = payload_crc & 0xFFFFFFFF
    graph._snapshot_path = os.fspath(path)
    graph._snapshot_crc = crc
    _remember_saved(path, crc, graph)
    return len(blob)


def _read_header(data, path):
    """Parse and validate magic/version/header; returns (header, offset)."""
    if len(data) < 16:
        raise SnapshotError(
            "snapshot %s is truncated (%d bytes, header needs 16)"
            % (path, len(data))
        )
    if bytes(data[:8]) != MAGIC:
        raise SnapshotError(
            "%s is not a graph snapshot (bad magic %r)"
            % (path, bytes(data[:8]))
        )
    (version,) = _U32.unpack_from(data, 8)
    if version not in SUPPORTED_VERSIONS:
        raise SnapshotError(
            "snapshot %s has format version %d; this build reads "
            "versions %s"
            % (path, version, ", ".join(map(str, SUPPORTED_VERSIONS)))
        )
    (header_len,) = _U32.unpack_from(data, 12)
    if len(data) < 16 + header_len + 4:
        raise SnapshotError(
            "snapshot %s is truncated inside the header" % path
        )
    try:
        header = json.loads(bytes(data[16:16 + header_len]).decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as err:
        raise SnapshotError(
            "snapshot %s has a corrupt JSON header: %s" % (path, err)
        ) from err
    for field in ("vertices", "labels", "num_edges", "arrays"):
        if field not in header:
            raise SnapshotError(
                "snapshot %s header is missing %r" % (path, field)
            )
    if header.get("format_version") != version:
        raise SnapshotError(
            "snapshot %s header claims format version %r but the "
            "binary prefix says %d"
            % (path, header.get("format_version"), version)
        )
    return header, 16 + header_len


def _parse(data, path, mapping=None, snapshot_path=None):
    """Validate ``data`` and thaw (or attach) the compiled graph.

    With ``mapping=None`` every array is copied into process-private
    ``array("q")`` storage (the classic load).  With ``mapping`` set to
    the open read-only mmap backing ``data``, the arrays are zero-copy
    ``memoryview`` slices of the mapping and the result is an
    :class:`AttachedGraph` that keeps the mapping alive.
    """
    header, offset = _read_header(data, path)
    header_raw = bytes(data[16:offset])
    (stored_crc,) = _U32.unpack_from(data, offset)
    offset += 4
    # CRC over a memoryview: no copy of the (possibly huge) array
    # section even in attach mode; every mapped page is touched once.
    array_section = memoryview(data)[offset:]
    attach = mapping is not None
    arrays = {}
    cursor = 0
    try:
        actual_crc = zlib.crc32(array_section, zlib.crc32(header_raw)) & (
            0xFFFFFFFF
        )
        if actual_crc != stored_crc:
            raise SnapshotError(
                "snapshot %s failed its checksum (stored %08x, computed "
                "%08x) — the file is corrupt or truncated"
                % (path, stored_crc, actual_crc)
            )
        manifest = header["arrays"]
        expected = list(_array_names(header["format_version"]))
        if [name for name, _count in manifest] != expected:
            raise SnapshotError(
                "snapshot %s has an unexpected array manifest: %r"
                % (path, manifest)
            )
        for name, count in manifest:
            size = count * 8
            if cursor + size > len(array_section):
                raise SnapshotError(
                    "array %r truncated: expected %d bytes, got %d"
                    % (name, size, len(array_section) - cursor)
                )
            chunk = array_section[cursor:cursor + size]
            if attach:
                # memoryview slicing + cast is zero-copy: the int64
                # view reads straight out of the shared file mapping.
                arrays[name] = chunk.cast("q")
            else:
                arrays[name] = _int64_array(bytes(chunk), count, name)
                chunk.release()
            cursor += size
        if cursor != len(array_section):
            raise SnapshotError(
                "snapshot %s has %d trailing bytes after its arrays"
                % (path, len(array_section) - cursor)
            )
        reach_reuse = None
        if snapshot_path is not None:
            # Satellite of the save path: an immediate load of a file
            # this process just saved reuses the saver's compiled
            # condensation.
            reach_reuse = _saved_reach_parts(snapshot_path, stored_crc)
        return _thaw(
            header, arrays, path,
            mapping=mapping,
            snapshot_path=snapshot_path,
            crc=stored_crc,
            reach_reuse=reach_reuse,
        )
    finally:
        # Drop this frame's buffer export so a copy-mode caller can
        # close its mmap even while an error is propagating (the
        # per-name views in ``arrays`` are what attach mode keeps).
        array_section.release()


def _thaw(header, arrays, path, mapping=None, snapshot_path=None,
          crc=None, reach_reuse=None):
    """Rebuild the compiled view — array reads only, nothing re-sorted.

    With ``mapping`` set (attach mode), the per-label CSR dicts are
    built from zero-copy slices of the mmapped arrays, the per-vertex
    adjacency tuples are *not* materialised (the attached view reads
    them lazily), and the result is an :class:`AttachedGraph` holding
    the mapping alive.
    """
    vertices = tuple(header["vertices"])
    labels = list(header["labels"])
    n = len(vertices)
    num_labels = len(labels)

    out_indptr = arrays["out_indptr"]
    in_indptr = arrays["in_indptr"]
    if len(out_indptr) != n + 1 or len(in_indptr) != n + 1:
        raise SnapshotError(
            "snapshot %s adjacency indptr does not match its %d "
            "vertices" % (path, n)
        )
    if len(arrays["csr_offsets"]) != num_labels + 1 or (
        len(arrays["csr_indptr"]) != num_labels * (n + 1)
    ):
        raise SnapshotError(
            "snapshot %s per-label CSR does not match its %d labels"
            % (path, num_labels)
        )
    if num_labels and len(arrays["csr_targets"]) != arrays["csr_offsets"][-1]:
        raise SnapshotError(
            "snapshot %s per-label CSR targets disagree with their "
            "offsets" % path
        )
    has_reverse = "rcsr_offsets" in arrays
    if has_reverse:
        if (
            len(arrays["rcsr_offsets"]) != num_labels + 1
            or len(arrays["rcsr_indptr"]) != num_labels * (n + 1)
        ):
            raise SnapshotError(
                "snapshot %s reverse per-label CSR does not match its %d "
                "labels" % (path, num_labels)
            )
        if num_labels and (
            len(arrays["rcsr_sources"]) != arrays["rcsr_offsets"][-1]
        ):
            raise SnapshotError(
                "snapshot %s reverse per-label CSR sources disagree "
                "with their offsets" % path
            )

    attach = mapping is not None
    if not attach:
        # One flat C-speed pass per direction (map + zip), then slice
        # per vertex — this is the hot path of a warm start, so no
        # per-edge Python-level loop bodies.
        out_pairs = list(zip(
            map(labels.__getitem__, arrays["out_labels"]),
            map(vertices.__getitem__, arrays["out_targets"]),
        ))
        out = [
            tuple(out_pairs[start:stop])
            for start, stop in zip(out_indptr, out_indptr[1:])
        ]
        in_pairs = list(zip(
            map(labels.__getitem__, arrays["in_labels"]),
            map(vertices.__getitem__, arrays["in_sources"]),
        ))
        in_ = [
            tuple(in_pairs[start:stop])
            for start, stop in zip(in_indptr, in_indptr[1:])
        ]

    csr_offsets = arrays["csr_offsets"]
    label_indptr = {}
    label_targets = {}
    for j, label in enumerate(labels):
        label_indptr[label] = arrays["csr_indptr"][
            j * (n + 1):(j + 1) * (n + 1)
        ]
        label_targets[label] = arrays["csr_targets"][
            csr_offsets[j]:csr_offsets[j + 1]
        ]

    rev_label_indptr = None
    rev_label_sources = None
    if has_reverse:
        rcsr_offsets = arrays["rcsr_offsets"]
        rev_label_indptr = {}
        rev_label_sources = {}
        for j, label in enumerate(labels):
            rev_label_indptr[label] = arrays["rcsr_indptr"][
                j * (n + 1):(j + 1) * (n + 1)
            ]
            rev_label_sources[label] = arrays["rcsr_sources"][
                rcsr_offsets[j]:rcsr_offsets[j + 1]
            ]

    reach_parts = reach_reuse
    if reach_parts is None and "scc_comp_of" in arrays:
        reach_parts = _thaw_reach_parts(
            header, arrays, n, num_labels, path, copy=not attach
        )

    if attach:
        return AttachedGraph._attach(
            vertex_of=vertices,
            labels=labels,
            num_edges=header["num_edges"],
            raw=arrays,
            label_indptr=label_indptr,
            label_targets=label_targets,
            rev_label_indptr=rev_label_indptr,
            rev_label_sources=rev_label_sources,
            reach_parts=reach_parts,
            mapping=mapping,
            snapshot_path=snapshot_path,
            crc=crc,
        )

    # A v1 snapshot has no reverse section; _from_parts rebuilds the
    # reverse index in memory by transposing the forward label CSR.
    # Pre-v3 snapshots likewise carry no reachability section; the
    # condensation is then recomputed in memory on first index use.
    graph = IndexedGraph._from_parts(
        vertex_of=vertices,
        labels=labels,
        num_edges=header["num_edges"],
        out=out,
        in_=in_,
        label_indptr=label_indptr,
        label_targets=label_targets,
        rev_label_indptr=rev_label_indptr,
        rev_label_sources=rev_label_sources,
        reach_parts=reach_parts,
    )
    if snapshot_path is not None:
        # Loaded graphs are snapshot-backed too: process-mode batches
        # on them ship the path, and workers attach instead of
        # unpickling private array copies.
        graph._snapshot_path = os.fspath(snapshot_path)
        graph._snapshot_crc = crc
    return graph


def _thaw_reach_parts(header, arrays, n, num_labels, path, copy=True):
    """Validate and rebuild the v3 reachability-index section.

    ``copy=False`` (attach mode) keeps ``comp_of`` as the zero-copy
    memoryview over the mapping — :class:`ReachabilityIndex` only ever
    indexes into it, so a buffer works as well as an array.
    """
    num_comps = header.get("num_comps")
    if not isinstance(num_comps, int) or not 0 <= num_comps <= n or (
        n > 0 and num_comps < 1
    ):
        raise SnapshotError(
            "snapshot %s header carries an invalid num_comps %r for %d "
            "vertices" % (path, num_comps, n)
        )
    raw_comp_of = arrays["scc_comp_of"]
    if len(raw_comp_of) != n:
        raise SnapshotError(
            "snapshot %s reachability section does not match its %d "
            "vertices (%d component entries)" % (path, n, len(raw_comp_of))
        )
    comp_of = array("l", raw_comp_of) if copy else raw_comp_of
    for comp in comp_of:
        if not 0 <= comp < num_comps:
            raise SnapshotError(
                "snapshot %s reachability section names component %d "
                "outside 0..%d" % (path, comp, num_comps - 1)
            )
    edge_labels = arrays["scc_edge_labels"]
    edge_sources = arrays["scc_edge_sources"]
    edge_targets = arrays["scc_edge_targets"]
    if not (len(edge_labels) == len(edge_sources) == len(edge_targets)):
        raise SnapshotError(
            "snapshot %s reachability edge arrays disagree in length "
            "(%d/%d/%d)"
            % (path, len(edge_labels), len(edge_sources), len(edge_targets))
        )
    label_edge_lists = [[] for _ in range(num_labels)]
    for label_id, comp_from, comp_to in zip(
        edge_labels, edge_sources, edge_targets
    ):
        if not 0 <= label_id < num_labels:
            raise SnapshotError(
                "snapshot %s reachability edge names label id %d outside "
                "0..%d" % (path, label_id, num_labels - 1)
            )
        if not (0 <= comp_from < num_comps and 0 <= comp_to < num_comps):
            raise SnapshotError(
                "snapshot %s reachability edge (%d -> %d) is outside the "
                "component range 0..%d"
                % (path, comp_from, comp_to, num_comps - 1)
            )
        if comp_to >= comp_from:
            # Tarjan numbers components in reverse topological order,
            # so every legitimate condensation edge points to a
            # strictly smaller id; the closure pass in
            # ReachabilityIndex._reach_for depends on it, and a
            # violating edge would silently under-approximate
            # reachability (false "unreachable" proofs).
            raise SnapshotError(
                "snapshot %s reachability edge (%d -> %d) violates the "
                "reverse-topological component numbering"
                % (path, comp_from, comp_to)
            )
        label_edge_lists[label_id].append((comp_from, comp_to))
    label_edges = tuple(tuple(edges) for edges in label_edge_lists)
    return comp_of, num_comps, label_edges


class AttachedCsrView(CsrView):
    """:class:`CsrView` reading straight off a mmapped snapshot.

    The per-label CSR tuples it serves are zero-copy memoryview slices
    of the shared mapping; the per-vertex ``(label_id, other_id)``
    pair tuples are decoded lazily from the flat adjacency arrays and
    memoised, so a worker only ever pays (and caches) the vertices its
    queries actually touch.  All mapped buffers are strictly read-only
    — the ``snapshot-readonly`` invariant rule enforces this in
    serving code.
    """

    def _build_pairs(self, graph: "AttachedGraph") -> None:
        raw = graph._raw
        self._raw_out = (
            raw["out_indptr"], raw["out_labels"], raw["out_targets"],
        )
        self._raw_in = (
            raw["in_indptr"], raw["in_labels"], raw["in_sources"],
        )
        self._out_pair_memo: dict[int, tuple] = {}
        self._in_pair_memo: dict[int, tuple] = {}

    # invariant: hot-loop
    def out(self, vertex_id: int) -> tuple[tuple[int, int], ...]:
        pairs = self._out_pair_memo.get(vertex_id)
        if pairs is None:
            indptr, edge_labels, targets = self._raw_out
            start = indptr[vertex_id]
            stop = indptr[vertex_id + 1]
            pairs = tuple(zip(
                edge_labels[start:stop], targets[start:stop]
            ))
            self._out_pair_memo[vertex_id] = pairs
        return pairs

    # invariant: hot-loop
    def in_pairs(self, vertex_id: int) -> tuple[tuple[int, int], ...]:
        pairs = self._in_pair_memo.get(vertex_id)
        if pairs is None:
            indptr, edge_labels, sources = self._raw_in
            start = indptr[vertex_id]
            stop = indptr[vertex_id + 1]
            pairs = tuple(zip(
                edge_labels[start:stop], sources[start:stop]
            ))
            self._in_pair_memo[vertex_id] = pairs
        return pairs

    def out_degree(self, vertex_id: int) -> int:
        indptr = self._raw_out[0]
        return indptr[vertex_id + 1] - indptr[vertex_id]

    def __repr__(self):
        return "AttachedCsrView(|V|=%d, |Σ|=%d over %r)" % (
            self.num_vertices, self.num_labels, self.graph,
        )


class AttachedGraph(IndexedGraph):
    """An :class:`IndexedGraph` attached to a read-only mmapped snapshot.

    Every CSR array (forward, reverse, reachability) is a zero-copy
    memoryview slice of the mapping held in ``_mapping``; the string
    adjacency tuples (``_out`` / ``_in``) are thawed lazily only if a
    caller actually uses the string-level ``DbGraph`` API (the solver
    hot paths go through :class:`AttachedCsrView` and never do).

    Safe for any number of concurrent readers: the mapping is
    ``ACCESS_READ`` and nothing here mutates shared state after
    construction except process-private memo dicts.  Forked workers
    share the physical pages through the page cache — N workers, one
    copy of the graph.
    """

    __slots__ = ()

    @classmethod
    def _attach(cls, vertex_of, labels, num_edges, raw,
                label_indptr, label_targets,
                rev_label_indptr, rev_label_sources,
                reach_parts, mapping, snapshot_path, crc):
        self = object.__new__(cls)
        self._vertex_of = tuple(vertex_of)
        self._id_of = {
            vertex: index for index, vertex in enumerate(self._vertex_of)
        }
        self._labels = frozenset(labels)
        self._num_edges = num_edges
        self._out = None
        self._in = None
        self._out_pair_sets = None
        self._label_indptr = dict(label_indptr)
        self._label_targets = dict(label_targets)
        if rev_label_indptr is None or rev_label_sources is None:
            # v1 snapshot: no reverse section on disk — transpose into
            # process-private arrays (the one non-shared structure; v2+
            # snapshots attach it zero-copy like everything else).
            rev_label_indptr, rev_label_sources = _transpose_label_csr(
                len(self._vertex_of), self._label_indptr,
                self._label_targets,
            )
        self._rev_label_indptr = dict(rev_label_indptr)
        self._rev_label_sources = dict(rev_label_sources)
        self._sorted_succ_by_label = {}
        self._reach_parts = reach_parts
        self._view = None
        self._raw = dict(raw)
        self._mapping = mapping
        self._snapshot_path = (
            None if snapshot_path is None else os.fspath(snapshot_path)
        )
        self._snapshot_crc = crc
        return self

    def view(self) -> CsrView:
        if self._view is None:
            if self._raw is None:
                # Unpickled through the full-state fallback (backing
                # file vanished): the arrays were materialised, so the
                # ordinary view serves them.
                self._view = CsrView(self)
            else:
                self._view = AttachedCsrView(self)
        return self._view

    def _ensure_adjacency(self) -> None:
        """Thaw the string-level ``_out`` / ``_in`` tuples on demand."""
        if self._out is not None:
            return
        vertices = self._vertex_of
        labels = sorted(self._labels)
        raw = self._raw
        out_indptr = raw["out_indptr"]
        out_pairs = list(zip(
            map(labels.__getitem__, raw["out_labels"]),
            map(vertices.__getitem__, raw["out_targets"]),
        ))
        self._out = tuple(
            tuple(out_pairs[start:stop])
            for start, stop in zip(out_indptr, out_indptr[1:])
        )
        in_indptr = raw["in_indptr"]
        in_pairs = list(zip(
            map(labels.__getitem__, raw["in_labels"]),
            map(vertices.__getitem__, raw["in_sources"]),
        ))
        self._in = tuple(
            tuple(in_pairs[start:stop])
            for start, stop in zip(in_indptr, in_indptr[1:])
        )

    # -- string-level DbGraph API: thaw lazily, then defer to the base --

    def _pair_sets(self):
        self._ensure_adjacency()
        return super()._pair_sets()

    def out_edges(self, vertex: Any) -> Iterator[tuple[str, Any]]:
        self._ensure_adjacency()
        return super().out_edges(vertex)

    def in_edges(self, vertex: Any) -> Iterator[tuple[str, Any]]:
        self._ensure_adjacency()
        return super().in_edges(vertex)

    def sorted_out_edges(
        self, vertex: Any
    ) -> tuple[tuple[str, Any], ...]:
        self._ensure_adjacency()
        return super().sorted_out_edges(vertex)

    def successors(
        self, vertex: Any, label: str | None = None
    ) -> set[Any]:
        if label is None:
            self._ensure_adjacency()
        return super().successors(vertex, label)

    def predecessors(
        self, vertex: Any, label: str | None = None
    ) -> set[Any]:
        self._ensure_adjacency()
        return super().predecessors(vertex, label)

    def edges(self) -> Iterator[tuple[Any, str, Any]]:
        self._ensure_adjacency()
        return super().edges()

    def out_degree(self, vertex: Any) -> int:
        if self._raw is not None:
            indptr = self._raw["out_indptr"]
            vertex_id = self.vertex_id(vertex)
            return indptr[vertex_id + 1] - indptr[vertex_id]
        return super().out_degree(vertex)

    def in_degree(self, vertex: Any) -> int:
        if self._raw is not None:
            indptr = self._raw["in_indptr"]
            vertex_id = self.vertex_id(vertex)
            return indptr[vertex_id + 1] - indptr[vertex_id]
        return super().in_degree(vertex)

    def reachable_within(self, start: Any,
                         allowed_labels: Iterable[str] | None = None,
                         forbidden: Iterable[Any] = ()) -> set[Any]:
        if forbidden or (
            allowed_labels is not None
            and not self._labels <= set(allowed_labels)
        ):
            # Only the restricted fallback walks _out directly.
            self._ensure_adjacency()
        return super().reachable_within(start, allowed_labels, forbidden)

    # -- pickling ------------------------------------------------------------------

    def __getstate__(self):
        # Reached only when attach-by-path is impossible (the backing
        # file was deleted or replaced): materialise every mmap-backed
        # buffer so the pickle is self-contained, and drop the stale
        # provenance so the copy doesn't advertise a dead path.
        self._ensure_adjacency()
        state = super().__getstate__()
        state["_label_indptr"] = {
            label: array("q", values)
            for label, values in self._label_indptr.items()
        }
        state["_label_targets"] = {
            label: array("q", values)
            for label, values in self._label_targets.items()
        }
        state["_rev_label_indptr"] = {
            label: array("q", values)
            for label, values in self._rev_label_indptr.items()
        }
        state["_rev_label_sources"] = {
            label: array("q", values)
            for label, values in self._rev_label_sources.items()
        }
        if self._reach_parts is not None:
            comp_of, num_comps, label_edges = self._reach_parts
            state["_reach_parts"] = (
                array("l", comp_of), num_comps, label_edges,
            )
        state["_snapshot_path"] = None
        state["_snapshot_crc"] = None
        return state

    def __repr__(self):
        return "AttachedGraph(|V|=%d, |E|=%d, Σ=%s, path=%r)" % (
            self.num_vertices,
            self.num_edges,
            "".join(sorted(self._labels)),
            self._snapshot_path,
        )


def attach_snapshot(path: Any) -> IndexedGraph:
    """Attach to a snapshot: a compiled graph over the mmapped file.

    Unlike :func:`load_snapshot` (which copies every array into
    process-private memory), attaching maps the file read-only and
    builds the compiled view directly over the mapping — zero array
    copies.  N processes attached to one snapshot therefore share one
    physical copy of the graph through the page cache, which is the
    memory model behind the pre-fork worker pool
    (:class:`repro.service.workers.WorkerPool`).

    The returned :class:`AttachedGraph` keeps the mapping alive for
    its own lifetime and is safe for concurrent readers.  POSIX
    semantics apply to the file itself: deleting or atomically
    replacing the snapshot on disk does *not* disturb already-attached
    graphs (they keep serving the old inode); only fresh attaches see
    the new file — or raise a clean :class:`SnapshotError` when the
    file is gone or damaged.

    Validates exactly like :func:`load_snapshot` (magic, version,
    header, full payload checksum) before returning.
    """
    try:
        handle = open(path, "rb")
    except FileNotFoundError:
        raise SnapshotError(
            "snapshot %s does not exist" % path
        ) from None
    with handle:
        try:
            mm = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
        except ValueError:
            raise SnapshotError(
                "snapshot %s is empty" % path
            ) from None
    mutated = faults.mutate_snapshot_bytes(mm)
    if mutated is not None:
        # Fault injection: validate the damaged copy through the real
        # parse/checksum path (no mapping is kept in fault mode).
        try:
            return _parse(mutated, path, snapshot_path=path)
        finally:
            mm.close()
    if sys.byteorder == "big":  # pragma: no cover - exotic hosts
        # memoryview.cast("q") reads native-endian; on big-endian
        # hosts fall back to the copying load (correct, just not
        # shared).
        try:
            return _parse(mm, path, snapshot_path=path)
        finally:
            mm.close()
    try:
        return _parse(mm, path, mapping=mm, snapshot_path=path)
    except BaseException:
        try:
            mm.close()
        except BufferError:
            # The in-flight traceback still exports buffer views of
            # the mapping; it is released when the last view dies.
            pass
        raise


def _stored_crc(path):
    """The payload CRC a snapshot file carries, or ``None`` if unreadable."""
    try:
        with open(path, "rb") as handle:
            prefix = handle.read(16)
            if len(prefix) != 16 or prefix[:8] != MAGIC:
                return None
            (header_len,) = _U32.unpack_from(prefix, 12)
            handle.seek(16 + header_len)
            raw = handle.read(4)
    except OSError:
        return None
    if len(raw) != 4:
        return None
    return _U32.unpack(raw)[0]


def attach_spec(graph: IndexedGraph) -> tuple | None:
    """Pickle spec shipping a snapshot-backed graph by path.

    Returns ``(callable, args)`` for ``__reduce_ex__`` when the file
    on disk still carries the CRC the graph was saved/loaded with
    (a cheap header-only read), else ``None`` — the caller then falls
    back to pickling the full arrays, trading the shared-memory win
    for correctness.
    """
    path = graph._snapshot_path
    crc = graph._snapshot_crc
    if path is None or crc is None:
        return None
    if _stored_crc(path) != crc:
        return None
    return (_attach_for_pickle, (path, crc))


def _attach_for_pickle(path, crc):
    """Unpickle hook: attach (once per process) to a pickled-by-path graph."""
    key = (os.path.abspath(path), crc)
    graph = _ATTACHED_CACHE.get(key)
    if graph is not None:
        return graph
    graph = attach_snapshot(path)
    if graph._snapshot_crc != crc:
        raise SnapshotError(
            "snapshot %s changed since the graph was pickled (stored "
            "crc %08x, expected %08x)"
            % (path, graph._snapshot_crc, crc)
        )
    _ATTACHED_CACHE[key] = graph
    return graph


def load_snapshot(path: Any) -> IndexedGraph:
    """Load a snapshot back into an :class:`IndexedGraph` (mmap read).

    Raises :class:`~repro.errors.SnapshotError` on any structural
    problem: missing file, bad magic, unsupported version, corrupt
    header, checksum mismatch or inconsistent arrays.
    """
    try:
        with open(path, "rb") as handle:
            try:
                mm = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
            except ValueError:
                raise SnapshotError(
                    "snapshot %s is empty" % path
                ) from None
            try:
                mutated = faults.mutate_snapshot_bytes(mm)
                if mutated is not None:
                    return _parse(mutated, path, snapshot_path=path)
                return _parse(mm, path, snapshot_path=path)
            finally:
                mm.close()
    except FileNotFoundError:
        raise SnapshotError(
            "snapshot %s does not exist" % path
        ) from None


def snapshot_info(path: Any) -> dict[str, Any]:
    """The snapshot's header metadata without thawing the graph.

    Returns a dict with ``format_version``, ``num_vertices``,
    ``num_edges`` and ``labels`` — what a service wants to log at
    startup before paying for the load.
    """
    try:
        with open(path, "rb") as handle:
            # Header-only read: the prefix names the header length, so
            # a multi-GB snapshot costs a few KB here, not a full read.
            prefix = handle.read(16)
            header_len = (
                _U32.unpack_from(prefix, 12)[0] if len(prefix) == 16 else 0
            )
            data = prefix + handle.read(header_len + 4)
    except FileNotFoundError:
        raise SnapshotError(
            "snapshot %s does not exist" % path
        ) from None
    header, _offset = _read_header(data, path)
    return {
        "format_version": header["format_version"],
        "num_vertices": len(header["vertices"]),
        "num_edges": header["num_edges"],
        "labels": list(header["labels"]),
    }
