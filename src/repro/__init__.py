"""repro — reproduction of "A Trichotomy for Regular Simple Path Queries
on Graphs" (Bagan, Bonifati, Groz, PODS 2013).

Public API highlights
---------------------

* :func:`repro.language` — build a regular language from a regex string.
* :class:`repro.DbGraph` — directed edge-labeled graph database.
* :func:`repro.classify` — the trichotomy (Theorem 2): AC0 / NL-complete
  / NP-complete.
* :class:`repro.RspqSolver` — evaluate regular *simple* path queries,
  automatically using the polynomial algorithm for tractable languages.
* :class:`repro.QueryEngine` — batch evaluation against one compiled
  :class:`repro.IndexedGraph` with an LRU plan cache (:mod:`repro.engine`).
* :mod:`repro.service` (imported explicitly — it pulls in the serving
  stack) — the long-lived multi-graph query service: ``GraphRegistry``,
  snapshot persistence for warm starts, the JSON-over-HTTP server
  behind ``repro serve`` and its load-generating client.
"""

from .errors import (
    AutomatonError,
    BudgetExceededError,
    DeadlineExceededError,
    GraphError,
    NotInTrCError,
    RegexSyntaxError,
    ReproError,
)
from .execution import ExecutionContext
from .languages import Language, language
from .graphs.dbgraph import DbGraph
from .graphs.vlgraph import EvlGraph, VlGraph
from .core.trichotomy import ComplexityClass, classify
from .core.trc import is_in_trc
from .core.solver import RspqSolver, solve_rspq
from .engine import IndexedGraph, QueryEngine
from . import catalog

__version__ = "1.0.0"

__all__ = [
    "AutomatonError",
    "BudgetExceededError",
    "ComplexityClass",
    "DbGraph",
    "DeadlineExceededError",
    "EvlGraph",
    "ExecutionContext",
    "GraphError",
    "IndexedGraph",
    "Language",
    "NotInTrCError",
    "QueryEngine",
    "RegexSyntaxError",
    "ReproError",
    "RspqSolver",
    "VlGraph",
    "catalog",
    "classify",
    "is_in_trc",
    "language",
    "solve_rspq",
]
