"""Command-line interface: classify languages and run queries.

Usage (also via ``python -m repro``)::

    repro classify 'a*(bb+ + eps)c*'
    repro witness 'a*ba*'
    repro solve 'a*c*' graph.txt 0 5
    repro psitr 'a*(bb+ + eps)c*'
    repro batch graph.txt queries.txt
    repro batch graph.txt queries.txt --workers 4 --jsonl results.jsonl

The graph file uses the text format of :mod:`repro.graphs.io`
(``e source label target`` per line).  A batch queries file has one
``source target regex`` query per line (the regex may contain spaces;
``#`` comments and blank lines are ignored); the batch is executed by
:class:`repro.engine.QueryEngine` — graph compiled once, plans cached.
Exit status is 0 on success, 1 for "no path" answers, 2 for usage or
input errors.
"""

from __future__ import annotations

import argparse
import json
import sys

from .errors import ReproError
from .languages import language
from .core.trichotomy import classify
from .core.witness import find_hardness_witness
from .core.psitr import decompose
from .core.solver import RspqSolver
from .engine import QueryEngine
from .graphs import io as graph_io


def _build_parser():
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regular simple path queries: the PODS'13 trichotomy.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_classify = sub.add_parser(
        "classify", help="classify RSPQ(L) per Theorem 2"
    )
    p_classify.add_argument("regex", help="regular expression for L")

    p_witness = sub.add_parser(
        "witness", help="print a Property-(1) hardness witness (L ∉ trC)"
    )
    p_witness.add_argument("regex")

    p_psitr = sub.add_parser(
        "psitr", help="print a Ψtr decomposition (L ∈ trC)"
    )
    p_psitr.add_argument("regex")

    p_solve = sub.add_parser(
        "solve", help="find a shortest simple L-labeled path in a graph"
    )
    p_solve.add_argument("regex")
    p_solve.add_argument("graph", help="path to a graph file (text format)")
    p_solve.add_argument("source")
    p_solve.add_argument("target")
    p_solve.add_argument(
        "--budget",
        type=int,
        default=None,
        help="step budget for the exponential solver (NP-complete L)",
    )

    p_batch = sub.add_parser(
        "batch",
        help="run many queries against one graph via the plan-cached "
        "engine (repro.engine.QueryEngine)",
        description="Evaluate a file of RSPQs against one graph.  The "
        "graph is compiled to an indexed view once and query plans "
        "(regex -> DFA -> classification -> decomposition) are cached "
        "in an LRU, so repeated languages are planned only once.  Each "
        "query line reads 'source target regex' (the regex may contain "
        "spaces; '#' comments and blank lines are skipped).",
    )
    p_batch.add_argument("graph", help="path to a graph file (text format)")
    p_batch.add_argument(
        "queries", help="path to a queries file (source target regex)"
    )
    p_batch.add_argument(
        "--budget",
        type=int,
        default=None,
        help="step budget for queries dispatched to the exact solver",
    )
    p_batch.add_argument(
        "--plan-cache-size",
        type=int,
        default=128,
        help="LRU capacity of the query-plan cache (default 128)",
    )
    p_batch.add_argument(
        "--stats",
        action="store_true",
        help="print per-query solver steps and timings",
    )
    p_batch.add_argument(
        "--workers",
        type=int,
        default=1,
        help="parallel workers for the batch (default 1 = serial); "
        "results are identical path-for-path for every worker count",
    )
    p_batch.add_argument(
        "--parallel-mode",
        choices=("thread", "process"),
        default="thread",
        help="scheduler for --workers > 1: 'thread' shares one plan "
        "cache (single-flight compiles), 'process' shards across "
        "worker processes for CPU scaling on GIL builds",
    )
    p_batch.add_argument(
        "--jsonl",
        metavar="OUT",
        default=None,
        help="stream each query result as one JSON object per line to "
        "OUT (machine-readable: strategy, found, length, word, steps, "
        "seconds, plan_cache_hit, error)",
    )
    return parser


def _cmd_classify(args):
    lang = language(args.regex)
    result = classify(lang.dfa, with_witness=False)
    print("language   : %s" % args.regex)
    print("minimal DFA: %d states over {%s}" % (
        lang.num_states, ", ".join(sorted(lang.alphabet))))
    print("finite     : %s" % result.finite)
    print("in trC     : %s" % result.in_trc)
    print("RSPQ(L) is : %s" % result.complexity_class.value)
    return 0


def _cmd_witness(args):
    lang = language(args.regex)
    witness = find_hardness_witness(lang.dfa)
    if witness is None:
        print("L is in trC — RSPQ(L) is tractable, no hardness witness.")
        return 1
    print("Property-(1) witness (drives the Lemma 5 reduction):")
    for name, word in zip(
        ("wl", "w1", "wm", "w2", "wr"), witness.words()
    ):
        print("  %s = %r" % (name, word))
    return 0


def _cmd_psitr(args):
    lang = language(args.regex)
    expression = decompose(lang)
    print(expression)
    return 0


def _cmd_solve(args):
    lang = language(args.regex)
    graph = graph_io.load(args.graph)
    solver = RspqSolver(lang, exact_budget=args.budget)
    result = solver.solve(graph, args.source, args.target)
    print("strategy: %s" % result.strategy)
    if not result.found:
        print("no simple path labeled in L from %s to %s"
              % (args.source, args.target))
        return 1
    print("length  : %d" % result.length)
    print("word    : %s" % result.path.word)
    print("path    : %s" % " -> ".join(str(v) for v in result.path.vertices))
    return 0


def _parse_queries(path):
    """Parse a queries file into ``(regex, source, target)`` triples."""
    queries = []
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, raw_line in enumerate(handle, start=1):
            line = raw_line.strip()
            if not line or line.startswith("#"):
                continue
            fields = line.split(None, 2)
            if len(fields) != 3:
                raise ReproError(
                    "queries line %d: expected 'source target regex', "
                    "got %r" % (line_number, raw_line.rstrip("\n"))
                )
            source, target, regex = fields
            queries.append((regex, source, target))
    return queries


def _result_record(result):
    """One :class:`EngineResult` as a JSON-serialisable dict."""
    return {
        "language": str(result.language),
        "source": result.source,
        "target": result.target,
        "strategy": result.strategy,
        "found": result.found,
        "length": result.length,
        "word": None if result.path is None else result.path.word,
        "path": (
            None
            if result.path is None
            else list(result.path.vertices)
        ),
        "decompose_failed": result.decompose_failed,
        "steps": result.stats.steps,
        "seconds": result.stats.seconds,
        "plan_cache_hit": result.stats.plan_cache_hit,
        "error": result.error,
    }


def _write_jsonl(path, results):
    """Stream one compact JSON object per result to ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        for result in results:
            handle.write(
                json.dumps(
                    _result_record(result), sort_keys=True, default=str
                )
            )
            handle.write("\n")


def _cmd_batch(args):
    if args.plan_cache_size < 1:
        raise ReproError(
            "--plan-cache-size must be >= 1, got %d" % args.plan_cache_size
        )
    if args.workers < 1:
        raise ReproError(
            "--workers must be >= 1, got %d" % args.workers
        )
    graph = graph_io.load(args.graph)
    queries = _parse_queries(args.queries)
    engine = QueryEngine(
        graph,
        plan_cache_size=args.plan_cache_size,
        exact_budget=args.budget,
    )
    batch = engine.run_batch(
        queries, workers=args.workers, mode=args.parallel_mode
    )
    if args.jsonl:
        _write_jsonl(args.jsonl, batch.results)
    for result in batch.results:
        if result.error is not None:
            answer = "error: %s" % result.error
        elif result.found:
            answer = "length %d, word %s" % (result.length, result.path.word)
        else:
            answer = "no path"
        flag = "  [warning: decompose failed, exact fallback]" if (
            result.decompose_failed
        ) else ""
        print(
            "[%s] %s -> %s under %s: %s%s"
            % (
                result.strategy,
                result.source,
                result.target,
                result.language,
                answer,
                flag,
            )
        )
        if args.stats:
            print(
                "    steps=%s plan_cache_hit=%s time=%.6fs"
                % (
                    result.stats.steps,
                    result.stats.plan_cache_hit,
                    result.stats.seconds,
                )
            )
    print(batch.summary())
    if batch.error_count:
        return 2
    return 0 if batch.found_count == len(queries) else 1


_COMMANDS = {
    "classify": _cmd_classify,
    "witness": _cmd_witness,
    "psitr": _cmd_psitr,
    "solve": _cmd_solve,
    "batch": _cmd_batch,
}


def main(argv=None):
    """CLI entry point; returns the process exit status."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ReproError as err:
        print("error: %s" % err, file=sys.stderr)
        return 2
    except OSError as err:
        print("error: %s" % err, file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
