"""Command-line interface: classify languages and run queries.

Usage (also via ``python -m repro``)::

    repro classify 'a*(bb+ + eps)c*'
    repro witness 'a*ba*'
    repro explain 'a*ba*' --graph graph.txt
    repro solve 'a*c*' graph.txt 0 5
    repro psitr 'a*(bb+ + eps)c*'
    repro batch graph.txt queries.txt
    repro batch graph.txt queries.txt --workers 4 --jsonl results.jsonl
    repro snapshot graph.txt graph.snap
    repro serve --graph social=graph.txt --snapshot web=graph.snap

The graph file uses the text format of :mod:`repro.graphs.io`
(``e source label target`` per line).  A batch queries file has one
``source target regex`` query per line (the regex may contain spaces;
``#`` comments and blank lines are ignored); the batch is executed by
:class:`repro.engine.QueryEngine` — graph compiled once, plans cached.
``snapshot`` compiles a graph and persists the compiled view for
warm-starts; ``serve`` hosts registered graphs behind the JSON/HTTP
query service of :mod:`repro.service`.
Exit status is 0 on success, 1 for "no path" answers, 2 for usage or
input errors.
"""

from __future__ import annotations

import argparse
import json
import sys

from .errors import ReproError
from .languages import language
from .core.trichotomy import classify
from .core.witness import find_hardness_witness
from .core.psitr import decompose
from .core.solver import STRATEGY_TRACTABLE, RspqSolver
from .engine import QueryEngine
from .graphs import io as graph_io
from .service.protocol import RESULT_FIELDS, result_record


def _build_parser():
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regular simple path queries: the PODS'13 trichotomy.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_classify = sub.add_parser(
        "classify", help="classify RSPQ(L) per Theorem 2"
    )
    p_classify.add_argument("regex", help="regular expression for L")

    p_witness = sub.add_parser(
        "witness", help="print a Property-(1) hardness witness (L ∉ trC)"
    )
    p_witness.add_argument("regex")

    p_psitr = sub.add_parser(
        "psitr", help="print a Ψtr decomposition (L ∈ trC)"
    )
    p_psitr.add_argument("regex")

    p_explain = sub.add_parser(
        "explain",
        help="print the compiled query plan without executing a search",
        description="Compile the plan for REGEX (parse -> minimal DFA "
        "-> trichotomy classification -> strategy dispatch) and print "
        "what the engine would run: the classification, the chosen "
        "strategy, whether the Psi-tr decomposition failed (exact "
        "fallback), the plan-cache key kind, which graph view the "
        "solvers would walk, and — with --graph — the label-mask "
        "coverage of the reachability index (plus, with --source and "
        "--target, the index verdict for that exact query).  No graph "
        "search is executed.",
    )
    p_explain.add_argument("regex")
    p_explain.add_argument(
        "--graph",
        default=None,
        metavar="PATH",
        help="optional graph file; when given, the report describes "
        "the compiled view the engine would serve this graph through "
        "and the reachability index's label-mask coverage for REGEX",
    )
    p_explain.add_argument(
        "--source",
        default=None,
        help="with --graph and --target: report the reachability-index "
        "verdict (short_circuit: unreachable / solver would run) for "
        "this query without running it",
    )
    p_explain.add_argument(
        "--target",
        default=None,
        help="query target for the index verdict (see --source)",
    )

    p_solve = sub.add_parser(
        "solve", help="find a shortest simple L-labeled path in a graph"
    )
    p_solve.add_argument("regex")
    p_solve.add_argument("graph", help="path to a graph file (text format)")
    p_solve.add_argument("source")
    p_solve.add_argument("target")
    p_solve.add_argument(
        "--budget",
        type=int,
        default=None,
        help="step budget for the exponential solver (NP-complete L)",
    )

    p_batch = sub.add_parser(
        "batch",
        help="run many queries against one graph via the plan-cached "
        "engine (repro.engine.QueryEngine)",
        description="Evaluate a file of RSPQs against one graph.  The "
        "graph is compiled to an indexed view once and query plans "
        "(regex -> DFA -> classification -> decomposition) are cached "
        "in an LRU, so repeated languages are planned only once.  Each "
        "query line reads 'source target regex' (the regex may contain "
        "spaces; '#' comments and blank lines are skipped).",
    )
    p_batch.add_argument("graph", help="path to a graph file (text format)")
    p_batch.add_argument(
        "queries", help="path to a queries file (source target regex)"
    )
    p_batch.add_argument(
        "--budget",
        type=int,
        default=None,
        help="step budget for queries dispatched to the exact solver",
    )
    p_batch.add_argument(
        "--plan-cache-size",
        type=int,
        default=128,
        help="LRU capacity of the query-plan cache (default 128)",
    )
    p_batch.add_argument(
        "--stats",
        action="store_true",
        help="print per-query solver steps and timings",
    )
    p_batch.add_argument(
        "--result-cache-size",
        type=int,
        default=1024,
        help="LRU capacity of the engine result cache (default 1024); "
        "repeated identical queries replay without re-solving",
    )
    p_batch.add_argument(
        "--no-result-cache",
        action="store_true",
        help="disable the engine result cache (every query re-solves)",
    )
    p_batch.add_argument(
        "--no-reach-index",
        action="store_true",
        help="disable the reachability index (no short-circuit of "
        "provably unreachable queries, no frontier pruning)",
    )
    p_batch.add_argument(
        "--workers",
        type=int,
        default=1,
        help="parallel workers for the batch (default 1 = serial); "
        "results are identical path-for-path for every worker count",
    )
    p_batch.add_argument(
        "--parallel-mode",
        choices=("thread", "process"),
        default="thread",
        help="scheduler for --workers > 1: 'thread' shares one plan "
        "cache (single-flight compiles), 'process' shards across "
        "worker processes for CPU scaling on GIL builds",
    )
    p_batch.add_argument(
        "--no-vectorize",
        action="store_true",
        help="disable vectorized batch execution (queries sharing one "
        "plan normally advance through a single multi-source product "
        "sweep; results are identical either way)",
    )
    p_batch.add_argument(
        "--group-min-size",
        type=int,
        default=2,
        help="smallest plan-key group worth a shared sweep (default "
        "2); smaller groups run per query",
    )
    p_batch.add_argument(
        "--portfolio",
        action="store_true",
        help="route exact-strategy (NP-hard) queries through the "
        "anytime solver portfolio: bounded-length probe, Monte-Carlo "
        "color coding, algebraic detection, exact fallback; negatives "
        "may be probabilistic (see the result 'confidence' field)",
    )
    p_batch.add_argument(
        "--max-path-edges",
        type=int,
        default=None,
        metavar="K",
        help="answer the bounded k-RSPQ variant: only simple paths of "
        "at most K edges count (the portfolio's FPT rungs shine here)",
    )
    p_batch.add_argument(
        "--portfolio-failure-probability",
        type=float,
        default=1e-3,
        metavar="DELTA",
        help="calibrated bound on a probabilistic NOT_FOUND being "
        "wrong (default 1e-3); smaller = more trials = slower",
    )
    p_batch.add_argument(
        "--portfolio-seed",
        type=int,
        default=0,
        help="base seed for the portfolio's randomized rungs "
        "(default 0); results are deterministic per seed",
    )
    p_batch.add_argument(
        "--jsonl",
        metavar="OUT",
        default=None,
        help="stream each query result as one JSON object per line to "
        "OUT; keys appear in the documented deterministic order "
        "(repro.service.protocol.RESULT_FIELDS): %s"
        % ", ".join(RESULT_FIELDS),
    )

    p_snapshot = sub.add_parser(
        "snapshot",
        help="compile a graph and persist the compiled view for "
        "warm-starts (repro.service.snapshot)",
        description="Compile GRAPH (text format) into an indexed view "
        "and write it to OUT as a versioned, checksummed snapshot.  "
        "'repro serve --snapshot name=OUT' then warm-starts from it "
        "without recompiling.",
    )
    p_snapshot.add_argument("graph", help="path to a graph file")
    p_snapshot.add_argument("out", help="path to write the snapshot to")

    p_serve = sub.add_parser(
        "serve",
        help="host registered graphs behind the JSON-over-HTTP query "
        "service (repro.service)",
        description="Start the long-lived multi-graph query service.  "
        "Graphs come from --graph name=path (text format, compiled at "
        "startup) and --snapshot name=path (warm-started from a "
        "compiled snapshot).  Endpoints: POST /query, POST /batch, "
        "POST /classify, POST /graphs, DELETE /graphs/<name>, GET "
        "/graphs, GET /stats, GET /healthz.",
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8080)
    p_serve.add_argument(
        "--graph",
        action="append",
        default=[],
        metavar="NAME=PATH",
        help="register a graph from a text-format file (repeatable)",
    )
    p_serve.add_argument(
        "--snapshot",
        action="append",
        default=[],
        metavar="NAME=PATH",
        help="register a graph from a compiled snapshot (repeatable)",
    )
    p_serve.add_argument(
        "--workers",
        type=int,
        default=4,
        help="solver threads; also the cap on per-request batch "
        "workers (default 4)",
    )
    p_serve.add_argument(
        "--worker-processes",
        type=int,
        default=0,
        metavar="N",
        help="pre-fork N query worker processes per graph, all "
        "attached to one shared read-only snapshot mapping — the "
        "multi-core serving path (default 0 = in-process threads "
        "only)",
    )
    p_serve.add_argument(
        "--parallel-mode",
        choices=("thread", "process"),
        default="thread",
        help="default scheduler for multi-worker /batch requests",
    )
    p_serve.add_argument(
        "--max-inflight",
        type=int,
        default=64,
        help="admission control: queries in flight beyond this are "
        "rejected immediately with 429 (default 64)",
    )
    p_serve.add_argument(
        "--deadline-seconds",
        type=float,
        default=None,
        help="default per-query wall-clock deadline (requests may "
        "override per query); unset = no deadline",
    )
    p_serve.add_argument(
        "--budget",
        type=int,
        default=None,
        help="default step budget for exact-strategy queries",
    )
    p_serve.add_argument(
        "--plan-cache-size",
        type=int,
        default=128,
        help="per-graph LRU plan cache capacity (default 128)",
    )
    p_serve.add_argument(
        "--result-cache-size",
        type=int,
        default=1024,
        help="per-graph LRU result cache capacity (default 1024); "
        "repeated identical queries are served from memory",
    )
    p_serve.add_argument(
        "--no-result-cache",
        action="store_true",
        help="disable the per-graph result cache",
    )
    p_serve.add_argument(
        "--no-reach-index",
        action="store_true",
        help="disable the reachability index (no short-circuit of "
        "provably unreachable queries, no frontier pruning)",
    )
    p_serve.add_argument(
        "--no-vectorize",
        action="store_true",
        help="disable vectorized /batch execution (per-request "
        "'vectorize' can still override)",
    )
    p_serve.add_argument(
        "--group-min-size",
        type=int,
        default=2,
        help="smallest plan-key group worth a shared sweep in /batch "
        "requests (default 2)",
    )
    p_serve.add_argument(
        "--portfolio",
        action="store_true",
        help="route exact-strategy queries through the anytime solver "
        "portfolio by default (per-request 'portfolio' can still "
        "override either way)",
    )
    p_serve.add_argument(
        "--portfolio-failure-probability",
        type=float,
        default=1e-3,
        metavar="DELTA",
        help="calibrated bound on a probabilistic NOT_FOUND being "
        "wrong (default 1e-3)",
    )
    p_serve.add_argument(
        "--portfolio-seed",
        type=int,
        default=0,
        help="base seed for the portfolio's randomized rungs (default 0)",
    )
    p_serve.add_argument(
        "--max-graphs",
        type=int,
        default=64,
        help="cap on simultaneously registered graphs — POST /graphs "
        "beyond it is rejected with 409 so unauthenticated "
        "registrations cannot grow memory unboundedly (default 64)",
    )
    p_serve.add_argument(
        "--shed-policy",
        choices=("flat", "deadline"),
        default="deadline",
        help="admission control: 'flat' is the hard in-flight cap "
        "only; 'deadline' (default) additionally sheds "
        "doomed-deadline work and, above --soft-inflight, "
        "cheap-to-retry requests first",
    )
    p_serve.add_argument(
        "--soft-inflight",
        type=int,
        default=None,
        metavar="N",
        help="pressure watermark for the deadline shed policy: above "
        "N in-flight queries, single-query (cheap-to-retry) requests "
        "are shed with 429 before the hard cap bites (default: off)",
    )
    p_serve.add_argument(
        "--breaker-threshold",
        type=int,
        default=5,
        metavar="N",
        help="consecutive worker-crash failures that open a graph's "
        "circuit breaker (default 5)",
    )
    p_serve.add_argument(
        "--breaker-cooldown",
        type=float,
        default=1.0,
        metavar="SECONDS",
        help="base cooldown before an open circuit admits a half-open "
        "probe; doubles per consecutive open (default 1.0)",
    )
    p_serve.add_argument(
        "--breaker-max-cooldown",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="cap on the breaker's exponential cooldown (default 30)",
    )
    p_serve.add_argument(
        "--watchdog-seconds",
        type=float,
        default=None,
        metavar="SECONDS",
        help="hard-kill a pool worker busy on one request for longer "
        "than this (reclaims wedged workers even for requests "
        "without deadlines; default: off)",
    )
    p_serve.add_argument(
        "--degrade-crash-threshold",
        type=int,
        default=3,
        metavar="N",
        help="worker-loss events per window that climb one "
        "degradation rung (default 3)",
    )
    p_serve.add_argument(
        "--degrade-recovery-seconds",
        type=float,
        default=5.0,
        metavar="SECONDS",
        help="quiet seconds before the service steps one degradation "
        "rung back down (default 5)",
    )
    p_serve.add_argument(
        "--drain-timeout",
        type=float,
        default=10.0,
        metavar="SECONDS",
        help="seconds SIGTERM/SIGINT shutdown waits for in-flight "
        "requests before closing worker pools (default 10)",
    )
    return parser


def _cmd_classify(args):
    lang = language(args.regex)
    result = classify(lang.dfa, with_witness=False)
    print("language   : %s" % args.regex)
    print("minimal DFA: %d states over {%s}" % (
        lang.num_states, ", ".join(sorted(lang.alphabet))))
    print("finite     : %s" % result.finite)
    print("in trC     : %s" % result.in_trc)
    print("RSPQ(L) is : %s" % result.complexity_class.value)
    return 0


def _cmd_witness(args):
    lang = language(args.regex)
    witness = find_hardness_witness(lang.dfa)
    if witness is None:
        print("L is in trC — RSPQ(L) is tractable, no hardness witness.")
        return 1
    print("Property-(1) witness (drives the Lemma 5 reduction):")
    for name, word in zip(
        ("wl", "w1", "wm", "w2", "wr"), witness.words()
    ):
        print("  %s = %r" % (name, word))
    return 0


def _cmd_psitr(args):
    lang = language(args.regex)
    expression = decompose(lang)
    print(expression)
    return 0


def _cmd_explain(args):
    from .engine import QueryPlan

    # Validate the argument combination before printing anything, so
    # a usage error never emits a half-report on stdout.
    if (args.source is None) != (args.target is None):
        raise ReproError(
            "--source and --target must be given together"
        )
    if args.source is not None and args.graph is None:
        raise ReproError(
            "--source/--target need --graph to resolve the vertices"
        )
    plan = QueryPlan.compile(args.regex)
    lang = plan.language
    classification = plan.classification
    if plan.decompose_failed:
        decompose_note = "FAILED — silent exact fallback"
    elif plan.strategy == STRATEGY_TRACTABLE:
        decompose_note = "ok (Ψtr anchored search)"
    else:
        decompose_note = "n/a for this strategy"
    print("language       : %s" % args.regex)
    print("minimal DFA    : %d states over {%s}" % (
        lang.num_states, ", ".join(sorted(lang.alphabet))))
    print("finite         : %s" % classification.finite)
    print("in trC         : %s" % classification.in_trc)
    print("RSPQ(L) is     : %s" % classification.complexity_class.value)
    print("strategy       : %s" % plan.strategy)
    print("decomposition  : %s" % decompose_note)
    if plan.portfolio is not None:
        ladder = plan.portfolio.describe()
        print(
            "portfolio      : %s (opt-in via engine portfolio=True or "
            "per-query override)" % " -> ".join(ladder["ladder"])
        )
        split = ladder["budget_split"]
        print(
            "  budget split : %s (share of remaining budget per rung)"
            % ", ".join(
                "%s=%.0f%%" % (name, split[name] * 100.0)
                for name in ladder["ladder"]
            )
        )
        print(
            "  calibration  : failure bound %g, color rung up to %d "
            "edges, algebraic rung up to %d edges"
            % (
                ladder["failure_probability"],
                ladder["color_max_edges"],
                ladder["algebraic_max_edges"],
            )
        )
    # The CLI always plans from a regex string, so the key is always
    # text-kinded (Language objects key by canonical DFA signature).
    print("plan key kind  : %s (plans cached by exact regex text)"
          % plan.key[0])
    print("label mask     : {%s} (symbols some word of L uses)"
          % ", ".join(sorted(plan.used_symbols)))
    if args.graph is not None:
        graph = graph_io.load(args.graph)
        engine = QueryEngine(graph)
        print(
            "graph view     : %s (IndexedGraph over %s: |V|=%d |E|=%d, "
            "label-partitioned CSR + reverse CSR)"
            % (
                engine.view_kind,
                args.graph,
                engine.graph.num_vertices,
                engine.graph.num_edges,
            )
        )
        view = engine.view
        index = view.reachability()
        usable = sorted(
            plan.used_symbols & set(engine.graph.labels())
        )
        print(
            "label coverage : %d/%d graph labels usable by L: {%s} "
            "(index: %d components, %d condensation edges)"
            % (
                len(usable),
                len(engine.graph.labels()),
                ", ".join(usable),
                index.num_comps,
                index.num_condensation_edges,
            )
        )
        if args.source is not None:
            # Text-format graphs only ever carry string vertex names,
            # so the raw arguments resolve directly (exactly like
            # `repro solve`); unknown names raise the usual GraphError.
            source = args.source
            target = args.target
            source_id = view.vertex_id(source)
            target_id = view.vertex_id(target)
            mask = view.label_mask(plan.used_symbols)
            if source_id != target_id and not index.can_reach(
                source_id, target_id, mask
            ):
                print(
                    "index verdict  : short_circuit: unreachable — %r "
                    "cannot reach %r under L's label mask; the engine "
                    "answers NOT_FOUND without running a solver"
                    % (source, target)
                )
            else:
                print(
                    "index verdict  : reachable under L's label mask — "
                    "the %s solver would run" % plan.strategy
                )
    else:
        print(
            "graph view     : csr (IndexedGraph) inside the engine/"
            "service; dict (DbGraph reference view) for direct "
            "solve_rspq"
        )
    print("plan compile   : %.6fs" % plan.compile_seconds)
    return 0


def _checked_budget(budget):
    """Map a non-positive --budget to a usage error, not a traceback."""
    if budget is not None and budget <= 0:
        raise ReproError(
            "--budget must be a positive step count, got %d" % budget
        )
    return budget


def _cmd_solve(args):
    _checked_budget(args.budget)
    lang = language(args.regex)
    graph = graph_io.load(args.graph)
    solver = RspqSolver(lang, exact_budget=args.budget)
    result = solver.solve(graph, args.source, args.target)
    print("strategy: %s" % result.strategy)
    if not result.found:
        print("no simple path labeled in L from %s to %s"
              % (args.source, args.target))
        return 1
    print("length  : %d" % result.length)
    print("word    : %s" % result.path.word)
    print("path    : %s" % " -> ".join(str(v) for v in result.path.vertices))
    return 0


def _parse_queries(path):
    """Parse a queries file into ``(regex, source, target)`` triples."""
    queries = []
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, raw_line in enumerate(handle, start=1):
            line = raw_line.strip()
            if not line or line.startswith("#"):
                continue
            fields = line.split(None, 2)
            if len(fields) != 3:
                raise ReproError(
                    "queries line %d: expected 'source target regex', "
                    "got %r" % (line_number, raw_line.rstrip("\n"))
                )
            source, target, regex = fields
            queries.append((regex, source, target))
    return queries


def _write_jsonl(path, results):
    """Stream one compact JSON object per result to ``path``.

    Keys appear in the documented order of
    :data:`repro.service.protocol.RESULT_FIELDS` — deterministic, so
    JSONL outputs of equal batches are byte-identical and diffable.
    """
    with open(path, "w", encoding="utf-8") as handle:
        for result in results:
            handle.write(json.dumps(result_record(result), default=str))
            handle.write("\n")


def _cmd_batch(args):
    if args.plan_cache_size < 1:
        raise ReproError(
            "--plan-cache-size must be >= 1, got %d" % args.plan_cache_size
        )
    if args.workers < 1:
        raise ReproError(
            "--workers must be >= 1, got %d" % args.workers
        )
    if args.result_cache_size < 1:
        raise ReproError(
            "--result-cache-size must be >= 1, got %d (use "
            "--no-result-cache to disable caching)" % args.result_cache_size
        )
    _checked_budget(args.budget)
    if args.group_min_size < 1:
        raise ReproError(
            "--group-min-size must be >= 1, got %d" % args.group_min_size
        )
    if args.max_path_edges is not None and args.max_path_edges < 0:
        raise ReproError(
            "--max-path-edges must be >= 0, got %d" % args.max_path_edges
        )
    if not 0.0 < args.portfolio_failure_probability < 1.0:
        raise ReproError(
            "--portfolio-failure-probability must be in (0, 1), got %r"
            % args.portfolio_failure_probability
        )
    graph = graph_io.load(args.graph)
    queries = _parse_queries(args.queries)
    engine = QueryEngine(
        graph,
        plan_cache_size=args.plan_cache_size,
        exact_budget=args.budget,
        result_cache=not args.no_result_cache,
        result_cache_size=args.result_cache_size,
        use_reach_index=not args.no_reach_index,
        vectorize=not args.no_vectorize,
        group_min_size=args.group_min_size,
        portfolio=args.portfolio,
        portfolio_failure_probability=args.portfolio_failure_probability,
        portfolio_seed=args.portfolio_seed,
    )
    batch = engine.run_batch(
        queries,
        workers=args.workers,
        mode=args.parallel_mode,
        max_path_edges=args.max_path_edges,
    )
    if args.jsonl:
        _write_jsonl(args.jsonl, batch.results)
    for result in batch.results:
        if result.error is not None:
            answer = "error: %s" % result.error
        elif result.found:
            answer = "length %d, word %s" % (result.length, result.path.word)
        elif result.failure_bound is not None:
            answer = (
                "no path (probabilistic, failure bound %g)"
                % result.failure_bound
            )
        else:
            answer = "no path"
        flag = "  [warning: decompose failed, exact fallback]" if (
            result.decompose_failed
        ) else ""
        print(
            "[%s] %s -> %s under %s: %s%s"
            % (
                result.strategy,
                result.source,
                result.target,
                result.language,
                answer,
                flag,
            )
        )
        if args.stats:
            print(
                "    steps=%s plan_cache_hit=%s vectorized=%s time=%.6fs"
                % (
                    result.stats.steps,
                    result.stats.plan_cache_hit,
                    result.stats.vectorized,
                    result.stats.seconds,
                )
            )
    print(batch.summary())
    if batch.error_count:
        return 2
    return 0 if batch.found_count == len(queries) else 1


def _cmd_snapshot(args):
    from .engine import IndexedGraph
    from .service.snapshot import save_snapshot

    graph = graph_io.load(args.graph)
    indexed = IndexedGraph(graph)
    size = save_snapshot(indexed, args.out)
    print(
        "snapshot %s: |V|=%d |E|=%d, %d bytes"
        % (args.out, indexed.num_vertices, indexed.num_edges, size)
    )
    return 0


def _parse_named_paths(pairs, option):
    """``NAME=PATH`` pairs from a repeatable option."""
    parsed = []
    for pair in pairs:
        name, sep, path = pair.partition("=")
        if not sep or not name or not path:
            raise ReproError(
                "%s expects NAME=PATH, got %r" % (option, pair)
            )
        parsed.append((name, path))
    return parsed


def _cmd_serve(args):
    import asyncio

    from .service import GraphRegistry, QueryService, ServiceConfig
    from .service import faults

    try:
        # Dormant unless REPRO_FAULTS carries a JSON fault spec; the
        # chaos harness uses this to inject faults into a real
        # `repro serve` process without touching its code paths.
        faults.install_from_env()
    except ValueError as err:
        raise ReproError(str(err)) from err

    graphs = _parse_named_paths(args.graph, "--graph")
    snapshots = _parse_named_paths(args.snapshot, "--snapshot")
    if not graphs and not snapshots:
        raise ReproError(
            "serve needs at least one --graph NAME=PATH or "
            "--snapshot NAME=PATH"
        )
    if args.plan_cache_size < 1:
        raise ReproError(
            "--plan-cache-size must be >= 1, got %d" % args.plan_cache_size
        )
    _checked_budget(args.budget)
    if args.deadline_seconds is not None and args.deadline_seconds <= 0:
        raise ReproError(
            "--deadline-seconds must be positive, got %r"
            % args.deadline_seconds
        )
    if args.max_graphs < 1:
        raise ReproError(
            "--max-graphs must be >= 1, got %d" % args.max_graphs
        )
    if args.result_cache_size < 1:
        raise ReproError(
            "--result-cache-size must be >= 1, got %d (use "
            "--no-result-cache to disable caching)" % args.result_cache_size
        )
    if args.group_min_size < 1:
        raise ReproError(
            "--group-min-size must be >= 1, got %d" % args.group_min_size
        )
    if not 0.0 < args.portfolio_failure_probability < 1.0:
        raise ReproError(
            "--portfolio-failure-probability must be in (0, 1), got %r"
            % args.portfolio_failure_probability
        )
    if args.worker_processes < 0:
        raise ReproError(
            "--worker-processes must be >= 0, got %d"
            % args.worker_processes
        )
    if args.watchdog_seconds is not None and args.watchdog_seconds <= 0:
        raise ReproError(
            "--watchdog-seconds must be positive, got %r"
            % args.watchdog_seconds
        )
    pool_kwargs = {}
    if args.watchdog_seconds is not None:
        pool_kwargs["watchdog_seconds"] = args.watchdog_seconds
    registry = GraphRegistry(
        plan_cache_size=args.plan_cache_size,
        exact_budget=args.budget,
        deadline_seconds=args.deadline_seconds,
        max_graphs=args.max_graphs,
        result_cache=not args.no_result_cache,
        result_cache_size=args.result_cache_size,
        use_reach_index=not args.no_reach_index,
        vectorize=not args.no_vectorize,
        group_min_size=args.group_min_size,
        portfolio=args.portfolio,
        portfolio_failure_probability=args.portfolio_failure_probability,
        portfolio_seed=args.portfolio_seed,
        worker_processes=args.worker_processes,
        pool_kwargs=pool_kwargs,
    )
    try:
        for name, path in graphs:
            entry = registry.register(name, graph_io.load(path))
            print(
                "registered %s from %s (compiled in %.3fs)"
                % (name, path, entry.stats.prepare_seconds)
            )
        for name, path in snapshots:
            entry = registry.register_snapshot(name, path)
            print(
                "registered %s from snapshot %s (warm-started in %.3fs)"
                % (name, path, entry.stats.prepare_seconds)
            )
        try:
            config = ServiceConfig(
                workers=args.workers,
                parallel_mode=args.parallel_mode,
                max_inflight=args.max_inflight,
                shed_policy=args.shed_policy,
                soft_inflight=args.soft_inflight,
                breaker_threshold=args.breaker_threshold,
                breaker_cooldown=args.breaker_cooldown,
                breaker_max_cooldown=args.breaker_max_cooldown,
                degrade_crash_threshold=args.degrade_crash_threshold,
                degrade_recovery_seconds=args.degrade_recovery_seconds,
                drain_timeout=args.drain_timeout,
            )
        except ValueError as err:
            raise ReproError(str(err)) from err
        service = QueryService(registry, config)
        pool_note = (
            ", worker_processes=%d/graph" % args.worker_processes
            if args.worker_processes
            else ""
        )

        def announce(port):
            # Printed after bind so --port 0 reports the real port.
            print(
                "serving %d graph(s) on http://%s:%d (workers=%d, "
                "max_inflight=%d, shed_policy=%s%s)"
                % (len(registry), args.host, port, args.workers,
                   args.max_inflight, args.shed_policy, pool_note),
                flush=True,
            )

        try:
            # SIGTERM/SIGINT drain in-flight requests and close the
            # registry (worker pools, spool dirs) before exiting.
            asyncio.run(
                service.serve_until_interrupted(
                    args.host, args.port, ready=announce
                )
            )
        except KeyboardInterrupt:  # pragma: no cover - interactive only
            pass
        print("shut down cleanly", flush=True)
    finally:
        registry.close()
    return 0


_COMMANDS = {
    "classify": _cmd_classify,
    "witness": _cmd_witness,
    "psitr": _cmd_psitr,
    "explain": _cmd_explain,
    "solve": _cmd_solve,
    "batch": _cmd_batch,
    "snapshot": _cmd_snapshot,
    "serve": _cmd_serve,
}


def main(argv=None):
    """CLI entry point; returns the process exit status."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ReproError as err:
        print("error: %s" % err, file=sys.stderr)
        return 2
    except OSError as err:
        print("error: %s" % err, file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
