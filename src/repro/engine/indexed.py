"""Compiled, integer-indexed adjacency view of a db-graph.

:class:`IndexedGraph` takes one pass over a :class:`~repro.graphs.dbgraph.DbGraph`
and freezes it into dense structures tuned for the solvers' hot loops:

* vertices mapped to contiguous ints ``0..n-1`` in the same repr-sorted
  order that ``DbGraph.vertices()`` uses, so every solver that expands
  neighbours "in repr order" returns bit-identical paths on either view;
* per-vertex forward and reverse adjacency stored as pre-sorted tuples
  (``sorted_out_edges`` / ``in_edges`` become array reads, not
  sort-per-call);
* per-label CSR arrays (``indptr`` + flat target ids) for
  label-restricted traversals — the layout the color-coding exemplar
  uses to amortise graph preparation across many trials.

The view is a *snapshot*: it implements the read side of the ``DbGraph``
API (duck-typed — the solvers never notice the difference) and raises
:class:`~repro.errors.GraphError` on unknown vertices, but it does not
track later mutations of the source graph.  Compile once per graph,
reuse across every query; see :mod:`repro.engine` for when that pays.
"""

from __future__ import annotations

from array import array

from ..errors import GraphError
from ..graphs.dbgraph import DbGraph


class IndexedGraph:
    """Immutable compiled view of a db-graph (see module docstring)."""

    __slots__ = (
        "_vertex_of",
        "_id_of",
        "_labels",
        "_num_edges",
        "_out",
        "_in",
        "_out_pair_sets",
        "_label_indptr",
        "_label_targets",
        "_sorted_succ_by_label",
    )

    def __init__(self, graph):
        if isinstance(graph, IndexedGraph):
            raise GraphError("graph is already an IndexedGraph")
        # Contiguous ids in the graph's own deterministic vertex order.
        self._vertex_of = tuple(graph.vertices())
        self._id_of = {
            vertex: index for index, vertex in enumerate(self._vertex_of)
        }
        self._labels = frozenset(graph.labels())
        self._num_edges = graph.num_edges
        n = len(self._vertex_of)

        # Forward adjacency: pre-sorted (label, target) tuples per id,
        # in exactly the repr order the solvers would sort into.
        sorted_out = getattr(graph, "sorted_out_edges", None)
        if sorted_out is None:  # any duck-typed graph
            def sorted_out(vertex, _graph=graph):
                return sorted(_graph.out_edges(vertex), key=repr)
        self._out = tuple(
            tuple(sorted_out(vertex)) for vertex in self._vertex_of
        )
        self._out_pair_sets = tuple(frozenset(pairs) for pairs in self._out)

        # Reverse adjacency, same discipline.
        self._in = tuple(
            tuple(sorted(graph.in_edges(vertex), key=repr))
            for vertex in self._vertex_of
        )

        # Per-label CSR: label -> (indptr, flat target ids), built in a
        # single pass over the adjacency (O(V·|Σ| + E), not a rescan of
        # every edge per label).  Slices are already sorted because the
        # forward adjacency is.
        self._label_indptr = {
            label: array("l", [0]) for label in self._labels
        }
        self._label_targets = {label: array("l") for label in self._labels}
        for source_id in range(n):
            for edge_label, target in self._out[source_id]:
                self._label_targets[edge_label].append(self._id_of[target])
            for label in self._labels:
                self._label_indptr[label].append(
                    len(self._label_targets[label])
                )

        # (vertex, label) -> sorted target tuple, filled lazily from the
        # CSR slices on first use.
        self._sorted_succ_by_label = {}

    @classmethod
    def _from_parts(cls, vertex_of, labels, num_edges, out, in_,
                    label_indptr, label_targets):
        """Rebuild a compiled view directly from its frozen parts.

        Used by :mod:`repro.service.snapshot` to warm-start from disk
        without re-sorting anything: the caller guarantees the parts
        came from a previously compiled :class:`IndexedGraph`, so the
        adjacency order is already the canonical repr order.
        """
        self = object.__new__(cls)
        self._vertex_of = tuple(vertex_of)
        self._id_of = {
            vertex: index for index, vertex in enumerate(self._vertex_of)
        }
        self._labels = frozenset(labels)
        self._num_edges = num_edges
        self._out = tuple(out)
        # Materialised lazily (see _pair_sets): a warm start should pay
        # for membership structures only if has_edge is actually used.
        self._out_pair_sets = None
        self._in = tuple(in_)
        self._label_indptr = dict(label_indptr)
        self._label_targets = dict(label_targets)
        self._sorted_succ_by_label = {}
        return self

    # -- id mapping -------------------------------------------------------------

    def vertex_id(self, vertex):
        """The contiguous int id of ``vertex``."""
        try:
            return self._id_of[vertex]
        except KeyError:
            raise GraphError("unknown vertex %r" % (vertex,))

    def vertex_at(self, index):
        """The vertex carrying id ``index``."""
        return self._vertex_of[index]

    def out_neighbor_ids(self, vertex_id, label):
        """CSR slice of ``label``-successors of ``vertex_id`` (ids)."""
        indptr = self._label_indptr.get(label)
        if indptr is None:
            return ()
        targets = self._label_targets[label]
        return targets[indptr[vertex_id]:indptr[vertex_id + 1]]

    # -- DbGraph read API (duck-typed) ----------------------------------------------

    @property
    def num_vertices(self):
        return len(self._vertex_of)

    @property
    def num_edges(self):
        return self._num_edges

    def vertices(self):
        """Iterator over all vertices in id (= repr) order."""
        return iter(self._vertex_of)

    def labels(self):
        return self._labels

    def has_vertex(self, vertex):
        return vertex in self._id_of

    def require_vertex(self, vertex):
        if vertex not in self._id_of:
            raise GraphError("unknown vertex %r" % (vertex,))

    def _pair_sets(self):
        """Per-vertex ``(label, target)`` membership sets (lazy thaw)."""
        if self._out_pair_sets is None:
            self._out_pair_sets = tuple(map(frozenset, self._out))
        return self._out_pair_sets

    def has_edge(self, source, label, target):
        source_id = self._id_of.get(source)
        if source_id is None:
            return False
        return (label, target) in self._pair_sets()[source_id]

    def out_edges(self, vertex):
        """Iterator of ``(label, target)`` pairs (pre-sorted)."""
        return iter(self._out[self.vertex_id(vertex)])

    def in_edges(self, vertex):
        """Iterator of ``(label, source)`` pairs (pre-sorted)."""
        return iter(self._in[self.vertex_id(vertex)])

    def sorted_out_edges(self, vertex):
        """``(label, target)`` pairs in repr order — O(1), precompiled."""
        return self._out[self.vertex_id(vertex)]

    def sorted_successors(self, vertex, label):
        """``label``-successors in repr order — cached CSR read."""
        key = (vertex, label)
        targets = self._sorted_succ_by_label.get(key)
        if targets is None:
            targets = tuple(
                self._vertex_of[target_id]
                for target_id in self.out_neighbor_ids(
                    self.vertex_id(vertex), label
                )
            )
            self._sorted_succ_by_label[key] = targets
        return targets

    def successors(self, vertex, label=None):
        if label is None:
            return {
                target for _label, target in self._out[self.vertex_id(vertex)]
            }
        return set(self.sorted_successors(vertex, label))

    def predecessors(self, vertex, label=None):
        pairs = self._in[self.vertex_id(vertex)]
        if label is None:
            return {source for _label, source in pairs}
        return {
            source for edge_label, source in pairs if edge_label == label
        }

    def edges(self):
        """Iterator over all ``(source, label, target)`` triples."""
        for source_id, source in enumerate(self._vertex_of):
            for label, target in self._out[source_id]:
                yield source, label, target

    def out_degree(self, vertex):
        return len(self._out[self.vertex_id(vertex)])

    def in_degree(self, vertex):
        return len(self._in[self.vertex_id(vertex)])

    def is_path(self, path):
        """Check a ``Path`` is edge-consistent with this graph."""
        for source, label, target in path.steps():
            if not self.has_edge(source, label, target):
                return False
        return True

    def reachable_within(self, start, allowed_labels=None, forbidden=()):
        """Same contract as :meth:`DbGraph.reachable_within`."""
        start_id = self.vertex_id(start)
        blocked = set(forbidden)
        if start in blocked:
            return set()
        seen = {start}
        stack = [start_id]
        seen_ids = {start_id}
        while stack:
            vertex_id = stack.pop()
            for label, target in self._out[vertex_id]:
                if allowed_labels is not None and label not in allowed_labels:
                    continue
                target_id = self._id_of[target]
                if target in blocked or target_id in seen_ids:
                    continue
                seen_ids.add(target_id)
                seen.add(target)
                stack.append(target_id)
        return seen

    # -- conversion -----------------------------------------------------------------

    def to_dbgraph(self):
        """Thaw back into a mutable :class:`DbGraph`."""
        result = DbGraph()
        for vertex in self._vertex_of:
            result.add_vertex(vertex)
        for source, label, target in self.edges():
            result.add_edge(source, label, target)
        return result

    def __repr__(self):
        return "IndexedGraph(|V|=%d, |E|=%d, Σ=%s)" % (
            self.num_vertices,
            self.num_edges,
            "".join(sorted(self._labels)),
        )
