"""Compiled, integer-indexed adjacency view of a db-graph.

:class:`IndexedGraph` takes one pass over a :class:`~repro.graphs.dbgraph.DbGraph`
and freezes it into dense structures tuned for the solvers' hot loops:

* vertices mapped to contiguous ints ``0..n-1`` in the same repr-sorted
  order that ``DbGraph.vertices()`` uses, so every solver that expands
  neighbours "in repr order" returns bit-identical paths on either view;
* per-vertex forward and reverse adjacency stored as pre-sorted tuples
  (``sorted_out_edges`` / ``in_edges`` become array reads, not
  sort-per-call);
* per-label CSR arrays (``indptr`` + flat target ids) for
  label-restricted traversals — the layout the color-coding exemplar
  uses to amortise graph preparation across many trials.

The view is a *snapshot*: it implements the read side of the ``DbGraph``
API (duck-typed — the solvers never notice the difference) and raises
:class:`~repro.errors.GraphError` on unknown vertices, but it does not
track later mutations of the source graph.  Compile once per graph,
reuse across every query; see :mod:`repro.engine` for when that pays.
"""

from __future__ import annotations

from array import array
from typing import TYPE_CHECKING, Any, Iterable, Iterator

from ..errors import GraphError
from ..graphs.dbgraph import DbGraph
from ..graphs.reach import ReachabilityIndex, condense
from ..graphs.view import GraphView

if TYPE_CHECKING:
    from ..graphs.dbgraph import Path
    from ..graphs.reach import ReachabilityIndex as _ReachabilityIndex


def _transpose_label_csr(num_vertices, label_indptr, label_targets):
    """Reverse (label-partitioned) CSR from the forward per-label CSR.

    For each label, slice ``i`` of the result lists the *sources* of
    ``label``-edges into vertex ``i``, in ascending source-id order
    (sources are visited ascending, so each slice comes out sorted).
    One counting pass per label — O(V·|Σ| + E) total, the same cost
    class as the forward build.
    """
    rev_indptr = {}
    rev_sources = {}
    for label, targets in label_targets.items():
        indptr = label_indptr[label]
        counts = [0] * (num_vertices + 1)
        for target_id in targets:
            counts[target_id + 1] += 1
        for index in range(num_vertices):
            counts[index + 1] += counts[index]
        sources = [0] * len(targets)
        cursor = counts[:-1]
        for source_id in range(num_vertices):
            for position in range(indptr[source_id], indptr[source_id + 1]):
                target_id = targets[position]
                sources[cursor[target_id]] = source_id
                cursor[target_id] += 1
        rev_indptr[label] = array("l", counts)
        rev_sources[label] = array("l", sources)
    return rev_indptr, rev_sources


class CsrView(GraphView):
    """Frozen CSR :class:`~repro.graphs.view.GraphView` (see graphs.view).

    Everything the solver hot loops read is precompiled: per-vertex
    ``(label_id, target_id)`` pairs in the canonical repr order,
    per-label forward CSR slices for label-partitioned successor
    iteration, and the label-partitioned reverse CSR for backward
    product searches (``ExactSolver._goal_distances``).  Built once
    per compiled graph via :meth:`IndexedGraph.view`.
    """

    kind = "csr"

    def __init__(self, graph: "IndexedGraph") -> None:
        self.graph = graph
        self._vertex_of = graph._vertex_of
        self._id_of = graph._id_of
        self._label_of = tuple(sorted(graph._labels))
        self._label_ids = {
            label: index for index, label in enumerate(self._label_of)
        }
        self._build_pairs(graph)
        self._fwd = [
            (graph._label_indptr[label], graph._label_targets[label])
            for label in self._label_of
        ]
        self._rev = [
            (graph._rev_label_indptr[label], graph._rev_label_sources[label])
            for label in self._label_of
        ]
        # (vertex_id, label_id) -> tuple memo over the CSR slices, so a
        # hot (vertex, label) pair costs one dict hit instead of a new
        # array slice object per read.  Empty slices are answered with
        # a shared () and never cached, so the memo is bounded by the
        # number of (vertex, label) pairs that actually carry edges —
        # O(E) per direction, not O(|V|·|Σ|).
        self._succ_memo: dict[int, tuple[int, ...]] = {}
        self._pred_memo: dict[int, tuple[int, ...]] = {}

    def _build_pairs(self, graph: "IndexedGraph") -> None:
        """Precompile the per-vertex ``(label_id, other_id)`` tuples.

        Overridden by the snapshot attach view
        (:class:`repro.service.snapshot.AttachedCsrView`), which reads
        the pairs lazily off the mmapped adjacency arrays instead of
        materialising every tuple up front.
        """
        label_ids = self._label_ids
        id_of = self._id_of
        self._out_pairs = [
            tuple((label_ids[label], id_of[target]) for label, target in pairs)
            for pairs in graph._out
        ]
        self._in_id_pairs = [
            tuple((label_ids[label], id_of[source]) for label, source in pairs)
            for pairs in graph._in
        ]

    def _build_reachability(self):
        """Index from the graph's (possibly snapshot-thawed) parts."""
        comp_of, num_comps, label_edges = self.graph.reach_parts()
        return ReachabilityIndex(
            comp_of, num_comps, label_edges, num_labels=self.num_labels
        )

    def out(self, vertex_id: int) -> tuple[tuple[int, int], ...]:
        """``(label_id, target_id)`` pairs in repr order — precompiled."""
        return self._out_pairs[vertex_id]

    def out_csr(
        self, label_id: int
    ) -> tuple["array[int]", "array[int]"]:
        """Bulk successors-by-label: the frozen ``(indptr, targets)`` pair.

        The raw per-label CSR arrays (see
        :meth:`~repro.graphs.view.GraphView.out_csr`) — the vectorized
        batch sweep reads whole label partitions off these instead of
        slicing per vertex through :meth:`out_by_label`.
        """
        return self._fwd[label_id]

    # invariant: hot-loop
    def out_by_label(
        self, vertex_id: int, label_id: int | None
    ) -> tuple[int, ...]:
        """``label_id``-successors (ascending ids) — memoised CSR slice."""
        if label_id is None:
            return ()
        key = vertex_id * len(self._fwd) + label_id
        cached = self._succ_memo.get(key)
        if cached is None:
            indptr, targets = self._fwd[label_id]
            start = indptr[vertex_id]
            stop = indptr[vertex_id + 1]
            if start == stop:
                return ()
            cached = tuple(targets[start:stop])
            self._succ_memo[key] = cached
        return cached

    def in_pairs(self, vertex_id: int) -> tuple[tuple[int, int], ...]:
        """``(label_id, source_id)`` pairs — precompiled."""
        return self._in_id_pairs[vertex_id]

    # invariant: hot-loop
    def in_by_label(
        self, vertex_id: int, label_id: int | None
    ) -> tuple[int, ...]:
        """``label_id``-predecessors — memoised reverse-CSR slice."""
        if label_id is None:
            return ()
        key = vertex_id * len(self._rev) + label_id
        cached = self._pred_memo.get(key)
        if cached is None:
            indptr, sources = self._rev[label_id]
            start = indptr[vertex_id]
            stop = indptr[vertex_id + 1]
            if start == stop:
                return ()
            cached = tuple(sources[start:stop])
            self._pred_memo[key] = cached
        return cached

    def out_degree(self, vertex_id: int) -> int:
        return len(self._out_pairs[vertex_id])

    def __repr__(self):
        return "CsrView(|V|=%d, |Σ|=%d over %r)" % (
            self.num_vertices, self.num_labels, self.graph,
        )


class IndexedGraph:
    """Immutable compiled view of a db-graph (see module docstring)."""

    __slots__ = (
        "_vertex_of",
        "_id_of",
        "_labels",
        "_num_edges",
        "_out",
        "_in",
        "_out_pair_sets",
        "_label_indptr",
        "_label_targets",
        "_rev_label_indptr",
        "_rev_label_sources",
        "_sorted_succ_by_label",
        "_reach_parts",
        "_view",
        # Snapshot provenance: set by repro.service.snapshot when the
        # graph was saved to / loaded from / attached to a snapshot
        # file.  A path + stored-CRC pair lets pickling ship the path
        # instead of the arrays (workers re-attach the shared mapping).
        "_snapshot_path",
        "_snapshot_crc",
        # Attach-mode storage (AttachedGraph): the open mmap keeping
        # every buffer alive, and the raw name -> memoryview dict.
        "_mapping",
        "_raw",
        # Needed so the snapshot module can hold weak references to
        # saved graphs (condensation reuse across save/load).
        "__weakref__",
    )

    def __init__(self, graph: Any) -> None:
        if isinstance(graph, IndexedGraph):
            raise GraphError("graph is already an IndexedGraph")
        # Contiguous ids in the graph's own deterministic vertex order.
        self._vertex_of = tuple(graph.vertices())
        self._id_of = {
            vertex: index for index, vertex in enumerate(self._vertex_of)
        }
        self._labels = frozenset(graph.labels())
        self._num_edges = graph.num_edges
        n = len(self._vertex_of)

        # Forward adjacency: pre-sorted (label, target) tuples per id,
        # in exactly the repr order the solvers would sort into.
        sorted_out = getattr(graph, "sorted_out_edges", None)
        if sorted_out is None:  # any duck-typed graph
            def _sorted_out_fallback(vertex, _graph=graph):
                return sorted(_graph.out_edges(vertex), key=repr)

            sorted_out = _sorted_out_fallback
        self._out = tuple(
            tuple(sorted_out(vertex)) for vertex in self._vertex_of
        )
        self._out_pair_sets = tuple(frozenset(pairs) for pairs in self._out)

        # Reverse adjacency, same discipline.
        self._in = tuple(
            tuple(sorted(graph.in_edges(vertex), key=repr))
            for vertex in self._vertex_of
        )

        # Per-label CSR: label -> (indptr, flat target ids), built in a
        # single pass over the adjacency (O(V·|Σ| + E), not a rescan of
        # every edge per label).  Slices are already sorted because the
        # forward adjacency is.
        self._label_indptr = {
            label: array("l", [0]) for label in self._labels
        }
        self._label_targets = {label: array("l") for label in self._labels}
        for source_id in range(n):
            for edge_label, target in self._out[source_id]:
                self._label_targets[edge_label].append(self._id_of[target])
            for label in self._labels:
                self._label_indptr[label].append(
                    len(self._label_targets[label])
                )

        # Label-partitioned reverse CSR, built once at compile time so
        # backward product searches (goal-distance BFS) read array
        # slices instead of rescanning in-edge sets.
        self._rev_label_indptr, self._rev_label_sources = (
            _transpose_label_csr(n, self._label_indptr, self._label_targets)
        )

        # (vertex, label) -> sorted target tuple, filled lazily from the
        # CSR slices on first use.
        self._sorted_succ_by_label: dict[tuple, tuple] = {}
        # SCC condensation + per-label condensation edges, computed on
        # first use (reach_parts) and persisted by snapshot format v3.
        self._reach_parts: Any = None
        self._view: Any = None
        self._snapshot_path: Any = None
        self._snapshot_crc: Any = None
        self._mapping: Any = None
        self._raw: Any = None

    @classmethod
    def _from_parts(cls, vertex_of, labels, num_edges, out, in_,
                    label_indptr, label_targets,
                    rev_label_indptr=None, rev_label_sources=None,
                    reach_parts=None):
        """Rebuild a compiled view directly from its frozen parts.

        Used by :mod:`repro.service.snapshot` to warm-start from disk
        without re-sorting anything: the caller guarantees the parts
        came from a previously compiled :class:`IndexedGraph`, so the
        adjacency order is already the canonical repr order.
        """
        self = object.__new__(cls)
        self._vertex_of = tuple(vertex_of)
        self._id_of = {
            vertex: index for index, vertex in enumerate(self._vertex_of)
        }
        self._labels = frozenset(labels)
        self._num_edges = num_edges
        self._out = tuple(out)
        # Materialised lazily (see _pair_sets): a warm start should pay
        # for membership structures only if has_edge is actually used.
        self._out_pair_sets = None
        self._in = tuple(in_)
        self._label_indptr = dict(label_indptr)
        self._label_targets = dict(label_targets)
        if rev_label_indptr is None or rev_label_sources is None:
            # Pre-reverse-CSR snapshot (format v1): rebuild the reverse
            # index in memory from the forward arrays.
            rev_label_indptr, rev_label_sources = _transpose_label_csr(
                len(self._vertex_of), self._label_indptr,
                self._label_targets,
            )
        self._rev_label_indptr = dict(rev_label_indptr)
        self._rev_label_sources = dict(rev_label_sources)
        self._sorted_succ_by_label = {}
        # A pre-index snapshot (format < 3) carries no reach section;
        # the condensation is then rebuilt in memory on first use.
        self._reach_parts = reach_parts
        self._view = None
        self._snapshot_path = None
        self._snapshot_crc = None
        self._mapping = None
        self._raw = None
        return self

    # -- pickling (process-mode batch workers) -----------------------------------

    #: Slots never pickled: rebuilt on demand (the view and the lazy
    #: membership sets) or process-local by nature (the mmap and the
    #: raw buffer views into it).
    _UNPICKLED_SLOTS = (
        "_view", "_out_pair_sets", "_mapping", "_raw", "__weakref__",
    )

    def __reduce_ex__(self, protocol):
        # Snapshot-backed graphs ship their *path*, not their arrays:
        # each process worker attaches to the shared, page-cached
        # mapping instead of unpickling a private copy of every CSR
        # array.  Falls back to full-state pickling when the file on
        # disk no longer matches (deleted or replaced since the save).
        if self._snapshot_path is not None:
            from ..service.snapshot import attach_spec

            spec = attach_spec(self)
            if spec is not None:
                return spec
        return super().__reduce_ex__(protocol)

    def __getstate__(self):
        # The compiled view ships its frozen parts; the GraphView and
        # the lazy membership sets are rebuilt on demand in the worker.
        state = {
            slot: getattr(self, slot)
            for slot in IndexedGraph.__slots__
            if slot not in self._UNPICKLED_SLOTS
        }
        return state

    def __setstate__(self, state):
        for slot, value in state.items():
            setattr(self, slot, value)
        self._out_pair_sets = None
        self._view = None
        self._mapping = None
        self._raw = None

    # -- integer-native view ------------------------------------------------------

    def view(self) -> CsrView:
        """The frozen :class:`CsrView` over this graph (built once)."""
        if self._view is None:
            self._view = CsrView(self)
        return self._view

    #: Frozen graphs never mutate; the result cache keys on this.
    @property
    def generation(self) -> int:
        return 0

    # -- reachability index -------------------------------------------------------

    def reach_parts(self) -> tuple:
        """The SCC condensation parts ``(comp_of, num_comps, label_edges)``.

        Computed once per compiled graph (iterative Tarjan over the
        forward adjacency in canonical order) and cached; snapshot
        format v3 persists the result so a warm start thaws the index
        instead of re-condensing.
        """
        if self._reach_parts is None:
            # The CSR view's precompiled (label_id, target_id) pairs
            # are exactly the integer adjacency the condensation
            # walks; reuse them instead of re-mapping the string
            # adjacency (the view is built once per compiled graph
            # and every index consumer needs it anyway).  Going
            # through view.out (rather than the _out_pairs list)
            # keeps this correct for attach-mode views, which read
            # the pairs lazily off the mmapped arrays.
            self._reach_parts = condense(
                len(self._vertex_of), self.view().out
            )
        return self._reach_parts

    def reachability(self) -> "_ReachabilityIndex":
        """The shared :class:`ReachabilityIndex` (via the CSR view)."""
        return self.view().reachability()

    # -- id mapping -------------------------------------------------------------

    def vertex_id(self, vertex: Any) -> int:
        """The contiguous int id of ``vertex``."""
        try:
            return self._id_of[vertex]
        except KeyError:
            raise GraphError("unknown vertex %r" % (vertex,)) from None

    def vertex_at(self, index: int) -> Any:
        """The vertex carrying id ``index``."""
        return self._vertex_of[index]

    def out_neighbor_ids(self, vertex_id: int, label: str) -> Any:
        """CSR slice of ``label``-successors of ``vertex_id`` (ids)."""
        indptr = self._label_indptr.get(label)
        if indptr is None:
            return ()
        targets = self._label_targets[label]
        return targets[indptr[vertex_id]:indptr[vertex_id + 1]]

    # -- DbGraph read API (duck-typed) ----------------------------------------------

    @property
    def num_vertices(self) -> int:
        return len(self._vertex_of)

    @property
    def num_edges(self) -> int:
        return self._num_edges

    def vertices(self) -> Iterator[Any]:
        """Iterator over all vertices in id (= repr) order."""
        return iter(self._vertex_of)

    def labels(self) -> frozenset[str]:
        return self._labels

    def has_vertex(self, vertex: Any) -> bool:
        return vertex in self._id_of

    def require_vertex(self, vertex: Any) -> None:
        if vertex not in self._id_of:
            raise GraphError("unknown vertex %r" % (vertex,))

    def _pair_sets(self):
        """Per-vertex ``(label, target)`` membership sets (lazy thaw)."""
        if self._out_pair_sets is None:
            self._out_pair_sets = tuple(map(frozenset, self._out))
        return self._out_pair_sets

    def has_edge(self, source: Any, label: str, target: Any) -> bool:
        source_id = self._id_of.get(source)
        if source_id is None:
            return False
        return (label, target) in self._pair_sets()[source_id]

    def out_edges(self, vertex: Any) -> Iterator[tuple[str, Any]]:
        """Iterator of ``(label, target)`` pairs (pre-sorted)."""
        return iter(self._out[self.vertex_id(vertex)])

    def in_edges(self, vertex: Any) -> Iterator[tuple[str, Any]]:
        """Iterator of ``(label, source)`` pairs (pre-sorted)."""
        return iter(self._in[self.vertex_id(vertex)])

    def sorted_out_edges(self, vertex: Any) -> tuple[tuple[str, Any], ...]:
        """``(label, target)`` pairs in repr order — O(1), precompiled."""
        return self._out[self.vertex_id(vertex)]

    def sorted_successors(self, vertex: Any, label: str) -> tuple[Any, ...]:
        """``label``-successors in repr order — cached CSR read."""
        key = (vertex, label)
        targets = self._sorted_succ_by_label.get(key)
        if targets is None:
            targets = tuple(
                self._vertex_of[target_id]
                for target_id in self.out_neighbor_ids(
                    self.vertex_id(vertex), label
                )
            )
            self._sorted_succ_by_label[key] = targets
        return targets

    def successors(self, vertex: Any, label: str | None = None) -> set[Any]:
        if label is None:
            return {
                target for _label, target in self._out[self.vertex_id(vertex)]
            }
        return set(self.sorted_successors(vertex, label))

    def predecessors(
        self, vertex: Any, label: str | None = None
    ) -> set[Any]:
        pairs = self._in[self.vertex_id(vertex)]
        if label is None:
            return {source for _label, source in pairs}
        return {
            source for edge_label, source in pairs if edge_label == label
        }

    def edges(self) -> Iterator[tuple[Any, str, Any]]:
        """Iterator over all ``(source, label, target)`` triples."""
        for source_id, source in enumerate(self._vertex_of):
            for label, target in self._out[source_id]:
                yield source, label, target

    def out_degree(self, vertex: Any) -> int:
        return len(self._out[self.vertex_id(vertex)])

    def in_degree(self, vertex: Any) -> int:
        return len(self._in[self.vertex_id(vertex)])

    def is_path(self, path: "Path") -> bool:
        """Check a ``Path`` is edge-consistent with this graph."""
        for source, label, target in path.steps():
            if not self.has_edge(source, label, target):
                return False
        return True

    # invariant: hot-loop
    def reachable_within(self, start: Any,
                         allowed_labels: Iterable[str] | None = None,
                         forbidden: Iterable[Any] = ()) -> set[Any]:
        """Same contract as :meth:`DbGraph.reachable_within`.

        When nothing restricts the walk (no forbidden vertices, and
        either no label filter or one covering every edge label), the
        answer is read off the reachability index — the condensation is
        *exact* for unrestricted reachability — instead of re-walking
        the CSR arrays per call.  Restricted queries (where the index's
        free intra-component movement would overapproximate) fall back
        to the original DFS.
        """
        start_id = self.vertex_id(start)
        blocked = set(forbidden)
        if start in blocked:
            return set()
        if not blocked and (
            allowed_labels is None or self._labels <= set(allowed_labels)
        ):
            index = self.reachability()
            comp_of = index.comp_of
            reachable = index.comps_from(start_id)
            return {
                vertex
                for vertex_id, vertex in enumerate(self._vertex_of)
                if reachable[comp_of[vertex_id]]
            }
        seen = {start}
        stack = [start_id]
        seen_ids = {start_id}
        while stack:
            vertex_id = stack.pop()
            for label, target in self._out[vertex_id]:
                if allowed_labels is not None and label not in allowed_labels:
                    continue
                target_id = self._id_of[target]
                if target in blocked or target_id in seen_ids:
                    continue
                seen_ids.add(target_id)
                seen.add(target)
                stack.append(target_id)
        return seen

    # -- conversion -----------------------------------------------------------------

    def to_dbgraph(self) -> DbGraph:
        """Thaw back into a mutable :class:`DbGraph`."""
        result = DbGraph()
        for vertex in self._vertex_of:
            result.add_vertex(vertex)
        for source, label, target in self.edges():
            result.add_edge(source, label, target)
        return result

    def __repr__(self):
        return "IndexedGraph(|V|=%d, |E|=%d, Σ=%s)" % (
            self.num_vertices,
            self.num_edges,
            "".join(sorted(self._labels)),
        )
