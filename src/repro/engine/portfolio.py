"""The hard-regime solver portfolio: a budget-aware anytime ladder.

Plans whose trichotomy classification lands on the exponential exact
strategy used to fall straight into backtracking search.  The
portfolio interposes a ladder of cheaper attacks, each consuming a
slice of the query's :class:`~repro.execution.ExecutionContext`
budget/deadline and escalating cleanly to the next rung:

1. **walk-probe** — a polynomial BFS over the product graph
   ``G × A_L`` ignoring simplicity.  No accepting walk within the
   query's length cap certifies NOT_FOUND (every simple path is a
   walk); a shortest accepting walk that happens to be simple *is* a
   shortest simple path and certifies FOUND.  Otherwise its length
   lower-bounds the answer and seeds the next rung.
2. **color-coding** — calibrated Monte-Carlo color coding
   (:class:`~repro.algorithms.color_coding.ColorCodingSolver`,
   Theorem 7) with iterative deepening from the walk lower bound.  A
   witness certifies FOUND; exhausting the trials at the query's full
   length cap yields a *probabilistic* negative with one-sided
   failure bound δ.
3. **algebraic** — witness-free multilinear detection
   (:class:`~repro.algorithms.algebraic.AlgebraicSolver`).  ``True``
   certifies a path exists (the exact rung then extracts the
   witness); ``False`` is an independent probabilistic negative that
   multiplies into the combined failure bound (independent draws).
4. **exact** — the authoritative backtracking search, given whatever
   budget remains.  If *it* runs out while a probabilistic negative
   is already in hand, the portfolio returns that negative instead of
   failing the query — the anytime contract.

Every outcome carries a ``confidence``: ``certified`` answers are
exact (witness paths, walk proofs, exact-rung results);
``probabilistic`` negatives carry their ``failure_bound``.  The
engine's result cache stores **only certified** outcomes — a
probabilistic NOT_FOUND must never be replayed as definitive.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Optional

from ..algorithms.algebraic import MAX_GROUP_RANK, AlgebraicSolver
from ..algorithms.color_coding import ColorCodingSolver
from ..algorithms.exact import ExactSolver
from ..core.product import transition_rows
from ..errors import BudgetExceededError, DeadlineExceededError
from ..execution import ExecutionContext
from ..graphs.dbgraph import Path
from ..graphs.view import GraphView, as_graph_view
from ..languages import Language
from ..languages.analysis import useful_symbols

#: An exact answer: a witness path, a walk proof, or the exact rung.
CONFIDENCE_CERTIFIED = "certified"

#: A randomized negative; ``failure_bound`` bounds its error.
CONFIDENCE_PROBABILISTIC = "probabilistic"

#: Largest path-edge count the color-coding rung attempts: the
#: colorset DP carries ``2^(k+1)`` states per (vertex, dfa-state) and
#: the calibrated trial count grows near-exponentially in k (roughly
#: 1.1k trials at k = 6, 2.9k at k = 7, 7.4k at k = 8 for δ = 1e-3).
COLOR_CODING_MAX_EDGES = 7

#: Largest path-edge count the algebraic rung attempts (group-algebra
#: vectors carry ``2^(k+1)`` field scalars; the hard ceiling is
#: :data:`~repro.algorithms.algebraic.MAX_GROUP_RANK` - 1).
ALGEBRAIC_MAX_EDGES = 9

#: Fraction of the *remaining* budget/deadline granted to each
#: escalating rung at its entry; the exact rung gets whatever is left.
DEFAULT_BUDGET_SPLIT = {"color-coding": 0.5, "algebraic": 0.4}

#: The ladder, in escalation order.
LADDER = ("walk-probe", "color-coding", "algebraic", "exact")


@dataclass(frozen=True)
class RungReport:
    """What one ladder rung did for one query."""

    name: str
    #: "found" / "proved-absent" / "no-witness" / "detected" /
    #: "skipped" / "exhausted".
    outcome: str
    steps: int
    seconds: float
    note: str = ""


@dataclass(frozen=True)
class PortfolioOutcome:
    """The portfolio's answer for one query."""

    found: bool
    path: Optional[Path]
    #: :data:`CONFIDENCE_CERTIFIED` or :data:`CONFIDENCE_PROBABILISTIC`.
    confidence: str
    #: Error bound of a probabilistic negative; None when certified.
    failure_bound: Optional[float]
    #: ``"portfolio:<rung>"`` — the rung that produced the answer.
    strategy: str
    rungs: tuple[RungReport, ...]


class PortfolioSolver:
    """The anytime strategy ladder for one hard-regime language.

    Immutable and shareable like every plan solver: per-query state
    lives in the :class:`~repro.execution.ExecutionContext` each call
    brings (rungs run on budget-capped child contexts folded back into
    it).

    Parameters
    ----------
    language:
        :class:`~repro.languages.Language` or regex string.
    seed / failure_probability:
        Root seed and per-rung one-sided error bound δ of the
        randomized rungs.  Negatives confirmed by *both* randomized
        rungs report the product bound δ² (the rungs draw independent
        streams).
    use_reach_pruning:
        Forwarded to every rung's solver (reach-index frontier
        pruning).
    exact_budget:
        Default step budget of the exact rung for context-less calls.
    color_max_edges / algebraic_max_edges:
        Per-rung caps on the bounded path length attempted; queries
        whose effective length cap exceeds a rung's cap skip it.
    budget_split:
        ``{rung_name: fraction}`` of the remaining allowance granted
        to the color-coding and algebraic rungs at their entry.
    """

    def __init__(self, language: "str | Language", seed: int = 0,
                 failure_probability: float = 1e-3,
                 use_reach_pruning: bool = True,
                 exact_budget: "int | None" = None,
                 color_max_edges: int = COLOR_CODING_MAX_EDGES,
                 algebraic_max_edges: int = ALGEBRAIC_MAX_EDGES,
                 budget_split: "dict[str, float] | None" = None) -> None:
        if isinstance(language, str):
            language = Language(language)
        if not 0.0 < failure_probability < 1.0:
            raise ValueError(
                "failure_probability must be in (0, 1), got %r"
                % (failure_probability,)
            )
        if algebraic_max_edges + 1 > MAX_GROUP_RANK:
            raise ValueError(
                "algebraic_max_edges must be <= %d (group rank cap), "
                "got %r" % (MAX_GROUP_RANK - 1, algebraic_max_edges)
            )
        self.language = language
        self.dfa = language.dfa
        self.seed = seed
        self.failure_probability = failure_probability
        self.color_max_edges = color_max_edges
        self.algebraic_max_edges = algebraic_max_edges
        split = dict(DEFAULT_BUDGET_SPLIT)
        if budget_split is not None:
            split.update(budget_split)
        for name, fraction in split.items():
            if not 0.0 < fraction <= 1.0:
                raise ValueError(
                    "budget_split[%r] must be in (0, 1], got %r"
                    % (name, fraction)
                )
        self.budget_split = split
        self.used_symbols = useful_symbols(self.dfa)
        self.color = ColorCodingSolver(
            language, seed=seed, failure_probability=failure_probability,
            use_reach_pruning=use_reach_pruning,
        )
        self.algebraic = AlgebraicSolver(
            language, seed=seed, failure_probability=failure_probability,
            use_reach_pruning=use_reach_pruning,
        )
        self.exact = ExactSolver(
            language, budget=exact_budget,
            use_reach_pruning=use_reach_pruning,
        )

    # -- introspection (``repro explain``) -----------------------------------------

    def describe(self) -> "dict[str, Any]":
        """JSON-safe ladder description for ``repro explain`` / ``/stats``."""
        return {
            "ladder": list(LADDER),
            "failure_probability": self.failure_probability,
            "seed": self.seed,
            "color_max_edges": self.color_max_edges,
            "algebraic_max_edges": self.algebraic_max_edges,
            "budget_split": self.budget_split_report(),
        }

    def budget_split_report(self) -> "dict[str, float]":
        """Per-rung share of a unit budget under the configured split.

        The walk probe charges the parent context directly (it is
        polynomial); each escalating rung takes its configured fraction
        of what remains, and the exact rung takes the rest.
        """
        remaining = 1.0
        shares: dict[str, float] = {"walk-probe": 0.0}
        for name in ("color-coding", "algebraic"):
            share = remaining * self.budget_split[name]
            shares[name] = round(share, 6)
            remaining -= share
        shares["exact"] = round(remaining, 6)
        return shares

    # -- the ladder ----------------------------------------------------------------

    def solve(self, graph: Any, source: Any, target: Any,
              ctx: "ExecutionContext | None" = None,
              max_path_edges: "int | None" = None) -> PortfolioOutcome:
        """Answer one hard-regime query through the ladder.

        ``max_path_edges`` turns the query into k-RSPQ ("a simple
        L-path with at most k edges") — the bounded regime Theorem 7
        addresses; ``None`` asks the classical unbounded question.
        Raises :class:`~repro.errors.BudgetExceededError` /
        :class:`~repro.errors.DeadlineExceededError` only when the
        allowance dies with *no* answer in hand (the anytime contract
        returns a probabilistic negative instead when one exists).
        """
        if max_path_edges is not None and max_path_edges < 0:
            raise ValueError(
                "max_path_edges must be >= 0 or None, got %r"
                % (max_path_edges,)
            )
        if ctx is None:
            ctx = ExecutionContext()
        view = as_graph_view(graph)
        source_id = view.vertex_id(source)
        target_id = view.vertex_id(target)
        rungs: list[RungReport] = []
        if source_id == target_id:
            # The only simple path from x to x is the empty path.
            found = self.dfa.initial in self.dfa.accepting
            path = Path.single(view.vertex_at(source_id)) if found else None
            rungs.append(RungReport(
                "walk-probe", "found" if found else "proved-absent",
                0, 0.0, "empty-path case",
            ))
            return self._certified(found, path, "walk-probe", rungs)
        # Any simple path the query admits has at most k_complete edges.
        k_complete = view.num_vertices - 1
        if max_path_edges is not None:
            k_complete = min(k_complete, max_path_edges)

        # Rung 1: walk probe (certified, polynomial, parent-charged).
        start = time.perf_counter()
        steps_before = ctx.steps
        walk = self._walk_probe(view, source_id, target_id, k_complete, ctx)
        probe_steps = ctx.steps - steps_before
        if walk is None:
            rungs.append(RungReport(
                "walk-probe", "proved-absent", probe_steps,
                time.perf_counter() - start,
                "no accepting walk within %d edges" % k_complete,
            ))
            return self._certified(False, None, "walk-probe", rungs)
        walk_vertices, walk_labels = walk
        walk_len = len(walk_labels)
        if len(set(walk_vertices)) == len(walk_vertices):
            rungs.append(RungReport(
                "walk-probe", "found", probe_steps,
                time.perf_counter() - start,
                "shortest accepting walk is simple",
            ))
            return self._certified(
                True, view.path(walk_vertices, walk_labels), "walk-probe",
                rungs,
            )
        rungs.append(RungReport(
            "walk-probe", "no-witness", probe_steps,
            time.perf_counter() - start,
            "walk lower bound %d edges" % walk_len,
        ))

        # Rung 2: calibrated Monte-Carlo color coding.
        negative_bound: float | None = None
        negative_rung: str | None = None
        witness = self._run_color_rung(
            view, source_id, target_id, walk_len, k_complete, ctx, rungs
        )
        if isinstance(witness, Path):
            return self._certified(True, witness, "color-coding", rungs)
        if witness == "complete":
            negative_bound = self.failure_probability
            negative_rung = "color-coding"

        # Rung 3: algebraic multilinear detection.
        detected = self._run_algebraic_rung(
            view, source_id, target_id, k_complete, ctx, rungs
        )
        if detected is True:
            # A certified existence proof refutes any probabilistic
            # negative in hand — it must not resurface if the exact
            # rung later exhausts while extracting the witness.
            negative_bound = None
            negative_rung = None
        if detected is False:
            bound = self.failure_probability
            if negative_bound is not None:
                # Independent streams: both rungs missing a real path
                # multiplies the one-sided error bounds.
                bound = negative_bound * bound
            negative_bound = bound
            negative_rung = "algebraic"
        if negative_bound is not None:
            return PortfolioOutcome(
                found=False,
                path=None,
                confidence=CONFIDENCE_PROBABILISTIC,
                failure_bound=negative_bound,
                strategy="portfolio:%s" % negative_rung,
                rungs=tuple(rungs),
            )

        # Rung 4: exact fallback (authoritative; witness extraction
        # when the algebraic rung certified existence).
        start = time.perf_counter()
        child = ctx.child()
        try:
            path = self.exact.shortest_simple_path(
                view, source, target, ctx=child
            )
        except (BudgetExceededError, DeadlineExceededError):
            ctx.absorb(child)
            rungs.append(RungReport(
                "exact", "exhausted", child.steps,
                time.perf_counter() - start,
            ))
            if negative_bound is not None:
                # Anytime: the randomized negative beats failing the
                # query outright.
                return PortfolioOutcome(
                    found=False,
                    path=None,
                    confidence=CONFIDENCE_PROBABILISTIC,
                    failure_bound=negative_bound,
                    strategy="portfolio:%s" % negative_rung,
                    rungs=tuple(rungs),
                )
            raise
        ctx.absorb(child)
        if path is not None and max_path_edges is not None and (
            len(path) > max_path_edges
        ):
            # The shortest simple path overshoots the bound, so no
            # bounded path exists — a certified negative.
            path = None
        rungs.append(RungReport(
            "exact", "found" if path is not None else "proved-absent",
            child.steps, time.perf_counter() - start,
        ))
        return self._certified(path is not None, path, "exact", rungs)

    # -- rungs ---------------------------------------------------------------------

    def _certified(self, found: bool, path: Optional[Path], rung: str,
                   rungs: "list[RungReport]") -> PortfolioOutcome:
        return PortfolioOutcome(
            found=found,
            path=path,
            confidence=CONFIDENCE_CERTIFIED,
            failure_bound=None,
            strategy="portfolio:%s" % rung,
            rungs=tuple(rungs),
        )

    def _slice(self, ctx: ExecutionContext,
               rung: str) -> ExecutionContext:
        """A child context carrying this rung's share of what remains."""
        fraction = self.budget_split[rung]
        remaining_budget = ctx.remaining_budget()
        budget = (
            None if remaining_budget is None
            else max(1, int(remaining_budget * fraction))
        )
        remaining_seconds = ctx.remaining_seconds()
        seconds = (
            None if remaining_seconds is None
            else remaining_seconds * fraction
        )
        return ctx.child(budget=budget, seconds=seconds)

    # invariant: hot-loop
    def _walk_probe(self, view: GraphView, source_id: int, target_id: int,
                    max_edges: int, ctx: ExecutionContext):
        """Shortest accepting walk with at most ``max_edges`` edges.

        Layered BFS over the product graph (simplicity ignored) with
        parent pointers.  ``None`` — no such walk — certifies that no
        simple path of the queried length exists either.
        """
        dfa = self.dfa
        num_states = dfa.num_states
        accepting = dfa.accepting
        rows = transition_rows(dfa, view)
        out = view.out
        start = source_id * num_states + dfa.initial
        parents: dict[int, "tuple[int, int] | None"] = {start: None}
        frontier = [start]
        goal = None
        depth = 0
        while frontier and goal is None and depth < max_edges:
            depth += 1
            next_frontier: list[int] = []
            for node in frontier:
                ctx.charge_step()
                vertex_id, state = divmod(node, num_states)
                for label_id, nxt in out(vertex_id):
                    row = rows[label_id]
                    if row is None:
                        continue
                    next_node = nxt * num_states + row[state]
                    if next_node in parents:
                        continue
                    parents[next_node] = (node, label_id)
                    if nxt == target_id and row[state] in accepting:
                        goal = next_node
                        break
                    next_frontier.append(next_node)
                if goal is not None:
                    break
            frontier = next_frontier
        if goal is None:
            return None
        vertex_ids = []
        label_ids = []
        node = goal
        while parents[node] is not None:
            parent, label_id = parents[node]
            vertex_ids.append(node // num_states)
            label_ids.append(label_id)
            node = parent
        vertex_ids.append(node // num_states)
        vertex_ids.reverse()
        label_ids.reverse()
        return tuple(vertex_ids), tuple(label_ids)

    def _run_color_rung(self, view: GraphView, source_id: int,
                        target_id: int, walk_len: int, k_complete: int,
                        ctx: ExecutionContext,
                        rungs: "list[RungReport]"):
        """Iterative-deepening color coding on a budget slice.

        Returns a witness :class:`Path`, ``"complete"`` (no witness
        and the final round covered ``k_complete`` — a probabilistic
        negative for the whole query), or ``None`` (no conclusion).
        """
        k_hi = min(k_complete, self.color_max_edges)
        if walk_len > k_hi:
            rungs.append(RungReport(
                "color-coding", "skipped", 0, 0.0,
                "walk lower bound %d exceeds rung cap %d"
                % (walk_len, k_hi),
            ))
            return None
        start = time.perf_counter()
        try:
            child = self._slice(ctx, "color-coding")
        except (BudgetExceededError, DeadlineExceededError):
            rungs.append(RungReport(
                "color-coding", "skipped", 0,
                time.perf_counter() - start, "no allowance left",
            ))
            return None
        source = view.vertex_at(source_id)
        target = view.vertex_at(target_id)
        # Deepening schedule: doubling from the walk lower bound, so a
        # short witness is found on cheap trial counts and only a true
        # negative pays for the full-depth round.
        depths = []
        k = max(1, walk_len)
        while k < k_hi:
            depths.append(k)
            k *= 2
        depths.append(k_hi)
        completed = False
        try:
            for k in depths:
                path = self.color.bounded_simple_path(
                    view, source, target, k, ctx=child
                )
                if path is not None:
                    ctx.absorb(child)
                    rungs.append(RungReport(
                        "color-coding", "found", child.steps,
                        time.perf_counter() - start,
                        "witness at depth %d" % k,
                    ))
                    return path
            completed = k_hi == k_complete
        except (BudgetExceededError, DeadlineExceededError):
            ctx.absorb(child)
            rungs.append(RungReport(
                "color-coding", "exhausted", child.steps,
                time.perf_counter() - start, "slice spent",
            ))
            return None
        ctx.absorb(child)
        rungs.append(RungReport(
            "color-coding",
            "no-witness" if completed else "skipped",
            child.steps,
            time.perf_counter() - start,
            (
                "all trials at depth %d negative" % k_hi
                if completed
                else "rung cap %d below query cap %d" % (k_hi, k_complete)
            ),
        ))
        return "complete" if completed else None

    def _run_algebraic_rung(self, view: GraphView, source_id: int,
                            target_id: int, k_complete: int,
                            ctx: ExecutionContext,
                            rungs: "list[RungReport]"):
        """Multilinear detection on a budget slice.

        Returns ``True`` (certified: a path exists — the exact rung
        must extract it), ``False`` (independent probabilistic
        negative), or ``None`` (no conclusion).
        """
        if k_complete > self.algebraic_max_edges:
            rungs.append(RungReport(
                "algebraic", "skipped", 0, 0.0,
                "query cap %d exceeds rung cap %d"
                % (k_complete, self.algebraic_max_edges),
            ))
            return None
        start = time.perf_counter()
        try:
            child = self._slice(ctx, "algebraic")
        except (BudgetExceededError, DeadlineExceededError):
            rungs.append(RungReport(
                "algebraic", "skipped", 0,
                time.perf_counter() - start, "no allowance left",
            ))
            return None
        source = view.vertex_at(source_id)
        target = view.vertex_at(target_id)
        try:
            detected = self.algebraic.exists(
                view, source, target, k_complete, ctx=child
            )
        except (BudgetExceededError, DeadlineExceededError):
            ctx.absorb(child)
            rungs.append(RungReport(
                "algebraic", "exhausted", child.steps,
                time.perf_counter() - start, "slice spent",
            ))
            return None
        ctx.absorb(child)
        rungs.append(RungReport(
            "algebraic", "detected" if detected else "no-witness",
            child.steps, time.perf_counter() - start,
        ))
        return detected
