"""Query plans and the LRU plan cache.

Planning an RSPQ is expensive relative to running one: a regex is
parsed, determinised, minimised, classified against the trichotomy and
(for trC languages) decomposed into a Ψtr expression before the first
graph vertex is ever touched.  A :class:`QueryPlan` freezes all of that
— the classification, the chosen strategy and a ready
:class:`~repro.core.solver.RspqSolver` — so repeated queries on the same
language skip straight to the search.

Plans are **immutable and shareable**: the frozen dataclass holds a
re-entrant solver whose per-query state lives in the
:class:`~repro.execution.ExecutionContext` each query brings along, so
one cached plan can serve any number of concurrent queries.

Plans are cached in :class:`PlanCache`, a small thread-safe LRU keyed
by :func:`plan_key`: regex strings key by their text (no re-parse on a
hit), :class:`~repro.languages.Language` objects by the canonical
signature of their minimal DFA (two different regexes for the same
language share a plan).
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict, deque
from dataclasses import dataclass
from typing import Any

from ..core.solver import STRATEGY_EXACT, RspqSolver
from ..languages import Language
from .portfolio import PortfolioSolver


def _canonical_dfa_signature(dfa):
    """Representation-independent signature of the language of ``dfa``.

    Minimisation pins the automaton up to one degree of freedom the raw
    transition table still leaks: the *dead-state representation*.  The
    same language completed over a larger alphabet grows a sink state
    and extra transitions into it, so ``Language("a*")`` and
    ``Language("a*", alphabet="ab")`` — one language, two minimal DFAs —
    would key differently and silently stop sharing a plan.

    The signature therefore normalises the dead part away: it is
    computed on the *live* states only (those that can still reach an
    accepting state), over the *live* symbols only (those carrying some
    live→live transition), with live states renumbered in BFS order
    from the initial state over the sorted live alphabet.  The live
    part is exactly the trim automaton of L, which determines the
    language — so equal signatures mean equal languages, and any two
    dead-state representations of one language collide on purpose.
    RSPQ evaluation is oblivious to the difference (a word using a dead
    symbol is not in L either way), so the shared plan answers both
    spellings identically.
    """
    delta = {}
    reverse = {}
    for state, symbol, target in dfa.transitions():
        delta[(state, symbol)] = target
        reverse.setdefault(target, []).append(state)
    # Live states: backward closure from the accepting set.
    live = set(dfa.accepting)
    stack = list(live)
    while stack:
        state = stack.pop()
        for previous in reverse.get(state, ()):
            if previous not in live:
                live.add(previous)
                stack.append(previous)
    if dfa.initial not in live:
        # The empty language: every representation shares one key.
        return ("dfa", 0, (), (), ())
    live_symbols = tuple(sorted({
        symbol
        for (state, symbol), target in delta.items()
        if state in live and target in live
    }))
    # Canonical renumbering: BFS from the initial state over the sorted
    # live alphabet, through live transitions only.
    order = {dfa.initial: 0}
    queue = deque((dfa.initial,))
    while queue:
        state = queue.popleft()
        for symbol in live_symbols:
            target = delta[(state, symbol)]
            if target in live and target not in order:
                order[target] = len(order)
                queue.append(target)
    transitions = tuple(
        (order[state], symbol, order[delta[(state, symbol)]])
        for state in sorted(order, key=order.get)
        for symbol in live_symbols
        if delta[(state, symbol)] in live
    )
    accepting = tuple(sorted(
        order[state] for state in dfa.accepting if state in order
    ))
    return ("dfa", len(order), live_symbols, accepting, transitions)


def plan_key(language: str | Language) -> tuple:
    """A hashable cache key for a regex string or ``Language``.

    Strings key by their exact text — the cheap path, no parsing.
    ``Language`` objects key by the canonical signature of their
    minimal DFA's *live part* (see :func:`_canonical_dfa_signature`),
    which is representation-independent: ``a*`` and ``(a*)*`` collide
    on purpose, and so do two minimal DFAs differing only in their
    dead-state/sink representation (e.g. the same language completed
    over a larger alphabet).
    """
    if isinstance(language, str):
        return ("regex", language)
    if isinstance(language, Language):
        return _canonical_dfa_signature(language.dfa)
    raise TypeError(
        "plan keys need a regex string or Language, got %r" % (language,)
    )


def group_by_plan(
    indexed_queries: "list[tuple[int, tuple]]",
) -> "tuple[dict[tuple, list[tuple[int, tuple]]], list[tuple[int, tuple]]]":
    """Partition indexed batch queries by plan key for vectorized runs.

    Takes ``(position, (language, source, target))`` pairs — positions
    are the batch slots results scatter back into, so shards re-group
    to exactly the groups the parent formed.  Returns
    ``(groups, ungroupable)``: ``groups`` maps each plan key to its
    members in first-occurrence order (dict insertion order preserves
    it), and ``ungroupable`` collects queries whose language has no
    plan key — those run per query, where :func:`plan_key` raises the
    same error at the query's own turn.  Grouping never touches the
    plan cache, so it leaves the cache counters exactly as serial
    execution would.
    """
    groups: dict[tuple, list[tuple[int, tuple]]] = {}
    ungroupable: list[tuple[int, tuple]] = []
    for position, query in indexed_queries:
        try:
            key = plan_key(query[0])
        except Exception:
            ungroupable.append((position, query))
            continue
        groups.setdefault(key, []).append((position, query))
    return groups, ungroupable


@dataclass(frozen=True)
class QueryPlan:
    """A compiled, immutable, shareable evaluation plan for one language."""

    key: Any
    solver: RspqSolver
    compile_seconds: float
    #: The hard-regime anytime ladder (:mod:`repro.engine.portfolio`),
    #: attached to exact-strategy plans only — the finite and
    #: tractable strategies are already polynomial, so they never
    #: escalate.  Immutable and shareable like :attr:`solver`.
    portfolio: PortfolioSolver | None = None

    @property
    def language(self) -> Language:
        return self.solver.language

    @property
    def strategy(self) -> str:
        return self.solver.strategy

    @property
    def classification(self) -> str:
        return self.solver.classification

    @property
    def decompose_failed(self) -> bool:
        return self.solver.decompose_failed

    @property
    def used_symbols(self) -> frozenset[str]:
        """Symbols some word of L uses — the query's label mask for the
        reachability index (anything else can never appear on an
        L-labeled path)."""
        return self.solver.used_symbols

    @classmethod
    def compile(cls, language: str | Language, key: Any = None,
                exact_budget: int | None = None,
                use_reach_pruning: bool = True,
                portfolio_config: "dict[str, Any] | None" = None,
                ) -> "QueryPlan":
        """Build a plan (regex → DFA → classification → solver) once.

        ``use_reach_pruning=False`` compiles solvers that ignore the
        reachability index entirely (the engine's ``use_reach_index``
        kill-switch, and the unpruned side of the differential suite).
        ``portfolio_config`` carries :class:`PortfolioSolver` keyword
        overrides (``seed``, ``failure_probability``, ...); the ladder
        itself is attached to every exact-strategy plan so callers can
        opt into it per query without recompiling.
        """
        if key is None:
            key = plan_key(language)
        start = time.perf_counter()
        solver = RspqSolver(
            language, exact_budget=exact_budget,
            use_reach_pruning=use_reach_pruning,
        )
        portfolio = None
        if solver.strategy == STRATEGY_EXACT:
            portfolio = PortfolioSolver(
                solver.language,
                exact_budget=exact_budget,
                use_reach_pruning=use_reach_pruning,
                **(portfolio_config or {}),
            )
        return cls(
            key=key,
            solver=solver,
            compile_seconds=time.perf_counter() - start,
            portfolio=portfolio,
        )

    def describe(self) -> str:
        """One-line human summary (used by the batch CLI)."""
        note = " (decompose failed — exact fallback)" if (
            self.decompose_failed
        ) else ""
        return "%s [%s]%s" % (
            self.language,
            self.strategy,
            note,
        )


@dataclass
class PlanCacheStats:
    """Counters for one :class:`PlanCache` lifetime.

    ``compiles`` counts plans inserted into the cache after a fresh
    compile — including plans whose query later failed (e.g. on an
    unknown vertex), which per-result accounting used to miss.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    compiles: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def snapshot(self) -> "PlanCacheStats":
        """An independent copy of the current counters."""
        return PlanCacheStats(
            hits=self.hits,
            misses=self.misses,
            evictions=self.evictions,
            compiles=self.compiles,
        )

    def since(self, earlier: "PlanCacheStats") -> "PlanCacheStats":
        """Counter deltas accumulated after the ``earlier`` snapshot."""
        return PlanCacheStats(
            hits=self.hits - earlier.hits,
            misses=self.misses - earlier.misses,
            evictions=self.evictions - earlier.evictions,
            compiles=self.compiles - earlier.compiles,
        )

    def __add__(self, other: object) -> "PlanCacheStats":
        if not isinstance(other, PlanCacheStats):
            return NotImplemented
        return PlanCacheStats(
            hits=self.hits + other.hits,
            misses=self.misses + other.misses,
            evictions=self.evictions + other.evictions,
            compiles=self.compiles + other.compiles,
        )


class PlanCache:
    """A bounded, thread-safe LRU mapping plan keys to :class:`QueryPlan`.

    Every operation holds an internal lock, so concurrent readers of a
    shared cache cannot corrupt the recency order; single-flight
    compilation (avoiding duplicate compiles under contention) is
    layered on top by :class:`~repro.engine.engine.QueryEngine`.
    """

    def __init__(self, capacity: int = 128) -> None:
        if capacity < 1:
            raise ValueError("plan cache capacity must be >= 1")
        self.capacity = capacity
        self._plans: OrderedDict[tuple, QueryPlan] = OrderedDict()
        self._lock = threading.RLock()
        self.stats = PlanCacheStats()

    def __len__(self) -> int:
        with self._lock:
            return len(self._plans)

    def __contains__(self, key: tuple) -> bool:
        with self._lock:
            return key in self._plans

    def get(self, key: tuple, count_miss: bool = True) -> QueryPlan | None:
        """The cached plan for ``key`` (refreshing recency), or None.

        ``count_miss=False`` suppresses the miss counter — for re-looks
        after a lookup that already recorded the miss (hits always
        count, so a reuse is never invisible in the stats).
        """
        with self._lock:
            plan = self._plans.get(key)
            if plan is None:
                if count_miss:
                    self.stats.misses += 1
                return None
            self._plans.move_to_end(key)
            self.stats.hits += 1
            return plan

    def put(self, key: tuple, plan: QueryPlan) -> None:
        """Insert ``plan``, evicting the least recently used if full.

        A first-time insertion counts as a compile (re-inserting an
        existing key only refreshes recency).
        """
        with self._lock:
            if key in self._plans:
                self._plans.move_to_end(key)
            else:
                self.stats.compiles += 1
            self._plans[key] = plan
            if len(self._plans) > self.capacity:
                self._plans.popitem(last=False)
                self.stats.evictions += 1

    def stats_snapshot(self) -> PlanCacheStats:
        """A consistent copy of the counters, taken under the lock.

        ``self.stats`` is mutated under the cache lock by concurrent
        lookups; reading its fields without the lock (as ``/stats``
        handlers once did) can observe a torn multi-counter state —
        e.g. a hit counted but the lookup total not yet caught up.
        """
        with self._lock:
            return self.stats.snapshot()

    def stats_delta(self, earlier: PlanCacheStats) -> PlanCacheStats:
        """Counters accumulated since ``earlier``, read under the lock."""
        with self._lock:
            return self.stats.since(earlier)

    def clear(self) -> None:
        with self._lock:
            self._plans.clear()

    def plans(self) -> list[QueryPlan]:
        """Cached plans, least recently used first."""
        with self._lock:
            return list(self._plans.values())
