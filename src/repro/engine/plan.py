"""Query plans and the LRU plan cache.

Planning an RSPQ is expensive relative to running one: a regex is
parsed, determinised, minimised, classified against the trichotomy and
(for trC languages) decomposed into a Ψtr expression before the first
graph vertex is ever touched.  A :class:`QueryPlan` freezes all of that
— the classification, the chosen strategy and a ready
:class:`~repro.core.solver.RspqSolver` — so repeated queries on the same
language skip straight to the search.

Plans are **immutable and shareable**: the frozen dataclass holds a
re-entrant solver whose per-query state lives in the
:class:`~repro.execution.ExecutionContext` each query brings along, so
one cached plan can serve any number of concurrent queries.

Plans are cached in :class:`PlanCache`, a small thread-safe LRU keyed
by :func:`plan_key`: regex strings key by their text (no re-parse on a
hit), :class:`~repro.languages.Language` objects by the canonical
signature of their minimal DFA (two different regexes for the same
language share a plan).
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any

from ..core.solver import RspqSolver
from ..languages import Language


def plan_key(language):
    """A hashable cache key for a regex string or ``Language``.

    Strings key by their exact text — the cheap path, no parsing.
    ``Language`` objects key by the canonical minimal-DFA signature
    (state count, alphabet, initial, accepting set, transition table),
    which is representation-independent: ``a*`` and ``(a*)*`` collide on
    purpose.
    """
    if isinstance(language, str):
        return ("regex", language)
    if isinstance(language, Language):
        dfa = language.dfa
        return (
            "dfa",
            dfa.num_states,
            tuple(sorted(dfa.alphabet)),
            dfa.initial,
            tuple(sorted(dfa.accepting)),
            tuple(sorted(dfa.transitions())),
        )
    raise TypeError(
        "plan keys need a regex string or Language, got %r" % (language,)
    )


@dataclass(frozen=True)
class QueryPlan:
    """A compiled, immutable, shareable evaluation plan for one language."""

    key: Any
    solver: RspqSolver
    compile_seconds: float

    @property
    def language(self):
        return self.solver.language

    @property
    def strategy(self):
        return self.solver.strategy

    @property
    def classification(self):
        return self.solver.classification

    @property
    def decompose_failed(self):
        return self.solver.decompose_failed

    @classmethod
    def compile(cls, language, key=None, exact_budget=None):
        """Build a plan (regex → DFA → classification → solver) once."""
        if key is None:
            key = plan_key(language)
        start = time.perf_counter()
        solver = RspqSolver(language, exact_budget=exact_budget)
        return cls(
            key=key,
            solver=solver,
            compile_seconds=time.perf_counter() - start,
        )

    def describe(self):
        """One-line human summary (used by the batch CLI)."""
        note = " (decompose failed — exact fallback)" if (
            self.decompose_failed
        ) else ""
        return "%s [%s]%s" % (
            self.language,
            self.strategy,
            note,
        )


@dataclass
class PlanCacheStats:
    """Counters for one :class:`PlanCache` lifetime.

    ``compiles`` counts plans inserted into the cache after a fresh
    compile — including plans whose query later failed (e.g. on an
    unknown vertex), which per-result accounting used to miss.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    compiles: int = 0

    @property
    def lookups(self):
        return self.hits + self.misses

    @property
    def hit_rate(self):
        return self.hits / self.lookups if self.lookups else 0.0

    def snapshot(self):
        """An independent copy of the current counters."""
        return PlanCacheStats(
            hits=self.hits,
            misses=self.misses,
            evictions=self.evictions,
            compiles=self.compiles,
        )

    def since(self, earlier):
        """Counter deltas accumulated after the ``earlier`` snapshot."""
        return PlanCacheStats(
            hits=self.hits - earlier.hits,
            misses=self.misses - earlier.misses,
            evictions=self.evictions - earlier.evictions,
            compiles=self.compiles - earlier.compiles,
        )

    def __add__(self, other):
        if not isinstance(other, PlanCacheStats):
            return NotImplemented
        return PlanCacheStats(
            hits=self.hits + other.hits,
            misses=self.misses + other.misses,
            evictions=self.evictions + other.evictions,
            compiles=self.compiles + other.compiles,
        )


class PlanCache:
    """A bounded, thread-safe LRU mapping plan keys to :class:`QueryPlan`.

    Every operation holds an internal lock, so concurrent readers of a
    shared cache cannot corrupt the recency order; single-flight
    compilation (avoiding duplicate compiles under contention) is
    layered on top by :class:`~repro.engine.engine.QueryEngine`.
    """

    def __init__(self, capacity=128):
        if capacity < 1:
            raise ValueError("plan cache capacity must be >= 1")
        self.capacity = capacity
        self._plans = OrderedDict()
        self._lock = threading.RLock()
        self.stats = PlanCacheStats()

    def __len__(self):
        with self._lock:
            return len(self._plans)

    def __contains__(self, key):
        with self._lock:
            return key in self._plans

    def get(self, key, count_miss=True):
        """The cached plan for ``key`` (refreshing recency), or None.

        ``count_miss=False`` suppresses the miss counter — for re-looks
        after a lookup that already recorded the miss (hits always
        count, so a reuse is never invisible in the stats).
        """
        with self._lock:
            plan = self._plans.get(key)
            if plan is None:
                if count_miss:
                    self.stats.misses += 1
                return None
            self._plans.move_to_end(key)
            self.stats.hits += 1
            return plan

    def put(self, key, plan):
        """Insert ``plan``, evicting the least recently used if full.

        A first-time insertion counts as a compile (re-inserting an
        existing key only refreshes recency).
        """
        with self._lock:
            if key in self._plans:
                self._plans.move_to_end(key)
            else:
                self.stats.compiles += 1
            self._plans[key] = plan
            if len(self._plans) > self.capacity:
                self._plans.popitem(last=False)
                self.stats.evictions += 1

    def clear(self):
        with self._lock:
            self._plans.clear()

    def plans(self):
        """Cached plans, least recently used first."""
        with self._lock:
            return list(self._plans.values())
