"""Query plans and the LRU plan cache.

Planning an RSPQ is expensive relative to running one: a regex is
parsed, determinised, minimised, classified against the trichotomy and
(for trC languages) decomposed into a Ψtr expression before the first
graph vertex is ever touched.  A :class:`QueryPlan` freezes all of that
— the classification, the chosen strategy and a ready
:class:`~repro.core.solver.RspqSolver` — so repeated queries on the same
language skip straight to the search.

Plans are cached in :class:`PlanCache`, a small LRU keyed by
:func:`plan_key`: regex strings key by their text (no re-parse on a
hit), :class:`~repro.languages.Language` objects by the canonical
signature of their minimal DFA (two different regexes for the same
language share a plan).
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any

from ..core.solver import RspqSolver
from ..languages import Language


def plan_key(language):
    """A hashable cache key for a regex string or ``Language``.

    Strings key by their exact text — the cheap path, no parsing.
    ``Language`` objects key by the canonical minimal-DFA signature
    (state count, alphabet, initial, accepting set, transition table),
    which is representation-independent: ``a*`` and ``(a*)*`` collide on
    purpose.
    """
    if isinstance(language, str):
        return ("regex", language)
    if isinstance(language, Language):
        dfa = language.dfa
        return (
            "dfa",
            dfa.num_states,
            tuple(sorted(dfa.alphabet)),
            dfa.initial,
            tuple(sorted(dfa.accepting)),
            tuple(sorted(dfa.transitions())),
        )
    raise TypeError(
        "plan keys need a regex string or Language, got %r" % (language,)
    )


@dataclass
class QueryPlan:
    """A compiled, reusable evaluation plan for one language."""

    key: Any
    solver: RspqSolver
    compile_seconds: float

    @property
    def language(self):
        return self.solver.language

    @property
    def strategy(self):
        return self.solver.strategy

    @property
    def classification(self):
        return self.solver.classification

    @property
    def decompose_failed(self):
        return self.solver.decompose_failed

    @classmethod
    def compile(cls, language, key=None, exact_budget=None):
        """Build a plan (regex → DFA → classification → solver) once."""
        if key is None:
            key = plan_key(language)
        start = time.perf_counter()
        solver = RspqSolver(language, exact_budget=exact_budget)
        return cls(
            key=key,
            solver=solver,
            compile_seconds=time.perf_counter() - start,
        )

    def describe(self):
        """One-line human summary (used by the batch CLI)."""
        note = " (decompose failed — exact fallback)" if (
            self.decompose_failed
        ) else ""
        return "%s [%s]%s" % (
            self.language,
            self.strategy,
            note,
        )


@dataclass
class PlanCacheStats:
    """Counters for one :class:`PlanCache` lifetime."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self):
        return self.hits + self.misses

    @property
    def hit_rate(self):
        return self.hits / self.lookups if self.lookups else 0.0


class PlanCache:
    """A bounded LRU mapping plan keys to :class:`QueryPlan` objects."""

    def __init__(self, capacity=128):
        if capacity < 1:
            raise ValueError("plan cache capacity must be >= 1")
        self.capacity = capacity
        self._plans = OrderedDict()
        self.stats = PlanCacheStats()

    def __len__(self):
        return len(self._plans)

    def __contains__(self, key):
        return key in self._plans

    def get(self, key):
        """The cached plan for ``key`` (refreshing recency), or None."""
        plan = self._plans.get(key)
        if plan is None:
            self.stats.misses += 1
            return None
        self._plans.move_to_end(key)
        self.stats.hits += 1
        return plan

    def put(self, key, plan):
        """Insert ``plan``, evicting the least recently used if full."""
        if key in self._plans:
            self._plans.move_to_end(key)
        self._plans[key] = plan
        if len(self._plans) > self.capacity:
            self._plans.popitem(last=False)
            self.stats.evictions += 1

    def clear(self):
        self._plans.clear()

    def plans(self):
        """Cached plans, least recently used first."""
        return list(self._plans.values())
