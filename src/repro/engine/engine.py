"""The batch query engine: one compiled graph, many cached plans.

:class:`QueryEngine` binds an :class:`~repro.engine.indexed.IndexedGraph`
(compiled once from the caller's :class:`~repro.graphs.dbgraph.DbGraph`)
to a :class:`~repro.engine.plan.PlanCache` and answers
``(language, source, target)`` queries through both — see
:mod:`repro.engine` for the cost model.  Results are identical,
path-for-path, to what per-query :func:`repro.core.solver.solve_rspq`
returns on the raw graph; the engine only removes redundant work.

Plans are frozen and solvers re-entrant (per-query state lives in an
:class:`~repro.execution.ExecutionContext`), so ``run_batch`` can shard
a workload across a thread pool: queries on the same language share one
plan, compiled exactly once even under contention (single-flight), and
results come back in input order with per-query error isolation — the
same contract as serial execution.  ``mode="process"`` swaps the thread
pool for worker processes (each with its own engine over the same
compiled graph), which sidesteps the GIL for CPU-bound workloads on
standard CPython builds.
"""

from __future__ import annotations

import threading
import time
from collections import Counter, OrderedDict
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterable, Iterator, Optional

if TYPE_CHECKING:
    from ..languages import Language

from ..core.solver import (
    STRATEGY_EXACT,
    STRATEGY_FINITE,
    STRATEGY_TRACTABLE,
)
from ..errors import ReproError
from ..execution import ExecutionContext, GroupExecution
from ..graphs.dbgraph import Path
from .indexed import IndexedGraph
from .plan import PlanCache, PlanCacheStats, QueryPlan, group_by_plan, plan_key
from .portfolio import CONFIDENCE_CERTIFIED
from .vectorized import VectorizedBatchStats, sweep_group, sweepable

#: Strategy marker for queries that raised instead of answering.
STRATEGY_ERROR = "error"

#: Plan strategies the shared product sweep understands; anything else
#: (a hypothetical weighted/exotic plan) falls back to per-query solving.
_SWEEP_STRATEGIES = (STRATEGY_FINITE, STRATEGY_TRACTABLE, STRATEGY_EXACT)


@dataclass
class QueryStats:
    """Per-query execution counters."""

    strategy: str
    steps: Optional[int]
    plan_cache_hit: bool
    seconds: float
    #: True when the answer was replayed from the engine result cache
    #: (no solver ran; ``steps`` reports the original solve's work).
    result_cache_hit: bool = False
    #: True when the reachability index proved the target unreachable
    #: under the plan's label mask and no solver ran (``steps`` is 0).
    short_circuit: bool = False
    #: True when a shared multi-query product sweep answered the query
    #: (proven NOT_FOUND with no per-query solver run; ``steps``
    #: reports sweep rounds charged to this query).
    vectorized: bool = False


@dataclass
class EngineResult:
    """One answered query: the RSPQ outcome plus engine bookkeeping."""

    language: Any  # the regex string / Language the caller queried with
    source: Any
    target: Any
    found: bool
    path: Optional[Path]
    strategy: str
    decompose_failed: bool
    stats: QueryStats
    #: ``"certified"`` for exact answers (every classic-strategy
    #: result, and portfolio answers backed by a witness or proof);
    #: ``"probabilistic"`` for portfolio negatives whose randomized
    #: rungs may have missed a path (see ``failure_bound``).
    confidence: str = CONFIDENCE_CERTIFIED
    #: Error bound of a probabilistic negative (None when certified).
    failure_bound: Optional[float] = None
    #: Error message when the query failed (batch mode isolates
    #: failures per query); None for answered queries.
    error: Optional[str] = None

    @property
    def length(self) -> int | None:
        return None if self.path is None else len(self.path)


@dataclass
class BatchResult:
    """Outcome of :meth:`QueryEngine.run_batch`."""

    results: list[EngineResult]
    seconds: float
    #: Real :class:`PlanCacheStats` accumulated during this batch (the
    #: delta over the engine's cache; summed over workers in process
    #: mode).  Unlike per-result accounting this counts plans that were
    #: compiled but whose query then errored.
    cache_stats: Optional[PlanCacheStats] = None
    #: Worker threads/processes the batch ran with (1 = serial).
    workers: int = 1
    #: Result-cache counter deltas for this batch (None when the
    #: engine's result cache is disabled; summed over workers in
    #: process mode).
    result_cache_stats: Optional["ResultCacheStats"] = None
    #: Vectorized-execution counters — groups formed, sweeps run,
    #: members peeled by cache/short-circuit, sweep-proven negatives —
    #: or None when the batch ran with ``vectorize=False``.
    stats: Optional[VectorizedBatchStats] = None

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self) -> "Iterator[EngineResult]":
        return iter(self.results)

    @property
    def found_count(self) -> int:
        return sum(1 for result in self.results if result.found)

    @property
    def error_count(self) -> int:
        return sum(1 for result in self.results if result.error is not None)

    @property
    def plan_cache_hits(self) -> int:
        """Cache hits during the batch (real cache counters when known)."""
        if self.cache_stats is not None:
            return self.cache_stats.hits
        return sum(
            1 for result in self.results if result.stats.plan_cache_hit
        )

    @property
    def plans_compiled(self) -> int:
        """Plans compiled during the batch (real cache counters when known).

        Falls back to inferring from the per-result flags when no cache
        stats were recorded; the inference undercounts queries that
        compiled a plan and then errored.
        """
        if self.cache_stats is not None:
            return self.cache_stats.compiles
        return sum(
            1
            for result in self.results
            if result.error is None and not result.stats.plan_cache_hit
        )

    def strategy_counts(self) -> "Counter[str]":
        """``Counter`` of queries answered per strategy."""
        return Counter(result.strategy for result in self.results)

    def summary(self) -> str:
        """A short multi-line report (used by the batch CLI)."""
        by_strategy = ", ".join(
            "%s=%d" % (strategy, count)
            for strategy, count in sorted(self.strategy_counts().items())
        )
        errors = (
            ", %d errors" % self.error_count if self.error_count else ""
        )
        cache = ""
        if self.cache_stats is not None:
            cache = ", %d misses, %d evictions" % (
                self.cache_stats.misses,
                self.cache_stats.evictions,
            )
        workers = ", %d workers" % self.workers if self.workers > 1 else ""
        results = ""
        if self.result_cache_stats is not None and (
            self.result_cache_stats.hits
        ):
            results = " — results: %d cache hits" % (
                self.result_cache_stats.hits
            )
        if self.stats is not None and self.stats.sweeps:
            results += " — vectorized: %d sweeps over %d groups" % (
                self.stats.sweeps,
                self.stats.groups,
            )
        return (
            "%d queries in %.3fs (%d found%s%s) — plans: %d compiled, "
            "%d cache hits%s%s — strategies: %s"
            % (
                len(self.results),
                self.seconds,
                self.found_count,
                errors,
                workers,
                self.plans_compiled,
                self.plan_cache_hits,
                cache,
                results,
                by_strategy or "none",
            )
        )


class _PlanCompilation:
    """Rendezvous for one in-flight plan compile (single-flight)."""

    __slots__ = ("done",)

    def __init__(self):
        self.done = threading.Event()


@dataclass
class ResultCacheStats:
    """Counters for one engine result cache lifetime."""

    hits: int = 0
    misses: int = 0
    #: Whole-cache invalidations (the backing graph's mutation
    #: generation moved, so every cached answer died at once).
    invalidations: int = 0
    size: int = 0
    capacity: int = 0
    enabled: bool = True

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> dict[str, Any]:
        return {
            "enabled": self.enabled,
            "hits": self.hits,
            "misses": self.misses,
            "invalidations": self.invalidations,
            "size": self.size,
            "capacity": self.capacity,
        }

    def since(self, earlier: "ResultCacheStats") -> "ResultCacheStats":
        """Counter deltas accumulated after the ``earlier`` snapshot."""
        return ResultCacheStats(
            hits=self.hits - earlier.hits,
            misses=self.misses - earlier.misses,
            invalidations=self.invalidations - earlier.invalidations,
            size=self.size,
            capacity=self.capacity,
            enabled=self.enabled,
        )

    def __add__(self, other: object) -> "ResultCacheStats":
        if not isinstance(other, ResultCacheStats):
            return NotImplemented
        return ResultCacheStats(
            hits=self.hits + other.hits,
            misses=self.misses + other.misses,
            invalidations=self.invalidations + other.invalidations,
            size=self.size + other.size,
            capacity=max(self.capacity, other.capacity),
            enabled=self.enabled or other.enabled,
        )


class _ResultCache:
    """Bounded thread-safe LRU of answered queries, generation-scoped.

    Keys are ``(plan_key, source, target)``; every entry belongs to the
    graph generation it was computed on.  A lookup or store that sees a
    *different* generation than the cache's current one clears the
    whole cache first (one counter bump) — the invalidation hook for
    the dict-backed path, where a ``DbGraph`` mutation bumps the view
    generation between two identical queries.  Only successfully
    answered results are stored; errors (bad input, exhausted budgets,
    expired deadlines) always re-execute.
    """

    __slots__ = ("capacity", "_entries", "_lock", "_generation",
                 "hits", "misses", "invalidations")

    def __init__(self, capacity):
        if capacity < 1:
            raise ValueError(
                "result cache capacity must be >= 1, got %r (disable "
                "the cache with result_cache=False instead)" % (capacity,)
            )
        self.capacity = capacity
        self._entries = OrderedDict()
        self._lock = threading.Lock()
        self._generation = None
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    # invariant: holds-lock
    def _sync_generation(self, generation):
        # Caller holds the lock.
        if self._generation != generation:
            if self._generation is not None and self._entries:
                self.invalidations += 1
            self._entries.clear()
            self._generation = generation

    def lookup(self, generation, key):
        with self._lock:
            self._sync_generation(generation)
            result = self._entries.get(key)
            if result is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return result

    def store(self, generation, key, result):
        with self._lock:
            self._sync_generation(generation)
            self._entries[key] = result
            self._entries.move_to_end(key)
            if len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    def stats(self):
        with self._lock:
            return ResultCacheStats(
                hits=self.hits,
                misses=self.misses,
                invalidations=self.invalidations,
                size=len(self._entries),
                capacity=self.capacity,
                enabled=True,
            )


def _process_shard(graph, engine_kwargs, shard, overrides,
                   vectorized=False):
    """Worker-process entry point: answer one shard of indexed queries.

    Builds a private engine over the (inherited or pickled) compiled
    graph, so plans are compiled per process — cheap relative to the
    shard and unavoidable, since plans cannot cross process boundaries.
    ``vectorized`` shards re-group their queries by plan key (the
    parent ships whole groups, so grouping reconstructs exactly the
    groups a serial vectorized run would sweep).  Returns the indexed
    results plus the worker's cache and vectorization counters.
    """
    engine = QueryEngine(graph, **engine_kwargs)
    if vectorized:
        results, vec_stats = engine._run_batch_vectorized_indexed(
            shard, overrides, engine.group_min_size
        )
    else:
        vec_stats = None
        results = [
            (index, engine._run_single(language, source, target,
                                       **overrides))
            for index, (language, source, target) in shard
        ]
    return (
        results, engine.cache_stats(), engine.result_cache_stats(),
        vec_stats,
    )


@dataclass
class _PendingQuery:
    """A group member past the serial prefix, awaiting sweep/solver.

    Captures everything :meth:`QueryEngine._execute` had in hand when
    it would have called the solver: the resolved plan, the view and
    generation the answer must be cached under, and — when the
    reachability index resolved them — the integer endpoint ids that
    seed the group sweep (``None`` ids keep the member out of the
    sweep; the solver resolves and validates the vertices itself).
    """

    language: Any
    source: Any
    target: Any
    plan: QueryPlan
    cache_hit: bool
    start: float
    view: Any
    generation: Any
    result_key: tuple
    source_id: Optional[int]
    target_id: Optional[int]


class QueryEngine:
    """Evaluate many RSPQs against one graph with shared compiled state.

    The engine is thread-safe: plans are immutable, the plan cache
    locks internally, and per-query state travels in a fresh
    :class:`~repro.execution.ExecutionContext`; :meth:`run_batch` uses
    this to run shards of a workload concurrently.

    Parameters
    ----------
    graph:
        A :class:`DbGraph` (compiled to an :class:`IndexedGraph` here,
        once) or an already-compiled :class:`IndexedGraph`.
    plan_cache_size:
        Capacity of the LRU plan cache (distinct languages kept warm).
    exact_budget:
        Step budget handed to queries that dispatch to the exponential
        solver (None = unbounded).  Must be positive when given: a
        zero or negative budget would fail every exact-strategy query,
        so it is rejected with :class:`ValueError` here rather than
        surfacing as per-query budget errors.
    deadline_seconds:
        Optional per-query wall-clock deadline; a query that overruns
        it fails with :class:`~repro.errors.DeadlineExceededError`
        (isolated per query in batch mode).  Must be positive when
        given — an engine whose default deadline is already expired is
        a misconfiguration and is rejected with :class:`ValueError`.
    result_cache / result_cache_size:
        The engine-level result cache: answered queries are replayed
        from an LRU keyed by ``(plan key, source, target)`` and scoped
        to the graph's mutation generation, so a repeated query in a
        serving workload returns without touching a solver.  A cache
        hit returns the *correct* answer at ~zero cost, so per-query
        budgets/deadlines do not apply to it.  ``result_cache=False``
        disables it; ``result_cache_size`` bounds the entry count.
    use_reach_index:
        Consult the graph's label-constrained reachability index: the
        engine short-circuits queries whose target is provably
        unreachable under the plan's label mask (no solver runs), and
        the solver cores use the same index for frontier pruning.  The
        index is built eagerly at engine construction (compile time).
    compile:
        ``compile=False`` keeps a mutable :class:`DbGraph` live behind
        the engine instead of freezing it into an
        :class:`IndexedGraph`: queries run on the graph's dict-backed
        view of the current mutation generation, and a mutation
        between two identical queries invalidates the result cache.
        The compiled path (default) is faster for static graphs.
    vectorize / group_min_size:
        Default knobs for :meth:`run_batch`'s vectorized execution:
        batch queries sharing one plan key are grouped, and groups of
        at least ``group_min_size`` sweep-eligible members advance
        through a single multi-source product sweep over the CSR
        arrays (:mod:`repro.engine.vectorized`) instead of one solver
        run per query.  Results stay bit-identical to serial
        execution; ``vectorize=False`` restores the strictly
        per-query batch path.  ``group_min_size`` must be >= 1.
    portfolio:
        Route hard-regime (exact-strategy) queries through the anytime
        strategy ladder of :mod:`repro.engine.portfolio` by default.
        Ladder answers carry a ``confidence``: certified results are
        exact, probabilistic negatives report their ``failure_bound``
        and are **never** stored in the result cache.  Queries can
        override the default either way (``query(portfolio=...)``).
    portfolio_failure_probability / portfolio_seed:
        One-sided error bound δ of each randomized ladder rung and the
        root of their deterministic random streams.
    """

    def __init__(self, graph: Any, plan_cache_size: int = 128,
                 exact_budget: int | None = None,
                 deadline_seconds: float | None = None,
                 result_cache: bool = True,
                 result_cache_size: int = 1024,
                 use_reach_index: bool = True,
                 compile: bool = True,
                 vectorize: bool = True,
                 group_min_size: int = 2,
                 portfolio: bool = False,
                 portfolio_failure_probability: float = 1e-3,
                 portfolio_seed: int = 0):
        # Validate before compiling: a misconfigured engine must fail
        # instantly, not after an O(V+E) graph compile.
        if exact_budget is not None and exact_budget <= 0:
            raise ValueError(
                "exact_budget must be a positive step count or None "
                "for unbounded, got %r" % (exact_budget,)
            )
        if group_min_size < 1:
            raise ValueError(
                "group_min_size must be >= 1, got %r" % (group_min_size,)
            )
        if deadline_seconds is not None and deadline_seconds <= 0:
            raise ValueError(
                "deadline_seconds must be positive or None for no "
                "deadline, got %r (an engine default that is already "
                "expired would fail every query)" % (deadline_seconds,)
            )
        if not 0.0 < portfolio_failure_probability < 1.0:
            raise ValueError(
                "portfolio_failure_probability must be in (0, 1), "
                "got %r" % (portfolio_failure_probability,)
            )
        self._result_cache = (
            _ResultCache(result_cache_size) if result_cache else None
        )
        self.use_reach_index = use_reach_index
        if compile or isinstance(graph, IndexedGraph):
            if isinstance(graph, IndexedGraph):
                self.graph = graph
            else:
                self.graph = IndexedGraph(graph)
            # The integer-native CSR view every solver receives; built
            # once per engine so no query pays for it.
            self._static_view = self.graph.view()
            if use_reach_index:
                # Compile-time indexing: pay for the SCC condensation
                # here, not on the first short-circuit check.
                self._static_view.reachability()
        else:
            if not hasattr(graph, "view"):
                raise ValueError(
                    "compile=False needs a graph exposing .view() "
                    "(a DbGraph); got %r" % (graph,)
                )
            # Dict-backed serving: reads go through the live graph's
            # own view, rebuilt per mutation generation.
            self.graph = graph
            self._static_view = None
        self.plan_cache = PlanCache(plan_cache_size)
        self.exact_budget = exact_budget
        self.deadline_seconds = deadline_seconds
        self.vectorize = vectorize
        self.group_min_size = group_min_size
        self.portfolio = portfolio
        self.portfolio_failure_probability = portfolio_failure_probability
        self.portfolio_seed = portfolio_seed
        self._compile_lock = threading.Lock()
        self._inflight: dict[tuple, _PlanCompilation] = {}

    # -- planning ---------------------------------------------------------------

    @staticmethod
    def _check_overrides(deadline_seconds, budget, max_path_edges=None):
        """Validate per-query/batch overrides before any query runs."""
        if deadline_seconds is not None and deadline_seconds < 0:
            raise ValueError(
                "deadline_seconds override must be >= 0, got %r"
                % (deadline_seconds,)
            )
        if budget is not None and budget <= 0:
            raise ValueError(
                "budget override must be a positive step count, got %r"
                % (budget,)
            )
        if max_path_edges is not None and max_path_edges < 0:
            raise ValueError(
                "max_path_edges must be >= 0 or None for unbounded, "
                "got %r" % (max_path_edges,)
            )

    def _new_context(self, deadline_seconds=None, budget=None):
        """A fresh per-query context; overrides beat engine defaults."""
        return ExecutionContext(
            budget=self.exact_budget if budget is None else budget,
            deadline_seconds=(
                self.deadline_seconds
                if deadline_seconds is None
                else deadline_seconds
            ),
        )

    def cache_stats(self) -> PlanCacheStats:
        """Engine-lifetime plan-cache counters (an independent snapshot)."""
        return self.plan_cache.stats_snapshot()

    def result_cache_stats(self) -> ResultCacheStats:
        """Engine-lifetime result-cache counters (hits / misses /
        invalidations plus size and capacity); ``enabled=False`` when
        the cache is off."""
        if self._result_cache is None:
            return ResultCacheStats(enabled=False)
        return self._result_cache.stats()

    @property
    def view(self) -> Any:
        """The graph view every solver receives.

        The frozen CSR view on the compiled path; the live graph's
        dict-backed view of the current mutation generation on the
        ``compile=False`` path.
        """
        if self._static_view is not None:
            return self._static_view
        return self.graph.view()

    @property
    def snapshot_path(self) -> str | None:
        """Path of the snapshot backing this engine's graph, or None.

        Set when the compiled graph was loaded from, attached to, or
        saved as a snapshot file.  A snapshot-backed engine's
        process-mode batches ship the *path* to the workers (which
        attach the shared mapping) instead of pickling the arrays, and
        the pre-fork pool (:class:`repro.service.workers.WorkerPool`)
        points its workers at the same file.
        """
        return getattr(self.graph, "_snapshot_path", None)

    def save_snapshot(self, path: Any) -> int:
        """Persist the compiled graph; returns the snapshot byte size.

        Afterwards the engine is snapshot-backed (see
        :attr:`snapshot_path`), and a :func:`load_snapshot` of the
        same file in this process reuses the graph's already-compiled
        condensation instead of re-thawing it.
        """
        from ..service.snapshot import save_snapshot as _save_snapshot

        return _save_snapshot(self.graph, path)

    def reachability_info(self) -> dict[str, Any] | None:
        """JSON-safe shape of the reachability index (or None if off)."""
        if not self.use_reach_index:
            return None
        return self.view.reachability().describe()

    @property
    def view_kind(self) -> str:
        """Backend of the graph view the solvers run on ("csr")."""
        return self.view.kind

    def plan_for(
        self, language: "str | Language"
    ) -> tuple[QueryPlan, bool]:
        """The cached plan for ``language``, compiling on a miss.

        Returns ``(plan, cache_hit)``.  Under concurrent misses on the
        same key exactly one caller compiles (single-flight); the
        others wait for its insertion and count as cache hits, so a
        batch never compiles one language twice however many workers
        race on it.
        """
        key = plan_key(language)
        # Optimistic fast path: warm hits never touch the compile lock,
        # so a hot cache scales across workers instead of serializing.
        plan = self.plan_cache.get(key)
        if plan is not None:
            return plan, True
        while True:
            with self._compile_lock:
                # The fast path above already recorded this miss.
                plan = self.plan_cache.get(key, count_miss=False)
                if plan is not None:
                    return plan, True
                compilation = self._inflight.get(key)
                if compilation is None:
                    compilation = _PlanCompilation()
                    self._inflight[key] = compilation
                    leader = True
                else:
                    leader = False
            if not leader:
                # Wait for the leader, then re-look the key up: on
                # success it is now cached (a hit); if the leader's
                # compile raised, take over and surface our own error.
                compilation.done.wait()
                continue
            try:
                plan = QueryPlan.compile(
                    language, key=key, exact_budget=self.exact_budget,
                    use_reach_pruning=self.use_reach_index,
                    portfolio_config={
                        "seed": self.portfolio_seed,
                        "failure_probability": (
                            self.portfolio_failure_probability
                        ),
                    },
                )
            except BaseException:
                with self._compile_lock:
                    del self._inflight[key]
                compilation.done.set()
                raise
            with self._compile_lock:
                self.plan_cache.put(key, plan)
                del self._inflight[key]
            compilation.done.set()
            return plan, False

    # -- querying ----------------------------------------------------------------

    def query(self, language: "str | Language", source: Any, target: Any,
              deadline_seconds: float | None = None,
              budget: int | None = None,
              portfolio: bool | None = None,
              max_path_edges: int | None = None) -> EngineResult:
        """Answer one RSPQ; returns an :class:`EngineResult`.

        ``deadline_seconds`` / ``budget`` override the engine defaults
        for this query only (the serving tier uses this to map a
        per-request deadline onto the query's execution context).  They
        bound *work*, so a result replayed from the result cache — or
        proved by the reachability index without any search — is
        returned even under a budget no fresh solve could meet.

        ``portfolio`` overrides the engine's default routing of
        hard-regime queries through the anytime strategy ladder
        (``None`` keeps the engine default; it never affects finite or
        tractable plans, which stay on their polynomial solvers).
        ``max_path_edges`` bounds the answer to simple paths of at
        most that many edges (k-RSPQ); ``None`` asks the classical
        unbounded question.

        Raises :class:`~repro.errors.ReproError` on bad input (unknown
        vertex, unparseable regex, exceeded budget or deadline);
        ``run_batch`` isolates such failures per query instead.
        """
        self._check_overrides(deadline_seconds, budget, max_path_edges)
        return self._execute(
            language, source, target,
            deadline_seconds=deadline_seconds, budget=budget,
            portfolio=portfolio, max_path_edges=max_path_edges,
        )

    def _portfolio_mode(self, plan, overrides):
        """``(use_portfolio, max_path_edges)`` for one query.

        The per-query override beats the engine default; a plan
        without a ladder (finite/tractable — already polynomial)
        never uses the portfolio regardless.
        """
        requested = overrides.get("portfolio")
        use = self.portfolio if requested is None else requested
        if use and plan.portfolio is None:
            use = False
        return use, overrides.get("max_path_edges")

    def _result_key(self, plan, source, target, overrides):
        """The result-cache key for one query's effective mode.

        Portfolio witnesses need not be shortest paths and bounded
        (k-RSPQ) queries answer a different question, so both are
        tagged apart from the classic 3-tuple key — neither may ever
        be replayed as a classic answer (or vice versa).
        """
        use_portfolio, max_path_edges = self._portfolio_mode(
            plan, overrides
        )
        if use_portfolio or max_path_edges is not None:
            return (
                plan.key, source, target,
                (
                    "portfolio" if use_portfolio else "bounded",
                    max_path_edges,
                ),
            )
        return (plan.key, source, target)

    def _execute(self, language, source, target, deadline_seconds=None,
                 budget=None, portfolio=None, max_path_edges=None,
                 _hit_box=None):
        """One query through cache → short-circuit → solver (may raise)."""
        start = time.perf_counter()
        plan, cache_hit = self.plan_for(language)
        if _hit_box is not None:
            _hit_box[0] = cache_hit
        view = self.view
        cache = self._result_cache
        # The generation must be the one the view was built at (not a
        # separate read of the live graph): a concurrent mutation
        # between the two reads would otherwise tag a stale answer
        # with the new generation and poison the cache.
        generation = view.generation
        overrides = {
            "deadline_seconds": deadline_seconds,
            "budget": budget,
            "portfolio": portfolio,
            "max_path_edges": max_path_edges,
        }
        result_key = self._result_key(plan, source, target, overrides)
        if cache is not None:
            cached = cache.lookup(generation, result_key)
            if cached is not None:
                return self._replayed_result(
                    language, source, target, cached, cache_hit, start
                )
        if self._short_circuits(view, plan, source, target):
            # Provably NOT_FOUND: the target is not even
            # walk-reachable under any label L can use, and every
            # simple path is a path.  No solver runs.
            result = self._short_circuit_result(
                language, source, target, plan, cache_hit, start
            )
            if cache is not None:
                cache.store(generation, result_key, result)
            return result
        return self._solve_query(
            language, source, target, plan, cache_hit, start, view,
            generation, result_key, overrides,
        )

    def _solve_query(self, language, source, target, plan, cache_hit,
                     start, view, generation, result_key, overrides):
        """Run the solver (ladder or classic) and cache what is safe.

        The shared tail of :meth:`_execute` and the vectorized batch
        path's :meth:`_finish_pending`: builds the per-query context,
        dispatches to the portfolio ladder or the plan's classic
        solver, applies the ``max_path_edges`` bound, and stores the
        result — certified answers only; a probabilistic NOT_FOUND
        must never be replayed as definitive.
        """
        ctx = self._new_context(
            deadline_seconds=overrides.get("deadline_seconds"),
            budget=overrides.get("budget"),
        )
        cache = self._result_cache
        use_portfolio, max_path_edges = self._portfolio_mode(
            plan, overrides
        )
        if use_portfolio:
            outcome = plan.portfolio.solve(
                view, source, target, ctx=ctx,
                max_path_edges=max_path_edges,
            )
            result = self._portfolio_result(
                language, source, target, plan, cache_hit, ctx, outcome,
                start,
            )
            if cache is not None and (
                outcome.confidence == CONFIDENCE_CERTIFIED
            ):
                cache.store(generation, result_key, result)
            return result
        path = plan.solver.shortest_simple_path(
            view, source, target, ctx=ctx
        )
        if max_path_edges is not None and path is not None and (
            len(path) > max_path_edges
        ):
            # The classic solver answers the unbounded question with
            # the *shortest* simple path; if even that overshoots the
            # bound, no bounded path exists — a certified negative.
            path = None
        result = self._answered_result(
            language, source, target, plan, cache_hit, ctx, path, start
        )
        if cache is not None:
            cache.store(generation, result_key, result)
        return result

    def _answered_result(self, language, source, target, plan, cache_hit,
                         ctx, path, start):
        """The :class:`EngineResult` for one successfully answered query."""
        return EngineResult(
            language=language,
            source=source,
            target=target,
            found=path is not None,
            path=path,
            strategy=plan.strategy,
            decompose_failed=plan.decompose_failed,
            stats=QueryStats(
                strategy=plan.strategy,
                steps=plan.solver.steps_in(ctx),
                plan_cache_hit=cache_hit,
                seconds=time.perf_counter() - start,
            ),
        )

    def _portfolio_result(self, language, source, target, plan, cache_hit,
                          ctx, outcome, start):
        """The result of one portfolio-ladder solve.

        ``steps`` aggregates every rung's work: each rung ran on a
        budget-capped child context folded back into ``ctx``.
        """
        return EngineResult(
            language=language,
            source=source,
            target=target,
            found=outcome.found,
            path=outcome.path,
            strategy=outcome.strategy,
            decompose_failed=plan.decompose_failed,
            stats=QueryStats(
                strategy=outcome.strategy,
                steps=ctx.steps,
                plan_cache_hit=cache_hit,
                seconds=time.perf_counter() - start,
            ),
            confidence=outcome.confidence,
            failure_bound=outcome.failure_bound,
        )

    def _replayed_result(self, language, source, target, cached, cache_hit,
                         start):
        """An answer replayed from the result cache (no solver ran).

        Only certified results are ever stored, so the replayed
        confidence is always ``certified`` — carried over from the
        cached result rather than assumed, so a store-policy bug would
        surface in results instead of being masked here.
        """
        return EngineResult(
            language=language,
            source=source,
            target=target,
            found=cached.found,
            path=cached.path,
            strategy=cached.strategy,
            decompose_failed=cached.decompose_failed,
            stats=QueryStats(
                strategy=cached.strategy,
                steps=cached.stats.steps,
                plan_cache_hit=cache_hit,
                seconds=time.perf_counter() - start,
                result_cache_hit=True,
                short_circuit=cached.stats.short_circuit,
            ),
            confidence=cached.confidence,
            failure_bound=cached.failure_bound,
        )

    def _short_circuit_result(self, language, source, target, plan,
                              cache_hit, start):
        """A NOT_FOUND proven by the reachability index (no solver ran)."""
        return EngineResult(
            language=language,
            source=source,
            target=target,
            found=False,
            path=None,
            strategy=plan.strategy,
            decompose_failed=plan.decompose_failed,
            stats=QueryStats(
                strategy=plan.strategy,
                steps=0,
                plan_cache_hit=cache_hit,
                seconds=time.perf_counter() - start,
                short_circuit=True,
            ),
        )

    def _error_result(self, language, source, target, cache_hit, start,
                      err):
        """The isolated-failure result batch mode returns for ``err``."""
        return EngineResult(
            language=language,
            source=source,
            target=target,
            found=False,
            path=None,
            strategy=STRATEGY_ERROR,
            decompose_failed=False,
            stats=QueryStats(
                strategy=STRATEGY_ERROR,
                steps=None,
                plan_cache_hit=cache_hit,
                seconds=time.perf_counter() - start,
            ),
            error=str(err),
        )

    def _probe_short_circuit(self, view, plan, source, target):
        """``(short_circuits, source_id, target_id)`` for one query.

        The vectorized batch path needs the resolved vertex ids the
        short-circuit probe computes anyway (they seed the group
        sweep), so this returns them alongside the verdict; ids are
        ``None`` when the reachability index is off (nothing was
        resolved — the solver validates vertices itself in that
        configuration, preserving its error messages).
        """
        if not self.use_reach_index:
            return False, None, None
        source_id = view.vertex_id(source)
        target_id = view.vertex_id(target)
        short = source_id != target_id and not view.reachability().can_reach(
            source_id, target_id, view.label_mask(plan.used_symbols)
        )
        return short, source_id, target_id

    def _short_circuits(self, view, plan, source, target):
        """True when the reachability index proves the query NOT_FOUND.

        Unknown vertices raise :class:`~repro.errors.GraphError` here
        exactly as the solver would have (batch mode isolates it per
        query); a same-vertex query is never short-circuited (the
        empty-word case belongs to the solver).
        """
        return self._probe_short_circuit(view, plan, source, target)[0]

    def reach_only_result(
        self, language: "str | Language", source: Any, target: Any
    ) -> "EngineResult | None":
        """A certified NOT_FOUND from the reachability index alone.

        The deepest rung of the serving tier's degradation ladder:
        answer *only* what the label-constrained reachability index
        can prove without running any solver.  Returns the same
        short-circuit :class:`EngineResult` a full query would have
        produced when the index proves the target unreachable, and
        ``None`` when the index is off or cannot decide (the caller
        sheds the request rather than guessing).

        Never wrong by construction: a short-circuit NOT_FOUND is a
        proof, not an estimate.  Raises exactly what plan compilation
        or vertex resolution would raise on a full query.
        """
        start = time.perf_counter()
        plan, cache_hit = self.plan_for(language)
        view = self.view
        if not self._short_circuits(view, plan, source, target):
            return None
        return self._short_circuit_result(
            language, source, target, plan, cache_hit, start
        )

    def exists(
        self, language: "str | Language", source: Any, target: Any
    ) -> bool:
        """Decision variant (plan-cached, index-short-circuited)."""
        plan, _cache_hit = self.plan_for(language)
        view = self.view
        if self._short_circuits(view, plan, source, target):
            return False
        return plan.solver.exists(
            view, source, target, ctx=self._new_context()
        )

    def _run_single(self, language, source, target, deadline_seconds=None,
                    budget=None, portfolio=None, max_path_edges=None):
        """One query with per-query error isolation (batch building block)."""
        start = time.perf_counter()
        hit_box = [False]
        try:
            return self._execute(
                language, source, target,
                deadline_seconds=deadline_seconds, budget=budget,
                portfolio=portfolio, max_path_edges=max_path_edges,
                _hit_box=hit_box,
            )
        except ReproError as err:
            return self._error_result(
                language, source, target, hit_box[0], start, err
            )

    # -- vectorized batch execution ----------------------------------------------

    def _sweep_allowed(self, overrides):
        """True when this batch's groups may run shared sweeps.

        A sweep proves negatives with no per-query solver run, so a
        query whose budget or deadline would have expired mid-solve
        could come back answered instead of errored.  Bit-identity
        with serial execution is the contract, so any *effective*
        budget or deadline — engine default or batch override —
        disables sweeping and every query runs the per-query path.
        """
        budget = overrides.get("budget")
        if (self.exact_budget if budget is None else budget) is not None:
            return False
        deadline = overrides.get("deadline_seconds")
        effective_deadline = (
            self.deadline_seconds if deadline is None else deadline
        )
        return effective_deadline is None

    def _pre_solve(self, language, source, target, stats, overrides):
        """The serial :meth:`_execute` prefix for one group member.

        Runs plan resolution, the result-cache lookup and the
        reachability short-circuit in exactly serial order (with
        serial error isolation), so every cache and serving counter
        moves as a per-query run would.  Returns a finished
        :class:`EngineResult` when the prefix decided the query, or a
        :class:`_PendingQuery` to be answered by the group sweep or
        the per-query solver.
        """
        start = time.perf_counter()
        cache_hit = False
        try:
            plan, cache_hit = self.plan_for(language)
            view = self.view
            generation = view.generation
            result_key = self._result_key(plan, source, target, overrides)
            cache = self._result_cache
            if cache is not None:
                cached = cache.lookup(generation, result_key)
                if cached is not None:
                    stats.peeled_cache_hits += 1
                    return self._replayed_result(
                        language, source, target, cached, cache_hit, start
                    )
            short, source_id, target_id = self._probe_short_circuit(
                view, plan, source, target
            )
            if short:
                stats.peeled_short_circuits += 1
                result = self._short_circuit_result(
                    language, source, target, plan, cache_hit, start
                )
                if cache is not None:
                    cache.store(generation, result_key, result)
                return result
        except ReproError as err:
            return self._error_result(
                language, source, target, cache_hit, start, err
            )
        return _PendingQuery(
            language=language,
            source=source,
            target=target,
            plan=plan,
            cache_hit=cache_hit,
            start=start,
            view=view,
            generation=generation,
            result_key=result_key,
            source_id=source_id,
            target_id=target_id,
        )

    def _finish_pending(self, rec, overrides):
        """Finish one pending member exactly as serial execution would:
        a fresh per-query context, the plan's solver (or ladder),
        serial caching and serial error isolation."""
        try:
            return self._solve_query(
                rec.language, rec.source, rec.target, rec.plan,
                rec.cache_hit, rec.start, rec.view, rec.generation,
                rec.result_key, overrides,
            )
        except ReproError as err:
            return self._error_result(
                rec.language, rec.source, rec.target, rec.cache_hit,
                rec.start, err,
            )

    def _run_group(self, members, overrides, min_size, sweep_ok, stats):
        """Answer one plan-key group; returns ``(index, result)`` pairs.

        Stage A walks the members in input order through the serial
        prefix (:meth:`_pre_solve`); duplicate endpoint pairs of a
        still-pending member are deferred and replayed per query after
        the group resolves, so their result-cache accounting matches
        serial execution hit for hit.  Stage B sweeps the pending
        members through one shared product expansion when eligible;
        sweep positives (walk witnesses) and everything unswept fall
        back to the authoritative per-query solver.
        """
        results = []
        pending = []
        deferred = []
        seen_pairs = set()
        for index, (language, source, target) in members:
            pair = (source, target)
            if pair in seen_pairs:
                stats.deferred_duplicates += 1
                deferred.append((index, language, source, target))
                continue
            outcome = self._pre_solve(
                language, source, target, stats, overrides
            )
            if isinstance(outcome, _PendingQuery):
                seen_pairs.add(pair)
                pending.append((index, outcome))
            else:
                results.append((index, outcome))
        sweep_members = [
            (index, rec) for index, rec in pending
            if rec.source_id is not None
        ]
        swept = set()
        if sweep_ok and len(sweep_members) >= min_size:
            plan = sweep_members[0][1].plan
            view = sweep_members[0][1].view
            if sweepable(view, plan, _SWEEP_STRATEGIES):
                stats.sweeps += 1
                group_exec = GroupExecution({
                    member: self._new_context(
                        deadline_seconds=overrides.get("deadline_seconds"),
                        budget=overrides.get("budget"),
                    )
                    for member in range(len(sweep_members))
                })
                sweep_outcome = sweep_group(
                    view, plan,
                    [
                        (member, rec.source_id, rec.target_id)
                        for member, (index, rec)
                        in enumerate(sweep_members)
                    ],
                    group_exec,
                )
                for member in sweep_outcome.negatives:
                    index, rec = sweep_members[member]
                    swept.add(index)
                    stats.swept_negatives += 1
                    result = EngineResult(
                        language=rec.language,
                        source=rec.source,
                        target=rec.target,
                        found=False,
                        path=None,
                        strategy=rec.plan.strategy,
                        decompose_failed=rec.plan.decompose_failed,
                        stats=QueryStats(
                            strategy=rec.plan.strategy,
                            steps=sweep_outcome.steps_of(member),
                            plan_cache_hit=rec.cache_hit,
                            seconds=time.perf_counter() - rec.start,
                            vectorized=True,
                        ),
                    )
                    if self._result_cache is not None:
                        self._result_cache.store(
                            rec.generation, rec.result_key, result
                        )
                    results.append((index, result))
        for index, rec in pending:
            if index in swept:
                continue
            stats.fallback_solves += 1
            results.append((index, self._finish_pending(rec, overrides)))
        for index, language, source, target in deferred:
            results.append((
                index,
                self._run_single(language, source, target, **overrides),
            ))
        return results

    def _run_batch_vectorized_indexed(self, indexed, overrides, min_size):
        """Answer ``(position, query)`` pairs through plan-key groups.

        The building block every vectorized schedule shares: serial
        passes the whole batch, thread tasks pass one group each, and
        process workers pass their shard (whole groups by
        construction, so re-grouping here reconstructs them exactly).
        Returns unordered ``(position, result)`` pairs plus the
        :class:`VectorizedBatchStats` for this slice.
        """
        groups, ungroupable = group_by_plan(indexed)
        stats = VectorizedBatchStats(
            groups=len(groups),
            grouped_queries=sum(
                len(members) for members in groups.values()
            ),
        )
        sweep_ok = self._sweep_allowed(overrides)
        results = []
        for members in groups.values():
            results.extend(
                self._run_group(members, overrides, min_size, sweep_ok,
                                stats)
            )
        for index, (language, source, target) in ungroupable:
            results.append((
                index,
                self._run_single(language, source, target, **overrides),
            ))
        return results, stats

    def run_batch(self, queries: Iterable[tuple], workers: int = 1,
                  mode: str = "thread",
                  deadline_seconds: float | None = None,
                  budget: int | None = None,
                  vectorize: bool | None = None,
                  group_min_size: int | None = None,
                  portfolio: bool | None = None,
                  max_path_edges: int | None = None) -> BatchResult:
        """Answer an iterable of ``(language, source, target)`` triples.

        Queries run against the shared indexed graph; plans are
        compiled at most once per distinct language (LRU permitting —
        single-flight even under contention).  A query that raises
        :class:`~repro.errors.ReproError` (unknown vertex, bad regex,
        exceeded budget/deadline) does not abort the batch: it yields
        an :class:`EngineResult` with ``error`` set and the remaining
        queries still run.  Results always come back in input order.

        Parameters
        ----------
        workers:
            Concurrency degree; 1 (default) runs serially.  Results
            are identical, path for path, for every worker count.
        mode:
            ``"thread"`` (default) shares this engine's plan cache
            across a thread pool — the right choice whenever plan
            compilation dominates, and for true CPU scaling on
            free-threaded builds.  ``"process"`` shards across worker
            processes, each with a private engine over the same
            compiled graph — CPU scaling on GIL builds at the price of
            per-process plan compiles.
        deadline_seconds / budget:
            Per-batch overrides of the engine defaults, applied to
            every query's execution context (each query still gets its
            own deadline measured from its own start).  Validated
            upfront: a negative deadline or non-positive budget raises
            :class:`ValueError` before any query runs.  An effective
            budget or deadline also disables group sweeps for the
            batch (per-query contracts must bite exactly as serial).
        vectorize / group_min_size:
            Per-batch overrides of the engine's vectorization knobs
            (None keeps the engine default): ``vectorize=False`` runs
            the strictly per-query batch path; ``group_min_size``
            (>= 1) sets the smallest plan-key group worth sweeping.
        portfolio / max_path_edges:
            Applied to every query in the batch: ``portfolio``
            overrides the engine's default hard-regime ladder routing
            (None keeps it), ``max_path_edges`` bounds every answer to
            simple paths of at most that many edges (k-RSPQ).

        Returns a :class:`BatchResult` whose ``cache_stats`` carries
        the real plan-cache counter deltas for this batch and whose
        ``stats`` reports the vectorized-execution counters (None with
        ``vectorize=False``).
        """
        if workers < 1:
            raise ValueError("workers must be >= 1, got %d" % workers)
        if mode not in ("thread", "process"):
            raise ValueError(
                "mode must be 'thread' or 'process', got %r" % (mode,)
            )
        self._check_overrides(deadline_seconds, budget, max_path_edges)
        use_vectorize = self.vectorize if vectorize is None else vectorize
        min_size = (
            self.group_min_size if group_min_size is None
            else group_min_size
        )
        if min_size < 1:
            raise ValueError(
                "group_min_size must be >= 1, got %r" % (min_size,)
            )
        overrides = {
            "deadline_seconds": deadline_seconds,
            "budget": budget,
            "portfolio": portfolio,
            "max_path_edges": max_path_edges,
        }
        query_list = list(queries)
        effective_workers = max(1, min(workers, len(query_list)))
        start = time.perf_counter()
        vec_stats = None
        if effective_workers == 1:
            before = self.cache_stats()
            results_before = self.result_cache_stats()
            if use_vectorize:
                pairs, vec_stats = self._run_batch_vectorized_indexed(
                    list(enumerate(query_list)), overrides, min_size
                )
                results = [None] * len(query_list)
                for index, result in pairs:
                    results[index] = result
            else:
                results = [
                    self._run_single(language, source, target, **overrides)
                    for language, source, target in query_list
                ]
            cache_stats = self.plan_cache.stats_delta(before)
            result_cache_stats = self._result_cache_delta(results_before)
        elif mode == "thread":
            before = self.cache_stats()
            results_before = self.result_cache_stats()
            if use_vectorize:
                results, vec_stats = self._run_batch_threads_vectorized(
                    query_list, effective_workers, overrides, min_size
                )
            else:
                results = self._run_batch_threads(
                    query_list, effective_workers, overrides
                )
            cache_stats = self.plan_cache.stats_delta(before)
            result_cache_stats = self._result_cache_delta(results_before)
        elif use_vectorize:
            results, cache_stats, result_cache_stats, vec_stats = (
                self._run_batch_processes_vectorized(
                    query_list, effective_workers, overrides, min_size
                )
            )
        else:
            results, cache_stats, result_cache_stats = (
                self._run_batch_processes(
                    query_list, effective_workers, overrides
                )
            )
        return BatchResult(
            results=results,
            seconds=time.perf_counter() - start,
            cache_stats=cache_stats,
            workers=effective_workers,
            result_cache_stats=result_cache_stats,
            stats=vec_stats,
        )

    def _result_cache_delta(self, earlier):
        if self._result_cache is None:
            return None
        return self.result_cache_stats().since(earlier)

    # -- parallel schedulers -----------------------------------------------------

    def _run_batch_threads(self, queries, workers, overrides):
        """Strided shards over a thread pool; input-order results."""
        results = [None] * len(queries)

        def run_shard(offset):
            for index in range(offset, len(queries), workers):
                language, source, target = queries[index]
                results[index] = self._run_single(
                    language, source, target, **overrides
                )

        with ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-batch"
        ) as pool:
            futures = [
                pool.submit(run_shard, offset) for offset in range(workers)
            ]
            for future in futures:
                future.result()
        return results

    def _run_batch_threads_vectorized(self, queries, workers, overrides,
                                      min_size):
        """Vectorized thread schedule: one pool task per plan group.

        Groups are formed once here, so the sweep compositions — and
        therefore every member's charged steps — are identical to a
        serial vectorized run of the same batch.  Ungroupable queries
        (no plan key) run in strided per-query shards alongside.
        """
        groups, ungroupable = group_by_plan(list(enumerate(queries)))
        tasks = list(groups.values())
        if ungroupable:
            stride = min(workers, len(ungroupable))
            tasks.extend(
                ungroupable[offset::stride] for offset in range(stride)
            )
        results = [None] * len(queries)
        total = VectorizedBatchStats()
        with ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-batch"
        ) as pool:
            futures = [
                pool.submit(
                    self._run_batch_vectorized_indexed, task, overrides,
                    min_size,
                )
                for task in tasks
            ]
            for future in futures:
                pairs, task_stats = future.result()
                for index, result in pairs:
                    results[index] = result
                total = total + task_stats
        return results, total

    def _worker_engine_kwargs(self):
        """Constructor kwargs reproducing this engine in a worker process."""
        return {
            "plan_cache_size": self.plan_cache.capacity,
            "exact_budget": self.exact_budget,
            "deadline_seconds": self.deadline_seconds,
            "use_reach_index": self.use_reach_index,
            "result_cache": self._result_cache is not None,
            "result_cache_size": (
                self._result_cache.capacity
                if self._result_cache is not None
                else 1024
            ),
            "vectorize": self.vectorize,
            "group_min_size": self.group_min_size,
            "portfolio": self.portfolio,
            "portfolio_failure_probability": (
                self.portfolio_failure_probability
            ),
            "portfolio_seed": self.portfolio_seed,
        }

    def _run_batch_processes(self, queries, workers, overrides):
        """Strided shards over worker processes; input-order results."""
        shards = [
            [
                (index, queries[index])
                for index in range(offset, len(queries), workers)
            ]
            for offset in range(workers)
        ]
        results, cache_stats, result_cache_stats, _vec = (
            self._collect_process_shards(
                shards, self._worker_engine_kwargs(), overrides,
                vectorized=False, workers=workers,
                total=len(queries),
            )
        )
        return results, cache_stats, result_cache_stats

    def _run_batch_processes_vectorized(self, queries, workers, overrides,
                                        min_size):
        """Vectorized process schedule: whole groups shipped to workers.

        Groups are formed once in the parent and assigned whole to
        workers (largest first onto the least-loaded worker, ties by
        first batch position — deterministic), so each worker re-groups
        its shard into exactly the groups formed here and sweeps them
        as serial execution would.  Ungroupable queries stride across
        the workers.
        """
        groups, ungroupable = group_by_plan(list(enumerate(queries)))
        shards = [[] for _ in range(workers)]
        loads = [0] * workers
        ordered = sorted(
            groups.values(),
            key=lambda members: (-len(members), members[0][0]),
        )
        for members in ordered:
            worker = loads.index(min(loads))
            shards[worker].extend(members)
            loads[worker] += len(members)
        for offset, item in enumerate(ungroupable):
            shards[offset % workers].append(item)
        engine_kwargs = self._worker_engine_kwargs()
        engine_kwargs["vectorize"] = True
        engine_kwargs["group_min_size"] = min_size
        return self._collect_process_shards(
            shards, engine_kwargs, overrides, vectorized=True,
            workers=workers, total=len(queries),
        )

    def _collect_process_shards(self, shards, engine_kwargs, overrides,
                                vectorized, workers, total):
        """Run shards on a process pool and merge results and counters."""
        results = [None] * total
        cache_stats = PlanCacheStats()
        result_cache_stats = (
            ResultCacheStats() if self._result_cache is not None else None
        )
        vec_stats = VectorizedBatchStats() if vectorized else None
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = [
                pool.submit(
                    _process_shard, self.graph, engine_kwargs, shard,
                    overrides, vectorized,
                )
                for shard in shards
                if shard
            ]
            for future in futures:
                shard_results, shard_stats, shard_result_stats, shard_vec = (
                    future.result()
                )
                for index, result in shard_results:
                    results[index] = result
                cache_stats = cache_stats + shard_stats
                if result_cache_stats is not None:
                    result_cache_stats = (
                        result_cache_stats + shard_result_stats
                    )
                if vec_stats is not None and shard_vec is not None:
                    vec_stats = vec_stats + shard_vec
        return results, cache_stats, result_cache_stats, vec_stats
