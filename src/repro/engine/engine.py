"""The batch query engine: one compiled graph, many cached plans.

:class:`QueryEngine` binds an :class:`~repro.engine.indexed.IndexedGraph`
(compiled once from the caller's :class:`~repro.graphs.dbgraph.DbGraph`)
to a :class:`~repro.engine.plan.PlanCache` and answers
``(language, source, target)`` queries through both — see
:mod:`repro.engine` for the cost model.  Results are identical,
path-for-path, to what per-query :func:`repro.core.solver.solve_rspq`
returns on the raw graph; the engine only removes redundant work.
"""

from __future__ import annotations

import time
from collections import Counter
from dataclasses import dataclass
from typing import Any, Optional

from ..errors import ReproError
from ..graphs.dbgraph import Path
from .indexed import IndexedGraph
from .plan import PlanCache, QueryPlan, plan_key

#: Strategy marker for queries that raised instead of answering.
STRATEGY_ERROR = "error"


@dataclass
class QueryStats:
    """Per-query execution counters."""

    strategy: str
    steps: Optional[int]
    plan_cache_hit: bool
    seconds: float


@dataclass
class EngineResult:
    """One answered query: the RSPQ outcome plus engine bookkeeping."""

    language: Any  # the regex string / Language the caller queried with
    source: Any
    target: Any
    found: bool
    path: Optional[Path]
    strategy: str
    decompose_failed: bool
    stats: QueryStats
    #: Error message when the query failed (batch mode isolates
    #: failures per query); None for answered queries.
    error: Optional[str] = None

    @property
    def length(self):
        return None if self.path is None else len(self.path)


@dataclass
class BatchResult:
    """Outcome of :meth:`QueryEngine.run_batch`."""

    results: list
    seconds: float

    def __len__(self):
        return len(self.results)

    def __iter__(self):
        return iter(self.results)

    @property
    def found_count(self):
        return sum(1 for result in self.results if result.found)

    @property
    def error_count(self):
        return sum(1 for result in self.results if result.error is not None)

    @property
    def plan_cache_hits(self):
        return sum(
            1 for result in self.results if result.stats.plan_cache_hit
        )

    @property
    def plans_compiled(self):
        return sum(
            1
            for result in self.results
            if result.error is None and not result.stats.plan_cache_hit
        )

    def strategy_counts(self):
        """``Counter`` of queries answered per strategy."""
        return Counter(result.strategy for result in self.results)

    def summary(self):
        """A short multi-line report (used by the batch CLI)."""
        by_strategy = ", ".join(
            "%s=%d" % (strategy, count)
            for strategy, count in sorted(self.strategy_counts().items())
        )
        errors = (
            ", %d errors" % self.error_count if self.error_count else ""
        )
        return (
            "%d queries in %.3fs (%d found%s) — plans: %d compiled, "
            "%d cache hits — strategies: %s"
            % (
                len(self.results),
                self.seconds,
                self.found_count,
                errors,
                self.plans_compiled,
                self.plan_cache_hits,
                by_strategy or "none",
            )
        )


class QueryEngine:
    """Evaluate many RSPQs against one graph with shared compiled state.

    Parameters
    ----------
    graph:
        A :class:`DbGraph` (compiled to an :class:`IndexedGraph` here,
        once) or an already-compiled :class:`IndexedGraph`.
    plan_cache_size:
        Capacity of the LRU plan cache (distinct languages kept warm).
    exact_budget:
        Step budget handed to plans that dispatch to the exponential
        solver (None = unbounded).
    """

    def __init__(self, graph, plan_cache_size=128, exact_budget=None):
        if isinstance(graph, IndexedGraph):
            self.graph = graph
        else:
            self.graph = IndexedGraph(graph)
        self.plan_cache = PlanCache(plan_cache_size)
        self.exact_budget = exact_budget

    # -- planning ---------------------------------------------------------------

    def plan_for(self, language):
        """The cached plan for ``language``, compiling on a miss.

        Returns ``(plan, cache_hit)``.
        """
        key = plan_key(language)
        plan = self.plan_cache.get(key)
        if plan is not None:
            return plan, True
        plan = QueryPlan.compile(
            language, key=key, exact_budget=self.exact_budget
        )
        self.plan_cache.put(key, plan)
        return plan, False

    # -- querying ----------------------------------------------------------------

    def query(self, language, source, target):
        """Answer one RSPQ; returns an :class:`EngineResult`.

        Raises :class:`~repro.errors.ReproError` on bad input (unknown
        vertex, unparseable regex, exceeded budget); ``run_batch``
        isolates such failures per query instead.
        """
        start = time.perf_counter()
        plan, cache_hit = self.plan_for(language)
        path = plan.solver.shortest_simple_path(self.graph, source, target)
        seconds = time.perf_counter() - start
        return EngineResult(
            language=language,
            source=source,
            target=target,
            found=path is not None,
            path=path,
            strategy=plan.strategy,
            decompose_failed=plan.decompose_failed,
            stats=QueryStats(
                strategy=plan.strategy,
                steps=plan.solver.last_steps(),
                plan_cache_hit=cache_hit,
                seconds=seconds,
            ),
        )

    def exists(self, language, source, target):
        """Decision variant (plan-cached)."""
        plan, _cache_hit = self.plan_for(language)
        return plan.solver.exists(self.graph, source, target)

    def run_batch(self, queries):
        """Answer an iterable of ``(language, source, target)`` triples.

        Queries run in order against the shared indexed graph; plans are
        compiled at most once per distinct language (LRU permitting).
        A query that raises :class:`~repro.errors.ReproError` (unknown
        vertex, bad regex, exceeded budget) does not abort the batch:
        it yields an :class:`EngineResult` with ``error`` set and the
        remaining queries still run.  Returns a :class:`BatchResult`.
        """
        start = time.perf_counter()
        results = []
        for language, source, target in queries:
            query_start = time.perf_counter()
            try:
                results.append(self.query(language, source, target))
            except ReproError as err:
                results.append(
                    EngineResult(
                        language=language,
                        source=source,
                        target=target,
                        found=False,
                        path=None,
                        strategy=STRATEGY_ERROR,
                        decompose_failed=False,
                        stats=QueryStats(
                            strategy=STRATEGY_ERROR,
                            steps=None,
                            plan_cache_hit=False,
                            seconds=time.perf_counter() - query_start,
                        ),
                        error=str(err),
                    )
                )
        return BatchResult(
            results=results, seconds=time.perf_counter() - start
        )
