"""The batch query engine: one compiled graph, many cached plans.

:class:`QueryEngine` binds an :class:`~repro.engine.indexed.IndexedGraph`
(compiled once from the caller's :class:`~repro.graphs.dbgraph.DbGraph`)
to a :class:`~repro.engine.plan.PlanCache` and answers
``(language, source, target)`` queries through both — see
:mod:`repro.engine` for the cost model.  Results are identical,
path-for-path, to what per-query :func:`repro.core.solver.solve_rspq`
returns on the raw graph; the engine only removes redundant work.

Plans are frozen and solvers re-entrant (per-query state lives in an
:class:`~repro.execution.ExecutionContext`), so ``run_batch`` can shard
a workload across a thread pool: queries on the same language share one
plan, compiled exactly once even under contention (single-flight), and
results come back in input order with per-query error isolation — the
same contract as serial execution.  ``mode="process"`` swaps the thread
pool for worker processes (each with its own engine over the same
compiled graph), which sidesteps the GIL for CPU-bound workloads on
standard CPython builds.
"""

from __future__ import annotations

import threading
import time
from collections import Counter
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Optional

from ..errors import ReproError
from ..execution import ExecutionContext
from ..graphs.dbgraph import Path
from .indexed import IndexedGraph
from .plan import PlanCache, PlanCacheStats, QueryPlan, plan_key

#: Strategy marker for queries that raised instead of answering.
STRATEGY_ERROR = "error"


@dataclass
class QueryStats:
    """Per-query execution counters."""

    strategy: str
    steps: Optional[int]
    plan_cache_hit: bool
    seconds: float


@dataclass
class EngineResult:
    """One answered query: the RSPQ outcome plus engine bookkeeping."""

    language: Any  # the regex string / Language the caller queried with
    source: Any
    target: Any
    found: bool
    path: Optional[Path]
    strategy: str
    decompose_failed: bool
    stats: QueryStats
    #: Error message when the query failed (batch mode isolates
    #: failures per query); None for answered queries.
    error: Optional[str] = None

    @property
    def length(self):
        return None if self.path is None else len(self.path)


@dataclass
class BatchResult:
    """Outcome of :meth:`QueryEngine.run_batch`."""

    results: list
    seconds: float
    #: Real :class:`PlanCacheStats` accumulated during this batch (the
    #: delta over the engine's cache; summed over workers in process
    #: mode).  Unlike per-result accounting this counts plans that were
    #: compiled but whose query then errored.
    cache_stats: Optional[PlanCacheStats] = None
    #: Worker threads/processes the batch ran with (1 = serial).
    workers: int = 1

    def __len__(self):
        return len(self.results)

    def __iter__(self):
        return iter(self.results)

    @property
    def found_count(self):
        return sum(1 for result in self.results if result.found)

    @property
    def error_count(self):
        return sum(1 for result in self.results if result.error is not None)

    @property
    def plan_cache_hits(self):
        """Cache hits during the batch (real cache counters when known)."""
        if self.cache_stats is not None:
            return self.cache_stats.hits
        return sum(
            1 for result in self.results if result.stats.plan_cache_hit
        )

    @property
    def plans_compiled(self):
        """Plans compiled during the batch (real cache counters when known).

        Falls back to inferring from the per-result flags when no cache
        stats were recorded; the inference undercounts queries that
        compiled a plan and then errored.
        """
        if self.cache_stats is not None:
            return self.cache_stats.compiles
        return sum(
            1
            for result in self.results
            if result.error is None and not result.stats.plan_cache_hit
        )

    def strategy_counts(self):
        """``Counter`` of queries answered per strategy."""
        return Counter(result.strategy for result in self.results)

    def summary(self):
        """A short multi-line report (used by the batch CLI)."""
        by_strategy = ", ".join(
            "%s=%d" % (strategy, count)
            for strategy, count in sorted(self.strategy_counts().items())
        )
        errors = (
            ", %d errors" % self.error_count if self.error_count else ""
        )
        cache = ""
        if self.cache_stats is not None:
            cache = ", %d misses, %d evictions" % (
                self.cache_stats.misses,
                self.cache_stats.evictions,
            )
        workers = ", %d workers" % self.workers if self.workers > 1 else ""
        return (
            "%d queries in %.3fs (%d found%s%s) — plans: %d compiled, "
            "%d cache hits%s — strategies: %s"
            % (
                len(self.results),
                self.seconds,
                self.found_count,
                errors,
                workers,
                self.plans_compiled,
                self.plan_cache_hits,
                cache,
                by_strategy or "none",
            )
        )


class _PlanCompilation:
    """Rendezvous for one in-flight plan compile (single-flight)."""

    __slots__ = ("done",)

    def __init__(self):
        self.done = threading.Event()


def _process_shard(graph, engine_kwargs, shard, overrides):
    """Worker-process entry point: answer one shard of indexed queries.

    Builds a private engine over the (inherited or pickled) compiled
    graph, so plans are compiled per process — cheap relative to the
    shard and unavoidable, since plans cannot cross process boundaries.
    Returns the indexed results plus the worker's cache counters.
    """
    engine = QueryEngine(graph, **engine_kwargs)
    results = [
        (index, engine._run_single(language, source, target, **overrides))
        for index, (language, source, target) in shard
    ]
    return results, engine.cache_stats()


class QueryEngine:
    """Evaluate many RSPQs against one graph with shared compiled state.

    The engine is thread-safe: plans are immutable, the plan cache
    locks internally, and per-query state travels in a fresh
    :class:`~repro.execution.ExecutionContext`; :meth:`run_batch` uses
    this to run shards of a workload concurrently.

    Parameters
    ----------
    graph:
        A :class:`DbGraph` (compiled to an :class:`IndexedGraph` here,
        once) or an already-compiled :class:`IndexedGraph`.
    plan_cache_size:
        Capacity of the LRU plan cache (distinct languages kept warm).
    exact_budget:
        Step budget handed to queries that dispatch to the exponential
        solver (None = unbounded).  Must be positive when given: a
        zero or negative budget would fail every exact-strategy query,
        so it is rejected with :class:`ValueError` here rather than
        surfacing as per-query budget errors.
    deadline_seconds:
        Optional per-query wall-clock deadline; a query that overruns
        it fails with :class:`~repro.errors.DeadlineExceededError`
        (isolated per query in batch mode).  Must be positive when
        given — an engine whose default deadline is already expired is
        a misconfiguration and is rejected with :class:`ValueError`.
    """

    def __init__(self, graph, plan_cache_size=128, exact_budget=None,
                 deadline_seconds=None):
        # Validate before compiling: a misconfigured engine must fail
        # instantly, not after an O(V+E) graph compile.
        if exact_budget is not None and exact_budget <= 0:
            raise ValueError(
                "exact_budget must be a positive step count or None "
                "for unbounded, got %r" % (exact_budget,)
            )
        if deadline_seconds is not None and deadline_seconds <= 0:
            raise ValueError(
                "deadline_seconds must be positive or None for no "
                "deadline, got %r (an engine default that is already "
                "expired would fail every query)" % (deadline_seconds,)
            )
        if isinstance(graph, IndexedGraph):
            self.graph = graph
        else:
            self.graph = IndexedGraph(graph)
        # The integer-native CSR view every solver receives; built once
        # per engine so no query pays for it.
        self.view = self.graph.view()
        self.plan_cache = PlanCache(plan_cache_size)
        self.exact_budget = exact_budget
        self.deadline_seconds = deadline_seconds
        self._compile_lock = threading.Lock()
        self._inflight = {}

    # -- planning ---------------------------------------------------------------

    @staticmethod
    def _check_overrides(deadline_seconds, budget):
        """Validate per-query/batch overrides before any query runs."""
        if deadline_seconds is not None and deadline_seconds < 0:
            raise ValueError(
                "deadline_seconds override must be >= 0, got %r"
                % (deadline_seconds,)
            )
        if budget is not None and budget <= 0:
            raise ValueError(
                "budget override must be a positive step count, got %r"
                % (budget,)
            )

    def _new_context(self, deadline_seconds=None, budget=None):
        """A fresh per-query context; overrides beat engine defaults."""
        return ExecutionContext(
            budget=self.exact_budget if budget is None else budget,
            deadline_seconds=(
                self.deadline_seconds
                if deadline_seconds is None
                else deadline_seconds
            ),
        )

    def cache_stats(self):
        """Engine-lifetime plan-cache counters (an independent snapshot)."""
        return self.plan_cache.stats.snapshot()

    @property
    def view_kind(self):
        """Backend of the graph view the solvers run on ("csr")."""
        return self.view.kind

    def plan_for(self, language):
        """The cached plan for ``language``, compiling on a miss.

        Returns ``(plan, cache_hit)``.  Under concurrent misses on the
        same key exactly one caller compiles (single-flight); the
        others wait for its insertion and count as cache hits, so a
        batch never compiles one language twice however many workers
        race on it.
        """
        key = plan_key(language)
        # Optimistic fast path: warm hits never touch the compile lock,
        # so a hot cache scales across workers instead of serializing.
        plan = self.plan_cache.get(key)
        if plan is not None:
            return plan, True
        while True:
            with self._compile_lock:
                # The fast path above already recorded this miss.
                plan = self.plan_cache.get(key, count_miss=False)
                if plan is not None:
                    return plan, True
                compilation = self._inflight.get(key)
                if compilation is None:
                    compilation = _PlanCompilation()
                    self._inflight[key] = compilation
                    leader = True
                else:
                    leader = False
            if not leader:
                # Wait for the leader, then re-look the key up: on
                # success it is now cached (a hit); if the leader's
                # compile raised, take over and surface our own error.
                compilation.done.wait()
                continue
            try:
                plan = QueryPlan.compile(
                    language, key=key, exact_budget=self.exact_budget
                )
            except BaseException:
                with self._compile_lock:
                    del self._inflight[key]
                compilation.done.set()
                raise
            with self._compile_lock:
                self.plan_cache.put(key, plan)
                del self._inflight[key]
            compilation.done.set()
            return plan, False

    # -- querying ----------------------------------------------------------------

    def query(self, language, source, target, deadline_seconds=None,
              budget=None):
        """Answer one RSPQ; returns an :class:`EngineResult`.

        ``deadline_seconds`` / ``budget`` override the engine defaults
        for this query only (the serving tier uses this to map a
        per-request deadline onto the query's execution context).

        Raises :class:`~repro.errors.ReproError` on bad input (unknown
        vertex, unparseable regex, exceeded budget or deadline);
        ``run_batch`` isolates such failures per query instead.
        """
        self._check_overrides(deadline_seconds, budget)
        start = time.perf_counter()
        plan, cache_hit = self.plan_for(language)
        ctx = self._new_context(
            deadline_seconds=deadline_seconds, budget=budget
        )
        path = plan.solver.shortest_simple_path(
            self.view, source, target, ctx=ctx
        )
        return self._answered_result(
            language, source, target, plan, cache_hit, ctx, path, start
        )

    def _answered_result(self, language, source, target, plan, cache_hit,
                         ctx, path, start):
        """The :class:`EngineResult` for one successfully answered query."""
        return EngineResult(
            language=language,
            source=source,
            target=target,
            found=path is not None,
            path=path,
            strategy=plan.strategy,
            decompose_failed=plan.decompose_failed,
            stats=QueryStats(
                strategy=plan.strategy,
                steps=plan.solver.steps_in(ctx),
                plan_cache_hit=cache_hit,
                seconds=time.perf_counter() - start,
            ),
        )

    def exists(self, language, source, target):
        """Decision variant (plan-cached)."""
        plan, _cache_hit = self.plan_for(language)
        return plan.solver.exists(
            self.view, source, target, ctx=self._new_context()
        )

    def _run_single(self, language, source, target, deadline_seconds=None,
                    budget=None):
        """One query with per-query error isolation (batch building block)."""
        start = time.perf_counter()
        cache_hit = False
        try:
            plan, cache_hit = self.plan_for(language)
            ctx = self._new_context(
                deadline_seconds=deadline_seconds, budget=budget
            )
            path = plan.solver.shortest_simple_path(
                self.view, source, target, ctx=ctx
            )
        except ReproError as err:
            return EngineResult(
                language=language,
                source=source,
                target=target,
                found=False,
                path=None,
                strategy=STRATEGY_ERROR,
                decompose_failed=False,
                stats=QueryStats(
                    strategy=STRATEGY_ERROR,
                    steps=None,
                    plan_cache_hit=cache_hit,
                    seconds=time.perf_counter() - start,
                ),
                error=str(err),
            )
        return self._answered_result(
            language, source, target, plan, cache_hit, ctx, path, start
        )

    def run_batch(self, queries, workers=1, mode="thread",
                  deadline_seconds=None, budget=None):
        """Answer an iterable of ``(language, source, target)`` triples.

        Queries run against the shared indexed graph; plans are
        compiled at most once per distinct language (LRU permitting —
        single-flight even under contention).  A query that raises
        :class:`~repro.errors.ReproError` (unknown vertex, bad regex,
        exceeded budget/deadline) does not abort the batch: it yields
        an :class:`EngineResult` with ``error`` set and the remaining
        queries still run.  Results always come back in input order.

        Parameters
        ----------
        workers:
            Concurrency degree; 1 (default) runs serially.  Results
            are identical, path for path, for every worker count.
        mode:
            ``"thread"`` (default) shares this engine's plan cache
            across a thread pool — the right choice whenever plan
            compilation dominates, and for true CPU scaling on
            free-threaded builds.  ``"process"`` shards across worker
            processes, each with a private engine over the same
            compiled graph — CPU scaling on GIL builds at the price of
            per-process plan compiles.
        deadline_seconds / budget:
            Per-batch overrides of the engine defaults, applied to
            every query's execution context (each query still gets its
            own deadline measured from its own start).  Validated
            upfront: a negative deadline or non-positive budget raises
            :class:`ValueError` before any query runs.

        Returns a :class:`BatchResult` whose ``cache_stats`` carries
        the real plan-cache counter deltas for this batch.
        """
        if workers < 1:
            raise ValueError("workers must be >= 1, got %d" % workers)
        if mode not in ("thread", "process"):
            raise ValueError(
                "mode must be 'thread' or 'process', got %r" % (mode,)
            )
        self._check_overrides(deadline_seconds, budget)
        overrides = {"deadline_seconds": deadline_seconds, "budget": budget}
        queries = list(queries)
        effective_workers = max(1, min(workers, len(queries)))
        start = time.perf_counter()
        if effective_workers == 1:
            before = self.cache_stats()
            results = [
                self._run_single(language, source, target, **overrides)
                for language, source, target in queries
            ]
            cache_stats = self.plan_cache.stats.since(before)
        elif mode == "thread":
            before = self.cache_stats()
            results = self._run_batch_threads(
                queries, effective_workers, overrides
            )
            cache_stats = self.plan_cache.stats.since(before)
        else:
            results, cache_stats = self._run_batch_processes(
                queries, effective_workers, overrides
            )
        return BatchResult(
            results=results,
            seconds=time.perf_counter() - start,
            cache_stats=cache_stats,
            workers=effective_workers,
        )

    # -- parallel schedulers -----------------------------------------------------

    def _run_batch_threads(self, queries, workers, overrides):
        """Strided shards over a thread pool; input-order results."""
        results = [None] * len(queries)

        def run_shard(offset):
            for index in range(offset, len(queries), workers):
                language, source, target = queries[index]
                results[index] = self._run_single(
                    language, source, target, **overrides
                )

        with ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-batch"
        ) as pool:
            futures = [
                pool.submit(run_shard, offset) for offset in range(workers)
            ]
            for future in futures:
                future.result()
        return results

    def _run_batch_processes(self, queries, workers, overrides):
        """Strided shards over worker processes; input-order results."""
        shards = [
            [
                (index, queries[index])
                for index in range(offset, len(queries), workers)
            ]
            for offset in range(workers)
        ]
        engine_kwargs = {
            "plan_cache_size": self.plan_cache.capacity,
            "exact_budget": self.exact_budget,
            "deadline_seconds": self.deadline_seconds,
        }
        results = [None] * len(queries)
        cache_stats = PlanCacheStats()
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = [
                pool.submit(
                    _process_shard, self.graph, engine_kwargs, shard,
                    overrides,
                )
                for shard in shards
            ]
            for future in futures:
                shard_results, shard_stats = future.result()
                for index, result in shard_results:
                    results[index] = result
                cache_stats = cache_stats + shard_stats
        return results, cache_stats
