"""Vectorized multi-query execution: one CSR sweep answers a plan group.

A batch workload is rarely a set of unrelated questions.  Serving
traffic asks the *same few languages* against many endpoint pairs, and
the per-query engine re-walks the same product graph — minimal DFA ×
compiled CSR graph — once per query.  This module collapses that
redundancy: queries grouped on one plan key advance **together** through
a single multi-source product-graph expansion over the frozen CSR
arrays.

The sweep is a synchronized-layer BFS over *walks* (simplicity is not
enforced), which is exactly what makes it sound as a batch filter:

* **negatives are proofs** — if no L-labeled walk from ``source``
  reaches ``target`` in an accepting DFA state, then certainly no
  *simple* L-labeled path exists, so the sweep's NOT_FOUND answers are
  final (the same argument behind the engine's reachability-index
  short-circuit, but exact w.r.t. the language instead of the label
  mask);
* **positives are only witnesses** — an accepting walk may repeat
  vertices, so members that accept are peeled out of the sweep and
  handed back to the per-query solver, which recomputes the authoritative
  shortest *simple* path with a fresh
  :class:`~repro.execution.ExecutionContext`.  Grouped execution is
  therefore bit-identical, path for path, to serial execution.

State per product node is one Python big integer — bit ``i`` set means
group member ``i``'s frontier occupies that node — so one dict update
advances every query that reached the node, and acceptance peels single
bits as ``(target, accepting state)`` nodes are discovered.  Dead DFA
states (no accepting state reachable) are pruned at expansion time via
the shared :func:`~repro.core.product.live_state_row`, and witness
walks are reconstructed per member from the shared arrival log.

Budgets and deadlines stay per query through
:class:`~repro.execution.GroupExecution`: every sweep round is charged
to every member it advanced, and a member whose own contract trips is
peeled without disturbing the rest of the group.  (The engine only
sweeps unbudgeted groups — see :meth:`QueryEngine.run_batch` — but the
accounting holds for direct callers.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterator

from ..core.product import live_state_row, transition_rows

if TYPE_CHECKING:
    from ..execution import GroupExecution
    from ..graphs.view import GraphView
    from .plan import QueryPlan


@dataclass
class VectorizedBatchStats:
    """Counters for one vectorized :meth:`QueryEngine.run_batch` run.

    Summed across workers in parallel modes (groups never span
    workers, so the totals match what a serial vectorized run of the
    same batch would report).
    """

    #: Distinct plan-key groups the batch planner formed.
    groups: int = 0
    #: Multi-source product sweeps actually run (a group below the
    #: ``group_min_size`` threshold, or on an unsweepable view/plan,
    #: forms but never sweeps).
    sweeps: int = 0
    #: Queries that entered a plan-key group (the rest had no plan key
    #: and ran per query).
    grouped_queries: int = 0
    #: Group members answered from the result cache before the sweep.
    peeled_cache_hits: int = 0
    #: Group members proven NOT_FOUND by the reachability index before
    #: the sweep.
    peeled_short_circuits: int = 0
    #: Group members proven NOT_FOUND by a sweep (no solver ran).
    swept_negatives: int = 0
    #: Group members answered by the per-query solver path: sweep
    #: positives, expired members, and members of unswept groups.
    fallback_solves: int = 0
    #: Duplicate endpoint pairs replayed per query after their group
    #: resolved (serial-identical result-cache accounting).
    deferred_duplicates: int = 0

    def as_dict(self) -> dict[str, int]:
        """JSON-safe shape (used by the service batch payload)."""
        return {
            "groups": self.groups,
            "sweeps": self.sweeps,
            "grouped_queries": self.grouped_queries,
            "peeled_cache_hits": self.peeled_cache_hits,
            "peeled_short_circuits": self.peeled_short_circuits,
            "swept_negatives": self.swept_negatives,
            "fallback_solves": self.fallback_solves,
            "deferred_duplicates": self.deferred_duplicates,
        }

    def __add__(self, other: object) -> "VectorizedBatchStats":
        if not isinstance(other, VectorizedBatchStats):
            return NotImplemented
        return VectorizedBatchStats(
            groups=self.groups + other.groups,
            sweeps=self.sweeps + other.sweeps,
            grouped_queries=self.grouped_queries + other.grouped_queries,
            peeled_cache_hits=(
                self.peeled_cache_hits + other.peeled_cache_hits
            ),
            peeled_short_circuits=(
                self.peeled_short_circuits + other.peeled_short_circuits
            ),
            swept_negatives=self.swept_negatives + other.swept_negatives,
            fallback_solves=self.fallback_solves + other.fallback_solves,
            deferred_duplicates=(
                self.deferred_duplicates + other.deferred_duplicates
            ),
        )


def iter_members(bits: int) -> Iterator[int]:
    """Set bit positions of ``bits``, ascending (member decode)."""
    while bits:
        low = bits & -bits
        yield low.bit_length() - 1
        bits ^= low


class SweepOutcome:
    """What one group sweep decided about its members.

    ``positives`` hold members with a witnessed accepting *walk* (they
    must be re-solved per query for the simple-path answer);
    ``negatives`` are proven NOT_FOUND; ``expired`` members tripped
    their own budget/deadline mid-sweep and must re-run per query.
    """

    __slots__ = (
        "positives",
        "negatives",
        "expired",
        "rounds",
        "_group",
        "_num_states",
        "_seed",
        "_accept_at",
        "_arrivals",
    )

    def __init__(
        self,
        group: "GroupExecution",
        num_states: int,
        seed: dict[int, int],
        accept_at: dict[int, int],
        arrivals: dict[int, list[tuple[int, int, int]]],
    ) -> None:
        self.positives: list[int] = []
        self.negatives: list[int] = []
        self.expired: dict[int, Exception] = {}
        #: Synchronized BFS layers the sweep ran.
        self.rounds: int = 0
        self._group = group
        self._num_states = num_states
        self._seed = seed
        self._accept_at = accept_at
        self._arrivals = arrivals

    def steps_of(self, member: int) -> int:
        """Sweep rounds charged to ``member`` (its reported steps)."""
        return self._group.steps_of(member)

    def witness_walk(self, member: int) -> tuple[list[int], list[int]]:
        """The accepting L-walk recorded for a positive member.

        Returns ``(vertex_ids, label_ids)`` from the member's source to
        its target; the walk may repeat vertices (it is *not* the
        simple-path answer — the per-query solver computes that).
        Reconstructed from the shared arrival log: a member's bit
        enters each product node at most once, so following the unique
        arrival event carrying the bit walks back to the member's own
        seed.  Raises :class:`KeyError` for members that never
        accepted.
        """
        node = self._accept_at[member]
        seed = self._seed[member]
        num_states = self._num_states
        bit = 1 << member
        vertices = [node // num_states]
        labels: list[int] = []
        while node != seed:
            for previous, label_id, bits in self._arrivals[node]:
                if bits & bit:
                    labels.append(label_id)
                    node = previous
                    vertices.append(node // num_states)
                    break
            else:  # pragma: no cover - impossible by construction
                raise KeyError(
                    "no arrival event for member %d at node %d"
                    % (member, node)
                )
        vertices.reverse()
        labels.reverse()
        return vertices, labels


def sweepable(view: "GraphView", plan: "QueryPlan",
              strategies: tuple[str, ...]) -> bool:
    """True when ``plan``'s group can run the shared CSR sweep.

    Requires CSR bulk adjacency (dict-backed views fall back to
    per-query solving) and one of the known unweighted strategies —
    anything exotic a future plan might carry falls back too.
    """
    if plan.strategy not in strategies:
        return False
    if view.kind != "csr":
        return False
    return view.num_labels == 0 or view.out_csr(0) is not None


# invariant: hot-loop
def sweep_group(
    view: "GraphView",
    plan: "QueryPlan",
    pending: list[tuple[int, int, int]],
    group: "GroupExecution",
) -> SweepOutcome:
    """Advance every pending ``(member, source_id, target_id)`` at once.

    One synchronized-layer BFS over the product graph (minimal DFA ×
    CSR arrays): the frontier maps packed product nodes
    ``vertex_id * |Q| + state`` to member bitmaps, so each node is
    expanded once per round no matter how many queries occupy it.
    Members peel out as they are decided — acceptance at their target
    (positive witness), frontier exhaustion (proven negative), or a
    tripped per-member budget/deadline (expired) — and every round is
    charged to every member still riding the sweep, keeping reported
    steps independent of scheduling.
    """
    dfa: Any = plan.solver.language.dfa
    num_states: int = dfa.num_states
    rows = transition_rows(dfa, view)
    live = live_state_row(dfa)
    accept_row = bytearray(num_states)
    for state in dfa.accepting:
        accept_row[state] = 1
    num_labels = view.num_labels
    csr = []
    for label_id in range(num_labels):
        pair = view.out_csr(label_id)
        if pair is None:
            raise ValueError(
                "sweep_group needs CSR bulk adjacency "
                "(view %r has none)" % (view.kind,)
            )
        csr.append(pair)
    initial: int = dfa.initial
    initial_accepts = bool(accept_row[initial])
    initial_live = bool(live[initial])

    seed: dict[int, int] = {}
    accept_at: dict[int, int] = {}
    arrivals: dict[int, list[tuple[int, int, int]]] = {}
    outcome = SweepOutcome(group, num_states, seed, accept_at, arrivals)

    target_bits: dict[int, int] = {}
    frontier: dict[int, int] = {}
    reached: dict[int, int] = {}
    active = 0
    for member, source_id, target_id in pending:
        bit = 1 << member
        node = source_id * num_states + initial
        seed[member] = node
        if initial_accepts and source_id == target_id:
            # ε ∈ L and the query is source → source: the empty path
            # answers it, but the per-query solver owns the answer.
            accept_at[member] = node
            outcome.positives.append(member)
            continue
        if not initial_live:
            # L is empty from the initial state: nothing to sweep.
            outcome.negatives.append(member)
            continue
        target_bits[target_id] = target_bits.get(target_id, 0) | bit
        active |= bit
        reached[node] = reached.get(node, 0) | bit
        frontier[node] = frontier.get(node, 0) | bit

    while frontier and active:
        for member in group.charge(list(iter_members(active))):
            outcome.expired[member] = group.expired[member]
            active &= ~(1 << member)
        if not active:
            break
        outcome.rounds += 1
        next_frontier: dict[int, int] = {}
        for node, bits in frontier.items():
            bits &= active
            if not bits:
                continue
            vertex_id, state = divmod(node, num_states)
            for label_id in range(num_labels):
                row = rows[label_id]
                if row is None:
                    continue
                next_state = row[state]
                if not live[next_state]:
                    continue
                indptr, targets = csr[label_id]
                lo = indptr[vertex_id]
                hi = indptr[vertex_id + 1]
                accepts = accept_row[next_state]
                for position in range(lo, hi):
                    successor = targets[position]
                    next_node = successor * num_states + next_state
                    seen = reached.get(next_node, 0)
                    new_bits = bits & ~seen
                    if not new_bits:
                        continue
                    reached[next_node] = seen | new_bits
                    arrivals.setdefault(next_node, []).append(
                        (node, label_id, new_bits)
                    )
                    if accepts:
                        hit = new_bits & target_bits.get(successor, 0)
                        if hit:
                            for member in iter_members(hit):
                                accept_at[member] = next_node
                                outcome.positives.append(member)
                            active &= ~hit
                            new_bits &= ~hit
                            bits &= active
                            if not new_bits:
                                continue
                    next_frontier[next_node] = (
                        next_frontier.get(next_node, 0) | new_bits
                    )
        # Members whose own frontier died this round are decided: no
        # L-walk reaches their target, so NOT_FOUND is proven for them
        # even while other members keep sweeping.
        union = 0
        for bits in next_frontier.values():
            union |= bits
        finished = active & ~union
        if finished:
            for member in iter_members(finished):
                outcome.negatives.append(member)
            active &= ~finished
        frontier = next_frontier

    for member in iter_members(active):
        outcome.negatives.append(member)
    return outcome
