"""repro.engine — indexed graphs, cached query plans, batch execution.

The trichotomy solvers are correct one query at a time, but a workload
of many queries repeats two kinds of work:

**Per-graph work.**  ``DbGraph`` stores adjacency as dicts of sets; the
solvers want a *deterministic* neighbour order, which the seed obtained
by re-sorting adjacency by ``repr`` at every expansion.
:class:`IndexedGraph` compiles the graph once: vertices become
contiguous ints, forward and reverse adjacency become pre-sorted
tuples, and each label gets CSR-style ``indptr``/``targets`` arrays —
forward *and* reverse — for label-restricted traversal.  Its frozen
:class:`~repro.engine.indexed.CsrView` implements the integer-native
:class:`~repro.graphs.view.GraphView` API the solver cores walk, so
every engine query runs on precompiled int adjacency end to end — and
returns bit-identical paths to a direct solve on the ``DbGraph``'s own
dict-backed view, because both views share the canonical repr order.
(The compiled graph also duck-types the ``DbGraph`` read API for
callers that want name-level reads.)

**Per-language work.**  Answering ``solve_rspq(regex, ...)`` parses the
regex, determinises and minimises the automaton, classifies it against
the trichotomy, and (for trC languages) computes a Ψtr decomposition —
all before touching the graph.  A :class:`~repro.engine.plan.QueryPlan`
does that once; :class:`QueryEngine` keeps plans in an LRU
:class:`~repro.engine.plan.PlanCache` keyed by regex text (or by
canonical minimal-DFA signature for ``Language`` objects), so repeated
languages skip straight to the search.

When does compilation pay off?
------------------------------

* **Many queries, one graph** — the target workload.  Graph compilation
  is one O(V + E) pass amortised over the whole batch, and each plan is
  amortised over every query that shares its language.  On a mixed
  100-query workload the engine is several times faster than per-query
  ``solve_rspq`` (``benchmarks/bench_engine_batch.py`` asserts ≥ 3×).
* **One query, one graph** — roughly break-even: you pay one graph
  pass and one plan compile, the same work ``solve_rspq`` does, minus
  the re-sorting the solvers no longer repeat.
* **Mutating graphs** — the compiled view is a snapshot; recompile
  after mutation (``QueryEngine(IndexedGraph(graph))``).  If the graph
  changes on every query, stay with ``solve_rspq`` on the raw
  ``DbGraph``, whose own sorted-adjacency caches invalidate safely.

Parallel batches
----------------

Plans are frozen and the solvers re-entrant — all per-query state
(work counters, budget, optional deadline) travels in an
:class:`~repro.execution.ExecutionContext` — so one cached plan can
serve many in-flight queries at once.  ``run_batch(queries, workers=N)``
shards the workload over a thread pool: a plan is compiled exactly once
per distinct language even when workers race on it (single-flight), the
results come back in input order, identical path-for-path to serial
execution, and failures stay isolated per query.
``mode="process"`` swaps in worker processes (private engines over the
same compiled graph) for CPU scaling on GIL builds.
``BatchResult.cache_stats`` and ``QueryEngine.cache_stats()`` report
the real plan-cache counters (hits / misses / evictions / compiles).

Entry points
------------

* ``QueryEngine(graph).run_batch([(language, source, target), ...],
  workers=N, mode="thread")`` — batch evaluation with per-query stats
  (strategy, solver steps, plan cache hit, seconds), real plan-cache
  counters, and a ``summary()``.
* ``QueryEngine(graph).query(language, source, target)`` — one query.
* ``IndexedGraph(graph)`` — the compiled view, usable directly with any
  solver in :mod:`repro.algorithms` / :mod:`repro.core`.
* CLI: ``repro batch GRAPH QUERIES --workers N --jsonl OUT`` (see
  ``repro batch --help``).
"""

from .indexed import IndexedGraph
from .plan import PlanCache, PlanCacheStats, QueryPlan, group_by_plan, plan_key
from .portfolio import (
    CONFIDENCE_CERTIFIED,
    CONFIDENCE_PROBABILISTIC,
    PortfolioOutcome,
    PortfolioSolver,
    RungReport,
)
from .vectorized import VectorizedBatchStats
from .engine import (
    STRATEGY_ERROR,
    BatchResult,
    EngineResult,
    QueryEngine,
    QueryStats,
    ResultCacheStats,
)

__all__ = [
    "BatchResult",
    "CONFIDENCE_CERTIFIED",
    "CONFIDENCE_PROBABILISTIC",
    "EngineResult",
    "IndexedGraph",
    "PlanCache",
    "PlanCacheStats",
    "PortfolioOutcome",
    "PortfolioSolver",
    "QueryEngine",
    "QueryPlan",
    "QueryStats",
    "ResultCacheStats",
    "RungReport",
    "STRATEGY_ERROR",
    "VectorizedBatchStats",
    "group_by_plan",
    "plan_key",
]
