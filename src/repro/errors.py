"""Exception hierarchy for the repro library.

All errors raised by this package derive from :class:`ReproError`, so that
callers can catch library failures with a single ``except`` clause while
still distinguishing the individual failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro package."""


class RegexSyntaxError(ReproError):
    """Raised when a regular expression cannot be parsed.

    Attributes
    ----------
    text:
        The full input that failed to parse.
    position:
        Zero-based offset of the offending character (best effort).
    """

    def __init__(self, message, text="", position=None):
        super().__init__(message)
        self.text = text
        self.position = position


class GraphError(ReproError):
    """Raised for structural problems in a graph (unknown vertex, ...)."""


class AutomatonError(ReproError):
    """Raised for malformed automata (missing states, partial DFA, ...)."""


class NotInTrCError(ReproError):
    """Raised when a trC-only operation is applied to a non-trC language.

    Carries the Property-(1) witness when one is available so the caller
    can inspect *why* the language is intractable.
    """

    def __init__(self, message, witness=None):
        super().__init__(message)
        self.witness = witness


class BudgetExceededError(ReproError):
    """Raised when an exponential-time solver exceeds its work budget.

    The exact backtracking solver is worst-case exponential; callers can
    bound the number of search steps and receive this error instead of an
    unbounded run.
    """

    def __init__(self, message, steps=0):
        super().__init__(message)
        self.steps = steps


class DeadlineExceededError(ReproError):
    """Raised when a query runs past its wall-clock deadline.

    Deadlines are carried by :class:`repro.execution.ExecutionContext`
    and checked periodically inside the solvers' hot loops, so a
    runaway query is abandoned close to (not exactly at) the deadline.
    """

    def __init__(self, message, steps=0):
        super().__init__(message)
        self.steps = steps


class SnapshotError(ReproError):
    """Raised when a compiled-graph snapshot cannot be written or read.

    Covers unsupported vertex types at save time and, at load time,
    missing/truncated files, bad magic, unsupported format versions and
    checksum mismatches (see :mod:`repro.service.snapshot`).
    """


class ServiceError(ReproError):
    """Raised for query-service failures (unknown graph, bad request).

    Attributes
    ----------
    status:
        The HTTP status the service layer maps this error to (also set
        on client-side errors from the response status).
    retry_after:
        Seconds after which the client should retry, or None.  Sent as
        a ``Retry-After`` header and in the structured error body for
        429/503 responses.
    error_type:
        Short machine-readable error category for structured error
        bodies (e.g. ``"overloaded"``, ``"worker_crash"``), or None.
    """

    def __init__(self, message, status=400, retry_after=None,
                 error_type=None):
        super().__init__(message)
        self.status = status
        self.retry_after = retry_after
        self.error_type = error_type


class ServiceOverloadedError(ServiceError):
    """Raised when admission control rejects a request (server full)."""

    def __init__(self, message, status=429, retry_after=None,
                 error_type="overloaded"):
        super().__init__(message, status=status, retry_after=retry_after,
                         error_type=error_type)


class WorkerCrashError(ReproError):
    """Raised when a pre-fork pool worker dies answering a request.

    The pool (:class:`repro.service.workers.WorkerPool`) respawns
    crashed workers automatically with exponential backoff and retries
    the request on a healthy sibling (queries are pure, so a retry is
    safe); this error surfaces only after the retry budget is spent.
    """
