"""The Ψtr regular-expression fragment (Section 3.5, Theorem 4).

Ψtr-terms are ``(w + ε)`` and ``(A≥k + ε)``; a Ψtr-sequence is a
concatenation ``w φ1 … φl w′`` of terms between two plain words; the
fragment Ψtr is the set of finite disjunctions of Ψtr-sequences.
Theorem 4: L ∈ trC iff L is recognised by a Ψtr expression.

This module provides:

* :class:`StarTerm` / :class:`OptionalWordTerm` / :class:`PsitrSequence`
  / :class:`PsitrExpression` — the fragment's AST, compilable to NFAs;
* :func:`extract` — a syntactic extractor turning an ordinary regex AST
  into an equivalent Ψtr expression when the shape allows (this is how
  the tractable solver obtains its anchor decompositions in practice);
* :func:`synthesize` — a best-effort DFA → Ψtr synthesizer in the spirit
  of Lemma 18 (component chains with validated repetition bounds); every
  result is *verified equivalent* to the input language before being
  returned, so a successful synthesis is always correct.

The anchored simple-path solver (:mod:`repro.core.nice_paths`) consumes
:class:`PsitrSequence` objects directly.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from itertools import islice
from typing import FrozenSet, Tuple

from ..errors import NotInTrCError, ReproError
from ..languages import Language
from ..languages.nfa import empty_nfa, nfa_from_ast, word_nfa
from ..languages.regex import ast as rx
from ..languages.regex import builder
from ..languages.analysis import (
    internal_alphabet,
    looping_states,
    strongly_connected_components,
)
from .trc import _as_minimal_dfa, is_in_trc

#: Cap on the number of sequences produced by distributing unions /
#: character classes during extraction.
_MAX_SEQUENCES = 512


@dataclass(frozen=True)
class StarTerm:
    """The term ``(A≥k + ε)``: the empty word or ≥ k letters from A."""

    symbols: FrozenSet[str]
    min_count: int

    def __post_init__(self):
        if self.min_count < 1:
            raise ValueError("min_count must be >= 1 (A≥0 + ε is A* = A≥1 + ε)")
        if not self.symbols:
            raise ValueError("StarTerm needs at least one symbol")

    def to_regex(self):
        """The term as an ordinary regex AST."""
        return builder.optional(
            builder.at_least(self.symbols, self.min_count)
        )

    def __str__(self):
        return "([%s]>=%d + ε)" % ("".join(sorted(self.symbols)), self.min_count)


@dataclass(frozen=True)
class OptionalWordTerm:
    """The term ``(w + ε)`` for a non-empty concrete word ``w``."""

    word: str

    def __post_init__(self):
        if not self.word:
            raise ValueError("OptionalWordTerm needs a non-empty word")

    def to_regex(self):
        """The term as an ordinary regex AST."""
        return builder.optional(builder.word(self.word))

    def __str__(self):
        return "(%s + ε)" % self.word


@dataclass(frozen=True)
class PsitrSequence:
    """A Ψtr-sequence ``lead · φ1 … φl · trail``."""

    lead: str
    terms: Tuple
    trail: str

    def __post_init__(self):
        for term in self.terms:
            if not isinstance(term, (StarTerm, OptionalWordTerm)):
                raise TypeError("invalid Ψtr term %r" % (term,))

    def to_regex(self):
        """The sequence as an ordinary regex AST."""
        parts = [builder.word(self.lead)]
        parts.extend(term.to_regex() for term in self.terms)
        parts.append(builder.word(self.trail))
        return builder.concat(*parts)

    def to_nfa(self):
        """Compile the sequence to an NFA."""
        nfa = word_nfa(self.lead)
        for term in self.terms:
            nfa = nfa.concat(nfa_from_ast(term.to_regex()))
        return nfa.concat(word_nfa(self.trail))

    def alphabet(self):
        """Letters occurring anywhere in the sequence."""
        letters = set(self.lead) | set(self.trail)
        for term in self.terms:
            if isinstance(term, StarTerm):
                letters |= term.symbols
            else:
                letters |= set(term.word)
        return letters

    def min_word_length(self):
        """Length of the shortest word matching the sequence."""
        return len(self.lead) + len(self.trail)

    def __str__(self):
        middle = " ".join(str(term) for term in self.terms)
        pieces = [piece for piece in (self.lead, middle, self.trail) if piece]
        return " ".join(pieces) if pieces else "ε"


@dataclass(frozen=True)
class PsitrExpression:
    """A disjunction of Ψtr-sequences — a full Ψtr expression."""

    sequences: Tuple[PsitrSequence, ...]

    def to_regex(self):
        """The whole expression as an ordinary regex AST."""
        if not self.sequences:
            return rx.Empty()
        return builder.union(*(seq.to_regex() for seq in self.sequences))

    def to_nfa(self):
        """Compile the expression to an NFA (union of sequences)."""
        if not self.sequences:
            return empty_nfa()
        nfa = self.sequences[0].to_nfa()
        for sequence in self.sequences[1:]:
            nfa = nfa.union(sequence.to_nfa())
        return nfa

    def to_language(self, alphabet=None):
        """Compile to a :class:`Language` (minimal DFA built)."""
        return Language(self.to_nfa(), alphabet=alphabet)

    def alphabet(self):
        """Letters occurring anywhere in the expression."""
        letters = set()
        for sequence in self.sequences:
            letters |= sequence.alphabet()
        return letters

    def __str__(self):
        if not self.sequences:
            return "∅"
        return "  +  ".join(str(seq) for seq in self.sequences)


def equivalent_to(expression, lang_or_dfa):
    """True iff the Ψtr expression recognises exactly the language."""
    dfa = _as_minimal_dfa(lang_or_dfa)
    compiled = Language(expression.to_nfa(), alphabet=dfa.alphabet)
    return compiled.dfa.equivalent(dfa)


# =========================================================================
# Extraction: ordinary regex AST -> Ψtr expression (syntactic)
# =========================================================================


class _NotPsitr(Exception):
    """Internal: the AST shape does not fit the fragment."""


def _atom_class(node):
    """Letter set of an atomic node, or None.

    Unions of single letters (``a + b``) count as character classes,
    matching the paper's habit of writing ``(a + b)*`` for ``[ab]*``.
    """
    if isinstance(node, rx.Literal):
        return frozenset((node.symbol,))
    if isinstance(node, rx.CharClass):
        return frozenset(node.symbols)
    if isinstance(node, rx.Union):
        letters = set()
        for part in node.parts:
            sub = _atom_class(part)
            if sub is None or isinstance(part, rx.Union):
                return None
            letters |= sub
        return frozenset(letters)
    return None


def _analyze_run(node):
    """Analyze a candidate ``A≥k``/classword body.

    Returns ``(classes, star_class, count)`` where ``classes`` is the
    list of mandatory single-letter classes when there is no star part,
    ``star_class`` is the class ``A`` when the body contains an ``A*`` /
    ``A+`` / ``A{m,}`` piece, and ``count`` is the mandatory letter count
    ``k``.  Raises :class:`_NotPsitr` on unsupported shapes.
    """
    parts = node.parts if isinstance(node, rx.Concat) else (node,)
    classes = []
    star_class = None
    count = 0

    def merge_star(cls):
        nonlocal star_class
        if star_class is not None and star_class != cls:
            raise _NotPsitr()
        star_class = cls

    for part in parts:
        cls = _atom_class(part)
        if cls is not None:
            classes.append(cls)
            count += 1
            continue
        if isinstance(part, rx.Star):
            inner = _atom_class(part.inner)
            if inner is None:
                raise _NotPsitr()
            merge_star(inner)
            continue
        if isinstance(part, rx.Plus):
            inner = _atom_class(part.inner)
            if inner is None:
                raise _NotPsitr()
            merge_star(inner)
            classes.append(inner)
            count += 1
            continue
        if isinstance(part, rx.Repeat):
            inner = _atom_class(part.inner)
            if inner is None:
                raise _NotPsitr()
            if part.high is None:
                merge_star(inner)
                classes.extend([inner] * part.low)
                count += part.low
            elif part.high == part.low:
                classes.extend([inner] * part.low)
                count += part.low
            else:
                raise _NotPsitr()
            continue
        raise _NotPsitr()
    if star_class is not None:
        # Every mandatory letter must come from the star's own class for
        # the body to read as A≥k.
        for cls in classes:
            if not cls <= star_class:
                raise _NotPsitr()
    return classes, star_class, count


def _expand_classword(classes):
    """All concrete words obtainable from a list of letter classes."""
    words = [""]
    for cls in classes:
        words = [word + letter for word in words for letter in sorted(cls)]
        if len(words) > _MAX_SEQUENCES:
            raise _NotPsitr()
    return words


# Internal factor markers used while scanning a sequence.
_WORD = "word"          # mandatory concrete word(s)
_OPTWORD = "optword"    # (w + ε) with word alternatives
_STAR = "star"          # (A≥k + ε)


def _classify_factor(node):
    """Classify one concatenation factor into Ψtr building blocks.

    Returns a list of ``(kind, payload)`` factors; a single syntactic
    factor may expand to ``[word(A^k), star(A, 1)]`` for a bare ``A≥k``.
    """
    if isinstance(node, rx.Epsilon):
        return []
    # Optional wrappers: (X)?, X + ε
    inner_options = None
    if isinstance(node, rx.Optional):
        inner_options = [node.inner]
    elif isinstance(node, rx.Union):
        branches = list(node.parts)
        if any(isinstance(branch, rx.Epsilon) for branch in branches):
            inner_options = [
                branch
                for branch in branches
                if not isinstance(branch, rx.Epsilon)
            ]
    if inner_options is not None:
        stars = []
        words = []
        for option in inner_options:
            classes, star_class, count = _analyze_run(option)
            if star_class is not None:
                stars.append(StarTerm(star_class, max(count, 1)))
            else:
                words.extend(_expand_classword(classes))
        factors = []
        if stars or words:
            factors.append((_OPTWORD if not stars else _STAR, (stars, words)))
        return factors
    # Bare factor.
    classes, star_class, count = _analyze_run(node)
    factors = []
    if star_class is None:
        if classes:
            factors.append((_WORD, _expand_classword(classes)))
        return factors
    if count:
        factors.append((_WORD, _expand_classword(classes)))
    # A* (and the star part of a bare A≥k) is (A≥1 + ε).
    factors.append((_STAR, ([StarTerm(star_class, 1)], [])))
    return factors


def _sequences_from_branch(branch):
    """Ψtr-sequences for one top-level union branch, or raise _NotPsitr."""
    parts = branch.parts if isinstance(branch, rx.Concat) else (branch,)
    factor_lists = []
    for part in parts:
        if isinstance(part, rx.Union):
            # Union factors are either (… + ε) terms / letter classes
            # (handled by _classify_factor) or general alternations; the
            # latter distribute only when the union is the whole branch.
            try:
                factor_lists.append(_classify_factor(part))
                continue
            except _NotPsitr:
                if len(parts) == 1:
                    merged = []
                    for sub in part.parts:
                        merged.extend(_sequences_from_branch(sub))
                    return merged
                raise
        else:
            factor_lists.append(_classify_factor(part))
    # Assemble: cartesian product over word alternatives.
    partials = [([], [""], None)]  # (terms, lead_words, trail_word_state)
    # We build sequences left to right keeping, for each partial, the
    # accumulated terms plus the words pinned so far.  Mandatory words are
    # only legal while no term has been emitted (lead) or after the last
    # term (trail); a second mandatory word after the trail started, or a
    # term after the trail started, violates the fragment.
    sequences = [{"lead": "", "terms": [], "trail": "", "in_trail": False}]

    def fork(base, **changes):
        new = {
            "lead": base["lead"],
            "terms": list(base["terms"]),
            "trail": base["trail"],
            "in_trail": base["in_trail"],
        }
        new.update(changes)
        return new

    for factors in factor_lists:
        for kind, payload in factors:
            next_sequences = []
            for seq in sequences:
                if kind == _WORD:
                    for word in payload:
                        if not word:
                            next_sequences.append(fork(seq))
                            continue
                        if not seq["terms"] and not seq["in_trail"]:
                            next_sequences.append(
                                fork(seq, lead=seq["lead"] + word)
                            )
                        else:
                            next_sequences.append(
                                fork(
                                    seq,
                                    trail=seq["trail"] + word,
                                    in_trail=True,
                                )
                            )
                else:
                    stars, words = payload
                    if seq["in_trail"]:
                        raise _NotPsitr()
                    for star in stars:
                        next_sequences.append(
                            fork(seq, terms=seq["terms"] + [star])
                        )
                    for word in words:
                        if word:
                            next_sequences.append(
                                fork(
                                    seq,
                                    terms=seq["terms"]
                                    + [OptionalWordTerm(word)],
                                )
                            )
                        else:
                            next_sequences.append(fork(seq))
                    if not stars and not words:
                        next_sequences.append(fork(seq))
            sequences = next_sequences
            if len(sequences) > _MAX_SEQUENCES:
                raise _NotPsitr()
    return [
        PsitrSequence(seq["lead"], tuple(seq["terms"]), seq["trail"])
        for seq in sequences
    ]


def extract(ast_node):
    """Extract a Ψtr expression from a regex AST, or return ``None``.

    The result, when not ``None``, recognises exactly the same language
    (the transformation is syntactic: unions and character classes are
    distributed, ``A^kA*`` shapes are folded into ``A≥k`` terms).
    """
    if isinstance(ast_node, rx.Empty):
        return PsitrExpression(())
    branches = (
        ast_node.parts if isinstance(ast_node, rx.Union) else (ast_node,)
    )
    sequences = []
    try:
        for branch in branches:
            sequences.extend(_sequences_from_branch(branch))
    except _NotPsitr:
        return None
    if len(sequences) > _MAX_SEQUENCES:
        return None
    return PsitrExpression(tuple(sequences))


# =========================================================================
# Synthesis: DFA -> Ψtr expression (best effort, always validated)
# =========================================================================


#: Total units of enumeration work one synthesis may spend, across
#: every connector enumeration and candidate sequence it builds.
#: Synthesis is best-effort: blowing past this raises ReproError,
#: which ``RspqSolver`` turns into the ``decompose_failed`` exact
#: fallback — strictly better than grinding through an exponential
#: prefix tree.  The budget is a deterministic work *count* (never
#: wall-clock), so whether a borderline language synthesizes — and
#: hence which strategy the plan dispatches to — is identical on every
#: machine and every run.
_SYNTHESIS_WORK_BUDGET = 300_000


class _SynthesisBudget:
    """Deterministic work meter shared by one synthesis run.

    Also carries the run's memoised backward-reachability structures:
    the DFA predecessor map (target-independent) and one
    distance-to-targets table per distinct target set, so the repeated
    connector enumerations of a synthesis don't rebuild them.
    """

    __slots__ = ("remaining", "predecessors", "distances")

    def __init__(self, units=_SYNTHESIS_WORK_BUDGET):
        self.remaining = units
        self.predecessors = None
        self.distances = {}

    def charge(self, units=1):
        self.remaining -= units
        if self.remaining < 0:
            raise ReproError(
                "Ψtr synthesis exceeded its work budget of %d units; "
                "falling back to the exact solver" % _SYNTHESIS_WORK_BUDGET
            )


def _transit_words(dfa, source, targets, allowed_skip, bound, budget):
    """All words of length ≤ bound from ``source`` to any state in
    ``targets`` whose intermediate states avoid looping detours.

    Used to enumerate the finite connector words between component
    stays.  Branches that cannot reach ``targets`` within the length
    budget are pruned via a backward-BFS distance map (sound: pruned
    branches can never contribute a word), and every expansion charges
    the shared synthesis ``budget`` — the result set is exponential in
    ``bound`` for some automata, and a failed synthesis must fail
    *fast*.
    """
    if budget.predecessors is None:
        predecessors = {}
        for (state, _symbol), nxt in dfa._delta.items():
            predecessors.setdefault(nxt, []).append(state)
        budget.predecessors = predecessors
    else:
        predecessors = budget.predecessors
    targets_key = frozenset(targets)
    distance = budget.distances.get(targets_key)
    if distance is None:
        distance = {target: 0 for target in targets}
        queue = deque(targets)
        while queue:
            state = queue.popleft()
            for previous in predecessors.get(state, ()):
                if previous not in distance:
                    distance[previous] = distance[state] + 1
                    queue.append(previous)
        budget.distances[targets_key] = distance

    symbols = sorted(dfa.alphabet)
    results = []
    stack = [(source, "")]
    while stack:
        state, word = stack.pop()
        budget.charge()
        if state in targets and word:
            results.append(word)
            # A target may also be passed through.
        remaining = bound - len(word)
        if remaining <= 0:
            continue
        for symbol in symbols:
            nxt = dfa.transition(state, symbol)
            if nxt not in allowed_skip and nxt not in targets:
                continue
            # nxt must still be able to hit a target in the budget.
            if distance.get(nxt, bound + 1) > remaining - 1:
                continue
            stack.append((nxt, word + symbol))
    return results


def synthesize(lang_or_dfa, max_connector_length=None, max_sequences=256):
    """Best-effort DFA → Ψtr synthesis for a trC language.

    Strategy (a pragmatic rendition of Lemma 18): enumerate chains of
    looping components through the condensation DAG; for each chain,
    generate candidate sequences  ``w0 (Σ_{C1}≥k1 + ε) w1 … (Σ_{Cm}≥km
    + ε) wm`` with connector words enumerated up to a bound and ``k``
    values from the component structure; finally *verify* the union is
    equivalent to L and return it, raising :class:`ReproError` when the
    search fails.  Intended for small automata; the general Lemma-18
    construction with its ``4M²`` bounds is intentionally not
    materialised (see DESIGN.md §3).
    """
    dfa = _as_minimal_dfa(lang_or_dfa)
    if not is_in_trc(dfa):
        raise NotInTrCError("synthesis requires L ∈ trC")
    if dfa.is_empty():
        return PsitrExpression(())
    M = dfa.num_states
    if max_connector_length is None:
        max_connector_length = 2 * M
    components = strongly_connected_components(dfa)
    loops = looping_states(dfa)
    looping_components = [
        component for component in components if component & loops
    ]
    alphabets = {
        component: internal_alphabet(dfa, component)
        for component in looping_components
    }
    # Finite part: all accepted words short enough to avoid any loop.
    # Enumerated lazily against the sequence budget — a language with
    # thousands of short words will fail verification anyway, so bail
    # out before materialising an exponential word list.
    finite_words = list(
        islice(dfa.enumerate_words(max_connector_length), max_sequences + 1)
    )
    if len(finite_words) > max_sequences:
        raise ReproError(
            "Ψtr synthesis: more than %d short words; exceeded the "
            "sequence budget" % max_sequences
        )
    sequences = [
        PsitrSequence(word, (), "") for word in finite_words
    ]
    # Chains of looping components (the condensation is a DAG, so chains
    # are subsequences of the topological order consistent with
    # reachability).
    order = looping_components
    reach = {
        component: dfa.reachable_states(next(iter(component)))
        for component in order
    }

    def chains_from(index, chain):
        yield chain
        for nxt in range(index, len(order)):
            if not chain or order[nxt] != chain[-1]:
                previous = chain[-1] if chain else None
                if previous is None or (order[nxt] & reach[previous]):
                    yield from chains_from(nxt + 1, chain + [order[nxt]])

    seen_chains = set()
    # Dedupe as candidates accumulate: the budget is about how large a
    # union we can afford to *verify* (the union NFA is determinised),
    # so duplicates must not count against it.  All enumeration shares
    # one deterministic work meter, so a pathological automaton fails
    # fast — and fails identically on every machine.
    work = _SynthesisBudget()
    sequences = dict.fromkeys(sequences)
    for chain in chains_from(0, []):
        key = tuple(id(component) for component in chain)
        if not chain or key in seen_chains:
            continue
        seen_chains.add(key)
        chain_candidates = _sequences_for_chain(
            dfa, chain, alphabets, max_connector_length,
            limit=8 * max_sequences, budget=work,
        )
        sequences.update(dict.fromkeys(chain_candidates))
        if len(sequences) > max_sequences:
            raise ReproError(
                "Ψtr synthesis exceeded its %d-sequence budget — "
                "verification of a larger union is not affordable"
                % max_sequences
            )
    expression = PsitrExpression(tuple(sequences))
    if not equivalent_to(expression, dfa):
        raise ReproError(
            "Ψtr synthesis produced a non-equivalent candidate; the "
            "syntactic extractor or a hand-written Ψtr form is required "
            "for this language"
        )
    return expression


def _sequences_for_chain(dfa, chain, alphabets, bound, limit, budget):
    """Candidate sequences whose stars follow a given component chain.

    ``limit`` caps the raw (pre-dedupe) candidate count: connector
    enumeration multiplies across chain links, so one chain could
    otherwise emit millions of sequences before the caller's budget
    check ever sees them.  Exceeding it raises ReproError — synthesis
    is best-effort and must fail fast, not grind.
    """
    # Enumerate connector words between the initial state, each
    # component, and the accepting states, all with length ≤ bound.
    results = []
    non_loop_skip = set(dfa.states())
    first = chain[0]
    entry_words = ["" ] if dfa.initial in first else _transit_words(
        dfa, dfa.initial, first, non_loop_skip, bound, budget
    )
    for entry in entry_words:
        results.extend(
            _extend_chain_sequences(
                dfa, chain, 0, alphabets, bound, entry, [],
                limit - len(results), budget,
            )
        )
        if len(results) > limit:
            raise ReproError(
                "Ψtr synthesis: one component chain emitted more than "
                "%d candidate sequences" % limit
            )
    return results


def _extend_chain_sequences(dfa, chain, index, alphabets, bound, lead, terms,
                            limit, budget):
    component = chain[index]
    alphabet = alphabets[component]
    star = StarTerm(alphabet, 1)
    results = []
    if index + 1 < len(chain):
        connectors = _transit_words(
            dfa,
            next(iter(component)),
            chain[index + 1],
            set(dfa.states()),
            bound,
            budget,
        )
        for connector in connectors:
            for middle in ({OptionalWordTerm(connector)} if connector else set()):
                results.extend(
                    _extend_chain_sequences(
                        dfa,
                        chain,
                        index + 1,
                        alphabets,
                        bound,
                        lead,
                        terms + [star, middle],
                        limit - len(results),
                        budget,
                    )
                )
                if len(results) > limit:
                    return results
    else:
        for state in sorted(component):
            exits = _transit_words(
                dfa, state, dfa.accepting, set(dfa.states()), bound, budget
            )
            if state in dfa.accepting:
                exits = [""] + exits
            for exit_word in exits:
                budget.charge()
                results.append(
                    PsitrSequence(lead, tuple(terms + [star]), exit_word)
                )
                if len(results) > limit:
                    return results
    return results


def decompose(language_obj):
    """Anchor decomposition of a language for the tractable solver.

    Order of attempts:

    1. syntactic extraction from the language's own regex AST,
    2. best-effort synthesis from the minimal DFA.

    Every returned expression is validated equivalent to the language.
    Raises :class:`NotInTrCError` for non-trC input and
    :class:`ReproError` when no decomposition is found.
    """
    if not isinstance(language_obj, Language):
        language_obj = Language(language_obj)
    if not is_in_trc(language_obj.dfa):
        raise NotInTrCError(
            "language is not in trC; RSPQ is NP-complete (Theorem 1)"
        )
    if language_obj.ast is not None:
        expression = extract(language_obj.ast)
        if expression is not None and equivalent_to(
            expression, language_obj.dfa
        ):
            return expression
    return synthesize(language_obj.dfa)
