"""Path annotations and summaries (Definitions 2 and 3).

These are the paper's bookkeeping devices for the NL algorithm:

* the *L-annotation* of a path maps each vertex to the state of the
  minimal DFA reached after reading the path's label prefix
  (Definition 2);
* the *summary* compresses, for every component C of ``A_L`` in which
  the annotated path stays for more than ``N`` vertices (a *long-run
  component*), everything between the first such vertex and the N-th
  from last into a ``Σ*_C`` marker (Definition 3).

The production solver (:mod:`repro.core.nice_paths`) uses the Ψtr-driven
rendition of the same idea; this module exposes the literal definitions
for inspection, tests and the Figure-3 experiment, including the bound
``N = 2M²`` and the paper's Example-2 ``N = 3`` illustration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ..errors import GraphError
from ..languages.analysis import strongly_connected_components
from .trc import _as_minimal_dfa


def default_bound(dfa):
    """The paper's ``N = 2M²``."""
    return 2 * dfa.num_states * dfa.num_states


def annotate(path, lang_or_dfa):
    """The L-annotation of a path (Definition 2).

    Returns the list of DFA states ``[ρ(v_1), …, ρ(v_{m+1})]`` with
    ``ρ(v_1) = i_L`` and ``ρ(v_{i+1}) = Δ(i_L, a_1 … a_i)``.

    Note that the paper's annotation maps *occurrences*, which for a
    simple path coincide with vertices; we return the list indexed by
    position so the function is total for arbitrary paths too.
    """
    dfa = _as_minimal_dfa(lang_or_dfa)
    states = [dfa.initial]
    for label in path.labels:
        states.append(dfa.transition(states[-1], label))
    return states


@dataclass(frozen=True)
class GapMarker:
    """A ``Σ*_C`` marker replacing a long component-internal stretch."""

    symbols: frozenset

    def __str__(self):
        return "Σ*_{%s}" % "".join(sorted(self.symbols))


@dataclass(frozen=True)
class Summary:
    """A path summary (Definition 3).

    ``elements`` interleaves vertices, edge labels and
    :class:`GapMarker` objects, e.g. ``(v1, 'a', v2, Σ*_C, v7, 'c', v8)``.
    ``long_run_components`` is ``lrc(p)`` as a tuple of frozensets of
    DFA states, in path order.
    """

    elements: Tuple
    long_run_components: Tuple

    def vertices(self):
        """The pinned vertices, in order."""
        return [
            element
            for index, element in enumerate(self.elements)
            if index % 2 == 0
        ]

    def num_gaps(self):
        return sum(
            1 for element in self.elements if isinstance(element, GapMarker)
        )

    def size(self):
        """Number of elements — the paper bounds this by ``2M³ + O(M)``."""
        return len(self.elements)

    def __str__(self):
        parts = []
        for element in self.elements:
            parts.append(str(element))
        return "(" + ", ".join(parts) + ")"


def summarize(path, lang_or_dfa, bound=None):
    """The summary of ``path`` w.r.t. ``A_L`` (Definition 3).

    ``bound`` is the paper's ``N`` (default ``2M²``; the paper's
    Example 2 uses ``N = 3`` for readability, pass it explicitly to
    reproduce the example).  For every component hosting more than
    ``bound`` annotated vertices, the stretch from its first vertex to
    its ``bound``-th-from-last is replaced by a ``Σ*_C`` marker.
    """
    dfa = _as_minimal_dfa(lang_or_dfa)
    if bound is None:
        bound = default_bound(dfa)
    if bound < 1:
        raise GraphError("summary bound must be >= 1")
    annotation = annotate(path, dfa)
    components = strongly_connected_components(dfa)
    component_index = {}
    for index, component in enumerate(components):
        for state in component:
            component_index[state] = index
    positions_by_component = {}
    for position, state in enumerate(annotation):
        positions_by_component.setdefault(
            component_index[state], []
        ).append(position)
    # Long-run components: more than `bound` vertices annotated in them.
    long_runs = []
    for index, positions in sorted(positions_by_component.items()):
        if len(positions) >= bound + 1:
            first = positions[0]
            last = positions[-1]
            cut = last - bound  # β'_i = β_i - N
            if cut > first:
                long_runs.append((first, cut, index))
    long_runs.sort()
    # Emit elements, replacing [first..cut] stretches with markers.
    from ..languages.analysis import internal_alphabet

    elements = []
    lrc = []
    position = 0
    run_cursor = 0
    while position < len(path.vertices):
        if elements:
            # Label of the edge entering the current vertex.
            elements.append(path.labels[position - 1])
        elements.append(path.vertices[position])
        if (
            run_cursor < len(long_runs)
            and long_runs[run_cursor][0] == position
        ):
            first, cut, comp_idx = long_runs[run_cursor]
            component = components[comp_idx]
            elements.append(GapMarker(internal_alphabet(dfa, component)))
            elements.append(path.vertices[cut])
            lrc.append(component)
            position = cut + 1
            run_cursor += 1
        else:
            position += 1
    return Summary(tuple(elements), tuple(lrc))
