"""Shared product-graph expansion helpers (DFA × graph, label-native).

Every solver that walks the product of the minimal DFA with a
:class:`~repro.graphs.view.GraphView` needs the same two precomputed
tables before its hot loop starts:

* **per-label transition rows** — ``rows[label_id][state] -> state'``
  with ``None`` rows for graph labels outside the DFA alphabet, so the
  inner loop replaces a string alphabet test plus a keyed transition
  lookup with one list index each;
* **the live-state row** — a flat 0/1 table over DFA states marking
  the co-reachable (accepting-capable) states, so dead product states
  are dropped at expansion time instead of being explored to
  exhaustion.

Historically each solver rebuilt these privately
(:meth:`~repro.algorithms.exact.ExactSolver._transition_rows`, the
tractable solver's segment automaton); the vectorized batch executor
(:mod:`repro.engine.vectorized`) shares the same product expansion
across a whole query group, so the helpers live here once and both
layers call them.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from ..graphs.view import GraphView
    from ..languages.dfa import DFA


def transition_rows(dfa: "DFA", view: "GraphView") -> list[list[int] | None]:
    """Per-label transition rows: ``rows[label_id][state] -> state'``.

    ``None`` rows mark graph labels outside the DFA alphabet — a word
    using such a label is not in L, so product expansion skips the
    whole label with one ``is None`` test.
    """
    states = range(dfa.num_states)
    rows: list[list[int] | None] = []
    for label_id in range(view.num_labels):
        label = view.label_at(label_id)
        if label in dfa.alphabet:
            rows.append([dfa.transition(state, label) for state in states])
        else:
            rows.append(None)
    return rows


def reverse_transition_rows(
    dfa: "DFA",
    view: "GraphView",
    reverse_transitions: dict[tuple[int, str], tuple[int, ...]] | None = None,
) -> list[list[tuple[int, ...]] | None]:
    """``rows[label_id][state_after] -> states_before`` (``None`` = dead label).

    ``reverse_transitions`` is the optional precomputed
    ``(state_after, label) -> states_before`` index (solvers that keep
    one per language pass it in); without it the index is derived from
    the DFA's transition table here.
    """
    if reverse_transitions is None:
        reverse: dict[tuple[int, str], list[int]] = {}
        for state_before, label, state_after in dfa.transitions():
            reverse.setdefault((state_after, label), []).append(state_before)
        reverse_transitions = {
            key: tuple(values) for key, values in reverse.items()
        }
    empty: tuple[int, ...] = ()
    rows: list[list[tuple[int, ...]] | None] = []
    for label_id in range(view.num_labels):
        label = view.label_at(label_id)
        if label in dfa.alphabet:
            rows.append([
                reverse_transitions.get((state, label), empty)
                for state in range(dfa.num_states)
            ])
        else:
            rows.append(None)
    return rows


def live_state_row(dfa: "DFA") -> bytearray:
    """Flat 0/1 row over DFA states: 1 = some accepting state is reachable.

    Product states whose DFA component is dead (``row[state] == 0``)
    can never complete a word of L, so expansions drop them on sight —
    the same pruning the exact solver's goal-distance table implies,
    available before any per-query search runs.
    """
    live = bytearray(dfa.num_states)
    for state in dfa.co_reachable_states():
        live[state] = 1
    return live
