"""Front-door RSPQ solver: classify, then dispatch (Theorem 2 in code).

``RspqSolver`` inspects the language once and picks the regime:

* finite L            → :class:`FiniteLanguageSolver` (the AC0 case),
* infinite L ∈ trC    → :class:`TractableSolver` (the NL case) when an
  anchor decomposition is available, otherwise the exact solver with
  the ``decompose_failed`` warning flag set (surfaced on both the
  solver and every :class:`RspqResult` it produces),
* L ∉ trC             → :class:`ExactSolver` (the NP-complete case; a
  work budget may be supplied).

Results report which strategy ran, so experiments can verify the
dispatch matches the trichotomy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..errors import ReproError
from ..graphs.dbgraph import Path
from ..languages import Language
from ..languages.analysis import useful_symbols
from ..algorithms.bounded import FiniteLanguageSolver
from ..algorithms.exact import ExactSolver
from .nice_paths import TractableSolver
from .psitr import decompose
from .trichotomy import Classification, classify


STRATEGY_FINITE = "finite-AC0"
STRATEGY_TRACTABLE = "trc-nice-path"
STRATEGY_EXACT = "exact-backtracking"


@dataclass
class RspqResult:
    """Outcome of one RSPQ evaluation."""

    found: bool
    path: Optional[Path]
    strategy: str
    classification: Classification
    #: True when L ∈ trC but no Ψtr decomposition could be computed, so
    #: the query silently fell back to the exponential exact solver.
    decompose_failed: bool = False

    @property
    def length(self):
        return None if self.path is None else len(self.path)


class RspqSolver:
    """Evaluate regular simple path queries with the right algorithm.

    Construction does all the per-language work (classification,
    decomposition, sub-solver setup); after that the solver is
    immutable and re-entrant: every query's mutable state lives in the
    :class:`~repro.execution.ExecutionContext` threaded through
    :meth:`shortest_simple_path` / :meth:`solve` / :meth:`exists`, so
    one instance — e.g. inside a cached
    :class:`~repro.engine.plan.QueryPlan` — can serve concurrent
    queries.  Context-less calls remain supported for single-threaded
    use (``last_steps()`` then reads the implicit context).

    Parameters
    ----------
    language:
        :class:`~repro.languages.Language` or regex string.
    exact_budget:
        Step budget handed to the exponential solver when it is used.
    force_exact:
        Skip the tractable machinery (useful for baselines in benches).
    use_reach_pruning:
        Consult the graph view's label-constrained reachability index
        (short-circuiting provably unreachable queries and dropping
        dead product states).  On by default; the differential suite
        pins pruned ≡ unpruned results, path for path.
    """

    def __init__(self, language, exact_budget=None, force_exact=False,
                 use_reach_pruning=True):
        if isinstance(language, str):
            language = Language(language)
        self.language = language
        self.classification = classify(language.dfa, with_witness=False)
        #: Symbols occurring in some word of L — the query's label mask
        #: for the reachability index (everything else is dead-state
        #: plumbing no L-labeled path can use).
        self.used_symbols = useful_symbols(language.dfa)
        self.exact_budget = exact_budget
        self.use_reach_pruning = use_reach_pruning
        self._finite_solver = None
        self._tractable_solver = None
        self._exact_solver = None
        self.strategy = STRATEGY_EXACT
        self.decompose_failed = False
        if force_exact:
            pass
        elif self.classification.finite:
            self._finite_solver = FiniteLanguageSolver(
                language, use_reach_pruning=use_reach_pruning
            )
            self.strategy = STRATEGY_FINITE
        elif self.classification.in_trc:
            try:
                expression = decompose(language)
            except ReproError:
                expression = None
            if expression is not None:
                self._tractable_solver = TractableSolver(
                    language, expression=expression,
                    use_reach_pruning=use_reach_pruning,
                )
                self.strategy = STRATEGY_TRACTABLE
            else:
                # L is tractable but we could not build the anchor
                # decomposition; warn rather than silently go exponential.
                self.decompose_failed = True
        if self.strategy == STRATEGY_EXACT:
            self._exact_solver = ExactSolver(
                language, budget=exact_budget,
                use_reach_pruning=use_reach_pruning,
            )

    def shortest_simple_path(self, graph, source, target, ctx=None):
        """Shortest simple L-labeled path or ``None``.

        ``ctx`` (an :class:`~repro.execution.ExecutionContext`) carries
        the per-query counters and budget/deadline accounting; without
        one, the dispatched solver creates its own and the legacy
        ``last_steps()`` shim reads it afterwards.
        """
        if self._finite_solver is not None:
            return self._finite_solver.shortest_simple_path(
                graph, source, target, ctx=ctx
            )
        if self._tractable_solver is not None:
            return self._tractable_solver.shortest_simple_path(
                graph, source, target, ctx=ctx
            )
        return self._exact_solver.shortest_simple_path(
            graph, source, target, ctx=ctx
        )

    def solve(self, graph, source, target, ctx=None):
        """Full result object with path and strategy information."""
        path = self.shortest_simple_path(graph, source, target, ctx=ctx)
        return RspqResult(
            found=path is not None,
            path=path,
            strategy=self.strategy,
            classification=self.classification,
            decompose_failed=self.decompose_failed,
        )

    def last_steps(self):
        """Work counter of the most recent context-less query.

        Exact: DFS expansions; tractable: anchored-DFS steps; finite:
        words tried.  ``None`` when no query has run yet.  Queries that
        passed an explicit context are invisible here — read their
        counters off the context via :meth:`steps_in` instead.
        """
        if self._finite_solver is not None:
            return self._finite_solver.words_tried
        if self._tractable_solver is not None:
            stats = self._tractable_solver.last_stats
            return None if stats is None else stats.dfs_steps
        return self._exact_solver.steps

    def steps_in(self, ctx):
        """The strategy-relevant work counter recorded on ``ctx``."""
        if self._finite_solver is not None:
            return ctx.words_tried
        if self._tractable_solver is not None:
            return ctx.dfs_steps
        return ctx.steps

    def exists(self, graph, source, target, ctx=None):
        """Decision variant of RSPQ(L)."""
        if self._exact_solver is not None:
            return self._exact_solver.exists(graph, source, target, ctx=ctx)
        return (
            self.shortest_simple_path(graph, source, target, ctx=ctx)
            is not None
        )


def solve_rspq(language, graph, source, target, exact_budget=None, ctx=None):
    """One-shot helper: build a solver and answer a single query."""
    solver = RspqSolver(language, exact_budget=exact_budget)
    return solver.solve(graph, source, target, ctx=ctx)
