"""Polynomial simple-path search for trC languages (Lemmas 12-16).

The paper's NL algorithm enumerates *candidate summaries* — logarithmic
descriptions of a path where each long stay inside an automaton
component is compressed to ``Σ*_C`` — and completes each candidate into
a *nice path* whose compressed gaps are filled with shortest
component-internal paths under the ``acc(i)`` disjointness discipline of
Definition 4.

This module implements the deterministic, practical rendition driven by
the Ψtr decomposition of L (Theorem 4 and the remark following it):

* a Ψtr-sequence ``w0 (A1≥k1+ε) … (Am≥km+ε) w'`` fixes the *shape* of a
  summary: concrete anchored edges for the words and for the first k and
  last k letters of each star term, with a ``A*``-gap in between;
* candidate summaries are enumerated by walking actual graph edges (so
  only realizable anchor tuples are ever considered), pruned by a
  product reachability table (sequence-NFA × graph);
* each complete anchor assignment is completed gap by gap, in path
  order, with BFS-shortest ``A*``-paths avoiding all anchored vertices
  and all earlier ``acc(i)`` balls — exactly Definition 4;
* the minimum over all completions is returned.  By the (adapted)
  Lemma 14, the shortest simple L-labeled path is *nice*, so its own
  anchors appear in the enumeration and its completion is found; hence
  the algorithm is exact and returns a shortest simple L-labeled path.

The whole search runs integer-native over a
:class:`~repro.graphs.view.GraphView`: vertices are contiguous ids,
the pinned/blocked sets are flat bytearrays, symbol classes are label
bitmasks, the live table packs ``(vertex, nfa_state)`` into one int,
and the winning candidate is materialised back to vertex names only at
result construction.

Soundness never depends on the adaptation: every produced path is
checked simple and L-labeled.  Completeness is additionally
cross-validated against the exponential exact solver in the test suite.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from ..errors import GraphError
from ..execution import ExecutionContext
from ..graphs.dbgraph import Path
from ..graphs.view import as_graph_view
from ..languages import Language
from ..languages.analysis import useful_symbols
from .psitr import (
    OptionalWordTerm,
    PsitrExpression,
    StarTerm,
    decompose,
)

# -- internal segment normal form ------------------------------------------------

_WORD = "word"       # mandatory word (lead / trail)
_OPTWORD = "optword"  # (w + ε)
_STAR = "star"       # (A≥k + ε)


def _segments_of(sequence):
    """Normalise a PsitrSequence into the solver's segment list."""
    segments = []
    if sequence.lead:
        segments.append((_WORD, sequence.lead))
    for term in sequence.terms:
        if isinstance(term, OptionalWordTerm):
            segments.append((_OPTWORD, term.word))
        elif isinstance(term, StarTerm):
            segments.append((_STAR, (term.symbols, term.min_count)))
        else:  # pragma: no cover - PsitrSequence already validates
            raise TypeError("unknown term %r" % (term,))
    if sequence.trail:
        segments.append((_WORD, sequence.trail))
    return segments


def _int_segments(view, segments):
    """Segments with letters as label ids and classes as label masks.

    Word letters that label no graph edge become ``None`` (the DFS dead
    end the string search would have hit via an empty successor set);
    star classes become bitmasks over the view's label ids.
    """
    result = []
    for kind, payload in segments:
        if kind == _STAR:
            symbols, min_count = payload
            result.append((kind, (view.label_mask(symbols), min_count)))
        else:
            result.append((kind, view.word_label_ids(payload)))
    return result


def _segments_mask(segments):
    """Union label mask over an integer segment list.

    The only labels any path matching the sequence can carry: word
    letters (``None`` letters label no edge and contribute nothing)
    plus every star class.  Used to gate a sequence against the
    reachability index before any per-sequence structure is built.
    """
    mask = 0
    for kind, payload in segments:
        if kind == _STAR:
            mask |= payload[0]
        else:
            for label_id in payload:
                if label_id is not None:
                    mask |= 1 << label_id
    return mask


def _min_remaining(segments):
    """Minimal number of edges each segment suffix must still contribute."""
    totals = [0] * (len(segments) + 1)
    for index in range(len(segments) - 1, -1, -1):
        kind, payload = segments[index]
        contribution = len(payload) if kind == _WORD else 0
        totals[index] = totals[index + 1] + contribution
    return totals


def _single_label(mask):
    """The label id of a one-bit mask, else ``None`` (0 or multi-bit).

    Single-symbol classes dominate real Ψtr decompositions, and a
    one-label restriction can iterate the view's label-partitioned
    adjacency slice directly instead of scanning every out-edge
    against the mask — the access pattern the CSR layout exists for.
    """
    if mask and not mask & (mask - 1):
        return mask.bit_length() - 1
    return None


# -- sequence NFA for live-set pruning --------------------------------------------


class _SequenceNfa:
    """Tiny positional NFA over an integer segment list, for pruning.

    States are integers.  ``letter_arcs[state]`` is a list of
    ``(label_mask, target)``; ``eps_arcs[state]`` a list of targets.
    The DFS knows exactly which state it is in at each anchored
    position, so the live table ``vertex_id * num_states + state``
    prunes both prefix feasibility (from x) and suffix feasibility
    (to y).
    """

    def __init__(self, segments):
        self.letter_arcs = []
        self.eps_arcs = []
        self.entry = []  # entry state of each segment
        self.star_loop = {}  # segment index -> looping state

        def new_state():
            self.letter_arcs.append([])
            self.eps_arcs.append([])
            return len(self.letter_arcs) - 1

        current = new_state()
        self.start = current
        for index, (kind, payload) in enumerate(segments):
            self.entry.append(current)
            if kind in (_WORD, _OPTWORD):
                begin = current
                for label_id in payload:
                    nxt = new_state()
                    mask = 0 if label_id is None else 1 << label_id
                    self.letter_arcs[current].append((mask, nxt))
                    current = nxt
                if kind == _OPTWORD:
                    self.eps_arcs[begin].append(current)
            else:
                mask, min_count = payload
                begin = current
                for _ in range(min_count):
                    nxt = new_state()
                    self.letter_arcs[current].append((mask, nxt))
                    current = nxt
                # self-loop for additional letters
                self.letter_arcs[current].append((mask, current))
                self.star_loop[index] = current
                after = new_state()
                self.eps_arcs[begin].append(after)
                self.eps_arcs[current].append(after)
                current = after
        self.entry.append(current)
        self.final = current
        self.num_states = len(self.letter_arcs)

    def predecessors(self):
        """Reverse arcs: list per state of (mask, source) and ε sources."""
        rev_letters = [[] for _ in range(self.num_states)]
        rev_eps = [[] for _ in range(self.num_states)]
        for state in range(self.num_states):
            for mask, target in self.letter_arcs[state]:
                rev_letters[target].append((mask, state))
            for target in self.eps_arcs[state]:
                rev_eps[target].append(state)
        return rev_letters, rev_eps


# invariant: hot-loop
def _live_table(view, nfa, source_id, target_id, from_source=None,
                comp_of=None):
    """Flat goal-reachability table over packed ``vertex * |Q| + state``.

    Backward product reachability from ``(target, final)``; simplicity
    is ignored (this is a pruning overapproximation).  The result is a
    bytearray indexed by packed node, so the hot-loop liveness test is
    one array read instead of a set hash.

    The seed intersected this with *forward* reachability from
    ``(source, start)``, but the anchored DFS only ever constructs
    configurations that are forward-reachable by construction — pinned
    runs extend real product walks, and gap exits come from
    :meth:`_SequenceSearch._reach` through the star's own self-loop
    state — so the forward half never pruned anything and is dropped
    (verified behavior-identical, step counts included, by the
    differential suite).

    ``from_source`` (a component filter from the reachability index)
    restricts the backward BFS to vertices the source can reach under
    the sequence's label mask.  Every configuration the anchored DFS
    constructs extends a real product walk from the source, so its
    vertex lies inside that region — the restriction never changes an
    aliveness answer the search can ask, it only shrinks the build.
    """
    num_states = nfa.num_states
    size = view.num_vertices * num_states
    rev_letters, rev_eps = nfa.predecessors()
    in_pairs = view.in_pairs
    in_by_label = view.in_by_label
    rev_info = [
        [(mask, _single_label(mask), source) for mask, source in arcs]
        for arcs in rev_letters
    ]
    backward = bytearray(size)
    stack = []
    node = target_id * num_states + nfa.final
    backward[node] = 1
    stack.append(node)
    while stack:
        node = stack.pop()
        vertex_id, state = divmod(node, num_states)
        for eps_source in rev_eps[state]:
            nxt = vertex_id * num_states + eps_source
            if not backward[nxt]:
                backward[nxt] = 1
                stack.append(nxt)
        for mask, label, nfa_source in rev_info[state]:
            if label is not None:
                sources = in_by_label(vertex_id, label)
            else:
                sources = [
                    graph_source
                    for label_id, graph_source in in_pairs(vertex_id)
                    if mask >> label_id & 1
                ]
            for graph_source in sources:
                if from_source is not None and not (
                    from_source[comp_of[graph_source]]
                ):
                    continue
                nxt = graph_source * num_states + nfa_source
                if not backward[nxt]:
                    backward[nxt] = 1
                    stack.append(nxt)
    return bytes(backward)


# -- candidate anchors and completion ------------------------------------------------


@dataclass
class _Run:
    """A fully pinned stretch of the candidate path (ids / label ids)."""

    vertices: list
    labels: list


@dataclass
class _Gap:
    """A compressed ``A*`` stretch between two pinned vertices."""

    mask: int


class SolverStats:
    """Work counters exposed for the benchmarks.

    Duck-types the charging surface of
    :class:`~repro.execution.ExecutionContext` (which carries the same
    counters plus budget/deadline accounting), so the search internals
    accept either.
    """

    def __init__(self):
        self.candidates = 0
        self.completions = 0
        self.dfs_steps = 0
        self.gap_bfs = 0

    def charge_dfs_step(self):
        self.dfs_steps += 1

    def charge_gap_bfs(self):
        self.gap_bfs += 1

    def count_candidate(self):
        self.candidates += 1

    def count_completion(self):
        self.completions += 1

    def __repr__(self):
        return (
            "SolverStats(candidates=%d, completions=%d, dfs_steps=%d, "
            "gap_bfs=%d)"
            % (self.candidates, self.completions, self.dfs_steps, self.gap_bfs)
        )


def path_weight(path, weight_fn):
    """Total weight of a path under ``weight_fn(u, label, v) -> R+``."""
    return sum(weight_fn(u, label, v) for u, label, v in path.steps())


# invariant: hot-loop
def _gap_distances(view, entry, exit_vertex, mask, blocked, weight_fn,
                   stats):
    """Shortest distances from ``entry`` inside a gap's restrictions.

    Unweighted gaps use BFS; weighted gaps use Dijkstra (the paper's
    remark that the algorithm generalises to db-graphs weighted by
    ``E → R+``).  ``blocked`` is a bytearray over vertex ids.  Returns
    ``(dist, parent, touched, found)``: flat per-vertex distance and
    back-pointer lists, the list of discovered ids, and the exit's
    distance (``None`` when unreachable inside the gap).

    The search stops once every vertex within the exit's distance is
    settled — vertices strictly farther can neither shorten the gap nor
    join its ``acc(i)`` ball (which keeps only ``d <= found``), so
    exploring the rest of the component is pure waste.
    """
    stats.charge_gap_bfs()
    num_vertices = view.num_vertices
    dist = [None] * num_vertices
    parent = [None] * num_vertices
    dist[entry] = 0
    touched = [entry]
    found = None
    out = view.out
    if weight_fn is None:
        queue = deque((entry,))
        while queue:
            current = queue.popleft()
            base = dist[current]
            if found is not None and base >= found:
                break
            base += 1
            for label_id, target in out(current):
                if not mask >> label_id & 1:
                    continue
                if blocked[target] or dist[target] is not None:
                    continue
                dist[target] = base
                parent[target] = (current, label_id)
                touched.append(target)
                queue.append(target)
                if target == exit_vertex:
                    found = base
        return dist, parent, touched, found
    import heapq

    vertex_at = view.vertex_at
    label_at = view.label_at
    heap = [(0, entry)]
    settled = bytearray(num_vertices)
    while heap:
        weight, current = heapq.heappop(heap)
        if settled[current]:
            continue
        if found is not None and weight > found:
            break
        settled[current] = 1
        if current == exit_vertex:
            found = weight
        for label_id, target in out(current):
            if not mask >> label_id & 1 or blocked[target]:
                continue
            step = weight_fn(
                vertex_at(current), label_at(label_id), vertex_at(target)
            )
            if step <= 0:
                raise GraphError(
                    "edge weights must be strictly positive, got %r for "
                    "(%r, %r, %r)"
                    % (
                        step, vertex_at(current), label_at(label_id),
                        vertex_at(target),
                    )
                )
            candidate = weight + step
            previous = dist[target]
            if previous is None or candidate < previous:
                if previous is None:
                    touched.append(target)
                dist[target] = candidate
                parent[target] = (current, label_id)
                heapq.heappush(heap, (candidate, target))
    return dist, parent, touched, found


def _complete_candidate(view, pieces, stats, weight_fn=None):
    """Fill the gaps of a pinned candidate (Definition 4 discipline).

    ``pieces`` alternates _Run and _Gap, starting and ending with runs,
    everything in vertex/label ids.  Returns an id-path
    ``(vertex_ids, label_ids)`` or ``None`` when some gap cannot be
    filled.
    """
    pinned = bytearray(view.num_vertices)
    for piece in pieces:
        if isinstance(piece, _Run):
            for vertex_id in piece.vertices:
                pinned[vertex_id] = 1
    acc_union = set()
    vertices = list(pieces[0].vertices)
    labels = list(pieces[0].labels)
    index = 1
    while index < len(pieces):
        gap = pieces[index]
        next_run = pieces[index + 1]
        entry = vertices[-1]
        exit_vertex = next_run.vertices[0]
        blocked = bytearray(pinned)
        blocked[entry] = 0
        blocked[exit_vertex] = 0
        for vertex_id in acc_union:
            blocked[vertex_id] = 1
        dist, parent, touched, found = _gap_distances(
            view, entry, exit_vertex, gap.mask, blocked, weight_fn, stats
        )
        if found is None or exit_vertex == entry:
            return None
        # acc(i): everything within distance `found` under the gap's
        # restrictions (P_i paths of size w(p) <= length_i, Definition 4).
        acc_union.update(
            vertex_id for vertex_id in touched if dist[vertex_id] <= found
        )
        # Reconstruct the shortest gap path.
        gap_labels = deque()
        gap_vertices = deque()
        cursor = exit_vertex
        while cursor != entry:
            previous, label_id = parent[cursor]
            gap_vertices.appendleft(cursor)
            gap_labels.appendleft(label_id)
            cursor = previous
        vertices.extend(gap_vertices)
        labels.extend(gap_labels)
        # Append the following run (its first vertex is already placed).
        vertices.extend(next_run.vertices[1:])
        labels.extend(next_run.labels)
        index += 2
    if len(set(vertices)) != len(vertices):  # pragma: no cover - discipline
        return None
    return tuple(vertices), tuple(labels)


class _SequenceSearch:
    """Anchored DFS for one Ψtr-sequence on one query (integer-native)."""

    def __init__(self, view, sequence, source_id, target_id, stats,
                 budget=None, weight_fn=None, use_live_pruning=True,
                 reach_index=None, segments=None):
        self.view = view
        self._out = view.out
        self._out_by_label = view.out_by_label
        if segments is None:
            segments = _int_segments(view, _segments_of(sequence))
        self.segments = segments
        self.source_id = source_id
        self.target_id = target_id
        self.stats = stats
        self.budget = budget
        self.weight_fn = weight_fn
        self.use_live_pruning = use_live_pruning
        self.nfa = _SequenceNfa(self.segments)
        if use_live_pruning:
            from_source = comp_of = None
            if reach_index is not None and source_id != target_id:
                from_source = reach_index.comps_from(
                    source_id, _segments_mask(self.segments)
                )
                comp_of = reach_index.comp_of
            self.live = _live_table(
                view, self.nfa, source_id, target_id, from_source, comp_of
            )
        else:
            self.live = None
        self.min_remaining = _min_remaining(self.segments)
        self.best = None          # (vertex_ids, label_ids) or None
        self.best_metric = None
        self._reach_cache = {}
        self._num_nfa_states = self.nfa.num_states
        # arc-target table: _arc_target[state][label_id] -> next state
        # (or None), replacing a per-edge scan of the state's arcs with
        # one list index in the anchored-DFS hot loops.  First matching
        # arc wins, same as the scan it replaces.
        num_labels = view.num_labels
        self._arc_target = [
            [None] * num_labels for _ in range(self._num_nfa_states)
        ]
        for state, arcs in enumerate(self.nfa.letter_arcs):
            row = self._arc_target[state]
            for mask, target in arcs:
                label_id = 0
                while mask:
                    if mask & 1 and row[label_id] is None:
                        row[label_id] = target
                    mask >>= 1
                    label_id += 1

    # -- helpers -----------------------------------------------------------------

    def _alive(self, vertex_id, state):
        if self.live is None:
            return True
        return bool(self.live[vertex_id * self._num_nfa_states + state])

    def _metric(self, id_path):
        vertex_ids, label_ids = id_path
        if self.weight_fn is None:
            return len(label_ids)
        vertex_at = self.view.vertex_at
        label_at = self.view.label_at
        return sum(
            self.weight_fn(vertex_at(u), label_at(label_id), vertex_at(v))
            for u, label_id, v in zip(vertex_ids, label_ids, vertex_ids[1:])
        )

    # invariant: hot-loop
    def _reach(self, vertex_id, mask):
        """Ids reachable from ``vertex_id`` via ≥1 edges in ``mask``
        (unrestricted — a pruning superset), ascending (= repr order)."""
        key = (vertex_id, mask)
        cached = self._reach_cache.get(key)
        if cached is not None:
            return cached
        out = self._out
        out_by_label = self._out_by_label
        single = _single_label(mask)
        seen = set()
        queue = deque((vertex_id,))
        while queue:
            current = queue.popleft()
            if single is not None:
                successors = out_by_label(current, single)
            else:
                successors = [
                    nxt
                    for label_id, nxt in out(current)
                    if mask >> label_id & 1
                ]
            for nxt in successors:
                if nxt not in seen:
                    seen.add(nxt)
                    queue.append(nxt)
        result = tuple(sorted(seen))
        self._reach_cache[key] = result
        return result

    # -- DFS ----------------------------------------------------------------------

    def run(self, best_bound=None):
        self.best_bound = best_bound
        start_run = _Run([self.source_id], [])
        pinned = bytearray(self.view.num_vertices)
        pinned[self.source_id] = 1
        # Pinned length so far (gaps count 1 minimum each), maintained
        # incrementally at every push/pop site so the per-step length
        # prune costs O(1) instead of a walk over the pieces.
        self._pinned_length = 0
        self._search(0, self.nfa.start, [start_run], pinned)
        return self.best

    def _too_long(self, pieces, seg_index):
        if self.weight_fn is not None:
            # Edge counts do not bound weights; skip the length prune.
            return False
        if self.best is not None:
            bound = len(self.best[1])
        elif self.best_bound is not None:
            bound = self.best_bound
        else:
            return False
        return (
            self._pinned_length + self.min_remaining[seg_index] >= bound
        )

    def _search(self, seg_index, state, pieces, pinned):
        self.stats.charge_dfs_step()
        if self.budget is not None and self.stats.dfs_steps > self.budget:
            return
        if self._too_long(pieces, seg_index):
            return
        current = pieces[-1].vertices[-1]
        if state is not None and not self._alive(current, state):
            return
        if seg_index == len(self.segments):
            if current != self.target_id:
                return
            self.stats.count_candidate()
            id_path = _complete_candidate(
                self.view, pieces, self.stats, weight_fn=self.weight_fn
            )
            self.stats.count_completion()
            if id_path is not None:
                metric = self._metric(id_path)
                if self.best is None or metric < self.best_metric:
                    self.best = id_path
                    self.best_metric = metric
            return
        kind, payload = self.segments[seg_index]
        if kind == _WORD:
            self._follow_word(
                seg_index, state, pieces, pinned, payload, optional=False
            )
        elif kind == _OPTWORD:
            self._follow_word(
                seg_index, state, pieces, pinned, payload, optional=True
            )
        else:
            self._follow_star(seg_index, state, pieces, pinned, payload)

    def _next_entry_state(self, seg_index):
        return self.nfa.entry[seg_index + 1]

    def _follow_word(self, seg_index, state, pieces, pinned, word_label_ids,
                     optional):
        if optional:
            # Skip branch: ε for (w + ε).
            self._search(
                seg_index + 1, self._next_entry_state(seg_index), pieces, pinned
            )
        self._follow_letters(
            seg_index,
            state,
            pieces,
            pinned,
            word_label_ids,
            0,
            lambda pcs, pnd: self._search(
                seg_index + 1, self._next_entry_state(seg_index), pcs, pnd
            ),
        )

    # invariant: hot-loop
    def _follow_letters(
        self, seg_index, state, pieces, pinned, word_label_ids, offset,
        continuation,
    ):
        """Pin edges spelling ``word_label_ids[offset:]`` then continue."""
        if offset == len(word_label_ids):
            continuation(pieces, pinned)
            return
        label_id = word_label_ids[offset]
        if label_id is None:
            # The letter labels no edge anywhere: dead end.
            return
        run = pieces[-1]
        current = run.vertices[-1]
        next_state = self._letter_target(state, label_id)
        live = self.live if next_state is not None else None
        num_states = self._num_nfa_states
        vertices = run.vertices
        labels = run.labels
        for target in self._out_by_label(current, label_id):
            if pinned[target]:
                continue
            if live is not None and not live[
                target * num_states + next_state
            ]:
                continue
            vertices.append(target)
            labels.append(label_id)
            pinned[target] = 1
            self._pinned_length += 1
            self._follow_letters(
                seg_index,
                next_state,
                pieces,
                pinned,
                word_label_ids,
                offset + 1,
                continuation,
            )
            self._pinned_length -= 1
            pinned[target] = 0
            vertices.pop()
            labels.pop()

    def _letter_target(self, state, label_id):
        if state is None:
            return None
        return self._arc_target[state][label_id]

    def _follow_star(self, seg_index, state, pieces, pinned, payload):
        mask, min_count = payload
        after_state = self._next_entry_state(seg_index)
        # Branch 1: ε.
        self._search(seg_index + 1, after_state, pieces, pinned)
        # Branch 2: exact pinned matches of length m in [min_count, 2k].
        for length in range(min_count, 2 * min_count + 1):
            self._follow_class_letters(
                state,
                pieces,
                pinned,
                mask,
                length,
                lambda pcs, pnd: self._search(
                    seg_index + 1, after_state, pcs, pnd
                ),
            )
        # Branch 3: k anchors + gap + k anchors (total length >= 2k+1).
        loop_state = self.nfa.star_loop.get(seg_index)

        def after_head(pcs, pnd):
            head_vertex = pcs[-1].vertices[-1]
            live = self.live if loop_state is not None else None
            num_states = self._num_nfa_states
            for exit_vertex in self._reach(head_vertex, mask):
                if pnd[exit_vertex]:
                    continue
                if live is not None and not live[
                    exit_vertex * num_states + loop_state
                ]:
                    continue
                gap = _Gap(mask)
                new_run = _Run([exit_vertex], [])
                pcs.append(gap)
                pcs.append(new_run)
                pnd[exit_vertex] = 1
                self._pinned_length += 1
                self._follow_class_letters(
                    loop_state,
                    pcs,
                    pnd,
                    mask,
                    min_count,
                    lambda pcs2, pnd2: self._search(
                        seg_index + 1, after_state, pcs2, pnd2
                    ),
                )
                self._pinned_length -= 1
                pnd[exit_vertex] = 0
                pcs.pop()
                pcs.pop()

        self._follow_class_letters(
            state, pieces, pinned, mask, min_count, after_head
        )

    def _follow_class_letters(
        self, state, pieces, pinned, mask, count, continuation
    ):
        """Pin ``count`` edges with labels in ``mask``."""
        if count == 0:
            continuation(pieces, pinned)
            return
        run = pieces[-1]
        current = run.vertices[-1]
        arc_row = None if state is None else self._arc_target[state]
        live = self.live
        num_states = self._num_nfa_states
        vertices = run.vertices
        labels = run.labels
        for label_id, target in self._out(current):
            if not mask >> label_id & 1 or pinned[target]:
                continue
            next_state = None if arc_row is None else arc_row[label_id]
            if (
                next_state is not None
                and live is not None
                and not live[target * num_states + next_state]
            ):
                continue
            vertices.append(target)
            labels.append(label_id)
            pinned[target] = 1
            self._pinned_length += 1
            self._follow_class_letters(
                next_state, pieces, pinned, mask, count - 1, continuation
            )
            self._pinned_length -= 1
            pinned[target] = 0
            vertices.pop()
            labels.pop()


class TractableSolver:
    """Shortest simple L-labeled paths for ``L ∈ trC`` in polynomial time.

    Parameters
    ----------
    language:
        A :class:`~repro.languages.Language` (or regex string) in trC.
    expression:
        Optional pre-computed :class:`PsitrExpression`; by default the
        language is decomposed via :func:`repro.core.psitr.decompose`
        (syntactic extraction, then validated synthesis).
    dfs_budget:
        Optional cap on DFS steps per query (None = unlimited).
    """

    def __init__(self, language, expression=None, dfs_budget=None,
                 use_live_pruning=True, use_reach_pruning=True):
        if isinstance(language, str):
            language = Language(language)
        self.language = language
        if expression is None:
            expression = decompose(language)
        if not isinstance(expression, PsitrExpression):
            raise TypeError("expression must be a PsitrExpression")
        self.expression = expression
        self.dfs_budget = dfs_budget
        self.use_live_pruning = use_live_pruning
        self.use_reach_pruning = use_reach_pruning
        #: Symbols occurring in some word of L (the query label mask).
        self.used_symbols = useful_symbols(language.dfa)
        #: Stats of the last context-less query (legacy shim); queries
        #: that pass an explicit ExecutionContext never touch this, so
        #: a shared solver stays re-entrant.
        self.last_stats = None

    def shortest_simple_path(self, graph, source, target, weight_fn=None,
                             ctx=None):
        """A shortest simple L-labeled path, or ``None``.

        Runs the anchored search for every Ψtr-sequence of the
        decomposition and returns the overall shortest completion.  The
        result is always verified simple and L-labeled.

        ``weight_fn(u, label, v) -> R+`` switches to weighted-shortest
        semantics (the paper's E → R+ generalisation); weights must be
        strictly positive.

        ``ctx`` carries the per-query DFS counters (and optional
        deadline); one is created — and remembered as ``last_stats`` —
        when the caller does not supply one.
        """
        view = as_graph_view(graph)
        source_id = view.vertex_id(source)
        target_id = view.vertex_id(target)
        if ctx is None:
            ctx = ExecutionContext()
            # invariant: allow=solver-purity (documented legacy stats shim)
            self.last_stats = ctx
        stats = ctx
        if source_id == target_id:
            if self.language.accepts(""):
                return Path.single(view.vertex_at(source_id))
            return None
        reach_index = None
        if self.use_reach_pruning:
            reach_index = view.reachability()
            if not reach_index.can_reach(
                source_id, target_id,
                view.label_mask(self.used_symbols),
            ):
                # Unreachable even with regular-path semantics under
                # every label L can use: NOT_FOUND, no anchored search.
                return None
        best = None
        best_metric = None
        for sequence in self.expression.sequences:
            segments = None
            if reach_index is not None:
                # A sequence whose own label mask cannot carry the
                # source to the target is dead: skip the NFA build, the
                # live table and the whole anchored DFS for it.
                segments = _int_segments(view, _segments_of(sequence))
                if not reach_index.can_reach(
                    source_id, target_id, _segments_mask(segments)
                ):
                    continue
            search = _SequenceSearch(
                view, sequence, source_id, target_id, stats,
                budget=self.dfs_budget, weight_fn=weight_fn,
                use_live_pruning=self.use_live_pruning,
                reach_index=reach_index, segments=segments,
            )
            found = search.run(
                best_bound=(
                    len(best[1])
                    if best is not None and weight_fn is None
                    else None
                )
            )
            if found is not None:
                metric = search.best_metric
                if best is None or metric < best_metric:
                    best = found
                    best_metric = metric
        if best is None:
            return None
        path = view.path(*best)
        if not path.is_simple():
            raise GraphError("solver produced a non-simple path (bug)")
        if not self.language.accepts(path.word):
            raise GraphError(
                "solver produced a path outside L (bug): %r" % path.word
            )
        return path

    def exists(self, graph, source, target, ctx=None):
        """Decision variant of RSPQ(L)."""
        return (
            self.shortest_simple_path(graph, source, target, ctx=ctx)
            is not None
        )
