"""Polynomial simple-path search for trC languages (Lemmas 12-16).

The paper's NL algorithm enumerates *candidate summaries* — logarithmic
descriptions of a path where each long stay inside an automaton
component is compressed to ``Σ*_C`` — and completes each candidate into
a *nice path* whose compressed gaps are filled with shortest
component-internal paths under the ``acc(i)`` disjointness discipline of
Definition 4.

This module implements the deterministic, practical rendition driven by
the Ψtr decomposition of L (Theorem 4 and the remark following it):

* a Ψtr-sequence ``w0 (A1≥k1+ε) … (Am≥km+ε) w'`` fixes the *shape* of a
  summary: concrete anchored edges for the words and for the first k and
  last k letters of each star term, with a ``A*``-gap in between;
* candidate summaries are enumerated by walking actual graph edges (so
  only realizable anchor tuples are ever considered), pruned by a
  product reachability table (sequence-NFA × graph);
* each complete anchor assignment is completed gap by gap, in path
  order, with BFS-shortest ``A*``-paths avoiding all anchored vertices
  and all earlier ``acc(i)`` balls — exactly Definition 4;
* the minimum over all completions is returned.  By the (adapted)
  Lemma 14, the shortest simple L-labeled path is *nice*, so its own
  anchors appear in the enumeration and its completion is found; hence
  the algorithm is exact and returns a shortest simple L-labeled path.

Soundness never depends on the adaptation: every produced path is
checked simple and L-labeled.  Completeness is additionally
cross-validated against the exponential exact solver in the test suite.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Optional

from ..errors import GraphError, NotInTrCError
from ..execution import ExecutionContext
from ..graphs.dbgraph import (
    Path,
    sorted_out_edges_fn,
    sorted_successors_fn,
)
from ..languages import Language
from .psitr import (
    OptionalWordTerm,
    PsitrExpression,
    PsitrSequence,
    StarTerm,
    decompose,
)

# -- internal segment normal form ------------------------------------------------

_WORD = "word"       # mandatory word (lead / trail)
_OPTWORD = "optword"  # (w + ε)
_STAR = "star"       # (A≥k + ε)


def _segments_of(sequence):
    """Normalise a PsitrSequence into the solver's segment list."""
    segments = []
    if sequence.lead:
        segments.append((_WORD, sequence.lead))
    for term in sequence.terms:
        if isinstance(term, OptionalWordTerm):
            segments.append((_OPTWORD, term.word))
        elif isinstance(term, StarTerm):
            segments.append((_STAR, (term.symbols, term.min_count)))
        else:  # pragma: no cover - PsitrSequence already validates
            raise TypeError("unknown term %r" % (term,))
    if sequence.trail:
        segments.append((_WORD, sequence.trail))
    return segments


def _min_remaining(segments):
    """Minimal number of edges each segment suffix must still contribute."""
    totals = [0] * (len(segments) + 1)
    for index in range(len(segments) - 1, -1, -1):
        kind, payload = segments[index]
        contribution = len(payload) if kind == _WORD else 0
        totals[index] = totals[index + 1] + contribution
    return totals


# -- sequence NFA for live-set pruning --------------------------------------------


class _SequenceNfa:
    """Tiny positional NFA over a segment list, used only for pruning.

    States are integers.  ``letter_arcs[state]`` is a list of
    ``(symbols, target)``; ``eps_arcs[state]`` a list of targets.  The
    DFS knows exactly which state it is in at each anchored position, so
    the live table ``(vertex, state)`` prunes both prefix feasibility
    (from x) and suffix feasibility (to y).
    """

    def __init__(self, segments):
        self.letter_arcs = []
        self.eps_arcs = []
        self.entry = []  # entry state of each segment
        self.star_loop = {}  # segment index -> looping state

        def new_state():
            self.letter_arcs.append([])
            self.eps_arcs.append([])
            return len(self.letter_arcs) - 1

        current = new_state()
        self.start = current
        for index, (kind, payload) in enumerate(segments):
            self.entry.append(current)
            if kind in (_WORD, _OPTWORD):
                begin = current
                for symbol in payload:
                    nxt = new_state()
                    self.letter_arcs[current].append(
                        (frozenset((symbol,)), nxt)
                    )
                    current = nxt
                if kind == _OPTWORD:
                    self.eps_arcs[begin].append(current)
            else:
                symbols, min_count = payload
                begin = current
                for _ in range(min_count):
                    nxt = new_state()
                    self.letter_arcs[current].append((symbols, nxt))
                    current = nxt
                # self-loop for additional letters
                self.letter_arcs[current].append((symbols, current))
                self.star_loop[index] = current
                after = new_state()
                self.eps_arcs[begin].append(after)
                self.eps_arcs[current].append(after)
                current = after
        self.entry.append(current)
        self.final = current
        self.num_states = len(self.letter_arcs)

    def eps_closure_forward(self, states):
        seen = set(states)
        stack = list(states)
        while stack:
            state = stack.pop()
            for target in self.eps_arcs[state]:
                if target not in seen:
                    seen.add(target)
                    stack.append(target)
        return seen

    def predecessors(self):
        """Reverse arcs: list per state of (symbols, source) and ε sources."""
        rev_letters = [[] for _ in range(self.num_states)]
        rev_eps = [[] for _ in range(self.num_states)]
        for state in range(self.num_states):
            for symbols, target in self.letter_arcs[state]:
                rev_letters[target].append((symbols, state))
            for target in self.eps_arcs[state]:
                rev_eps[target].append(state)
        return rev_letters, rev_eps


def _live_table(graph, nfa, source, target):
    """Set of ``(vertex, state)`` pairs on some x→y completion walk.

    Forward product reachability from ``(source, start)`` intersected
    with backward reachability from ``(target, final)``; simplicity is
    ignored (this is a pruning overapproximation).
    """
    forward = set()
    stack = []
    for state in nfa.eps_closure_forward((nfa.start,)):
        node = (source, state)
        forward.add(node)
        stack.append(node)
    while stack:
        vertex, state = stack.pop()
        for symbols, nfa_target in nfa.letter_arcs[state]:
            for label, graph_target in graph.out_edges(vertex):
                if label not in symbols:
                    continue
                for closed in nfa.eps_closure_forward((nfa_target,)):
                    node = (graph_target, closed)
                    if node not in forward:
                        forward.add(node)
                        stack.append(node)
    rev_letters, rev_eps = nfa.predecessors()
    backward = set()
    stack = []

    def add_backward(node):
        if node not in backward:
            backward.add(node)
            stack.append(node)

    add_backward((target, nfa.final))
    while stack:
        vertex, state = stack.pop()
        for eps_source in rev_eps[state]:
            add_backward((vertex, eps_source))
        for symbols, nfa_source in rev_letters[state]:
            for label, graph_source in graph.in_edges(vertex):
                if label in symbols:
                    add_backward((graph_source, nfa_source))
    return forward & backward


# -- candidate anchors and completion ------------------------------------------------


@dataclass
class _Run:
    """A fully pinned stretch of the candidate path."""

    vertices: list
    labels: list


@dataclass
class _Gap:
    """A compressed ``A*`` stretch between two pinned vertices."""

    symbols: frozenset


class SolverStats:
    """Work counters exposed for the benchmarks.

    Duck-types the charging surface of
    :class:`~repro.execution.ExecutionContext` (which carries the same
    counters plus budget/deadline accounting), so the search internals
    accept either.
    """

    def __init__(self):
        self.candidates = 0
        self.completions = 0
        self.dfs_steps = 0
        self.gap_bfs = 0

    def charge_dfs_step(self):
        self.dfs_steps += 1

    def charge_gap_bfs(self):
        self.gap_bfs += 1

    def count_candidate(self):
        self.candidates += 1

    def count_completion(self):
        self.completions += 1

    def __repr__(self):
        return (
            "SolverStats(candidates=%d, completions=%d, dfs_steps=%d, "
            "gap_bfs=%d)"
            % (self.candidates, self.completions, self.dfs_steps, self.gap_bfs)
        )


def path_weight(path, weight_fn):
    """Total weight of a path under ``weight_fn(u, label, v) -> R+``."""
    return sum(weight_fn(u, label, v) for u, label, v in path.steps())


def _gap_distances(graph, entry, symbols, blocked, weight_fn, stats):
    """Shortest distances from ``entry`` inside a gap's restrictions.

    Unweighted gaps use BFS; weighted gaps use Dijkstra (the paper's
    remark that the algorithm generalises to db-graphs weighted by
    ``E → R+``).  Returns ``(dist, parent)``.
    """
    stats.charge_gap_bfs()
    dist = {entry: 0}
    parent = {}
    if weight_fn is None:
        queue = deque([entry])
        while queue:
            current = queue.popleft()
            for label, target in graph.out_edges(current):
                if label not in symbols:
                    continue
                if target in blocked or target in dist:
                    continue
                dist[target] = dist[current] + 1
                parent[target] = (current, label)
                queue.append(target)
        return dist, parent
    import heapq

    heap = [(0, repr(entry), entry)]
    settled = set()
    while heap:
        weight, _tie, current = heapq.heappop(heap)
        if current in settled:
            continue
        settled.add(current)
        for label, target in graph.out_edges(current):
            if label not in symbols or target in blocked:
                continue
            step = weight_fn(current, label, target)
            if step <= 0:
                raise GraphError(
                    "edge weights must be strictly positive, got %r for "
                    "(%r, %r, %r)" % (step, current, label, target)
                )
            candidate = weight + step
            if target not in dist or candidate < dist[target]:
                dist[target] = candidate
                parent[target] = (current, label)
                heapq.heappush(heap, (candidate, repr(target), target))
    return dist, parent


def _complete_candidate(graph, pieces, stats, weight_fn=None):
    """Fill the gaps of a pinned candidate (Definition 4 discipline).

    ``pieces`` alternates _Run and _Gap, starting and ending with runs.
    Returns a simple :class:`Path` or ``None`` when some gap cannot be
    filled.
    """
    pinned = set()
    for piece in pieces:
        if isinstance(piece, _Run):
            pinned.update(piece.vertices)
    acc_union = set()
    vertices = list(pieces[0].vertices)
    labels = list(pieces[0].labels)
    index = 1
    while index < len(pieces):
        gap = pieces[index]
        next_run = pieces[index + 1]
        entry = vertices[-1]
        exit_vertex = next_run.vertices[0]
        blocked = (pinned - {entry, exit_vertex}) | acc_union
        dist, parent = _gap_distances(
            graph, entry, gap.symbols, blocked, weight_fn, stats
        )
        found = dist.get(exit_vertex)
        if found is None or exit_vertex == entry:
            return None
        # acc(i): everything within distance `found` under the gap's
        # restrictions (P_i paths of size w(p) <= length_i, Definition 4).
        acc_union.update(
            vertex for vertex, d in dist.items() if d <= found
        )
        # Reconstruct the shortest gap path.
        gap_labels = deque()
        gap_vertices = deque()
        cursor = exit_vertex
        while cursor != entry:
            previous, label = parent[cursor]
            gap_vertices.appendleft(cursor)
            gap_labels.appendleft(label)
            cursor = previous
        vertices.extend(gap_vertices)
        labels.extend(gap_labels)
        # Append the following run (its first vertex is already placed).
        vertices.extend(next_run.vertices[1:])
        labels.extend(next_run.labels)
        index += 2
    path = Path(tuple(vertices), tuple(labels))
    if not path.is_simple():  # pragma: no cover - guaranteed by discipline
        return None
    return path


class _SequenceSearch:
    """Anchored DFS for one Ψtr-sequence on one query."""

    def __init__(self, graph, sequence, source, target, stats, budget=None,
                 weight_fn=None, use_live_pruning=True):
        self.graph = graph
        self.segments = _segments_of(sequence)
        self.source = source
        self.target = target
        self.stats = stats
        self.budget = budget
        self.weight_fn = weight_fn
        self.use_live_pruning = use_live_pruning
        self._sorted_out = sorted_out_edges_fn(graph)
        self._sorted_successors = sorted_successors_fn(graph)
        self.nfa = _SequenceNfa(self.segments)
        if use_live_pruning:
            self.live = _live_table(graph, self.nfa, source, target)
        else:
            self.live = None
        self.min_remaining = _min_remaining(self.segments)
        self.best = None
        self.best_metric = None
        self._reach_cache = {}

    # -- helpers -----------------------------------------------------------------

    def _alive(self, vertex, state):
        if self.live is None:
            return True
        return (vertex, state) in self.live

    def _metric(self, path):
        if self.weight_fn is None:
            return len(path)
        return path_weight(path, self.weight_fn)

    def _reach(self, vertex, symbols):
        """Vertices reachable from ``vertex`` via ≥1 edges in ``symbols``
        (unrestricted — a pruning superset)."""
        key = (vertex, symbols)
        cached = self._reach_cache.get(key)
        if cached is not None:
            return cached
        seen = set()
        queue = deque()
        for label, nxt in self.graph.out_edges(vertex):
            if label in symbols and nxt not in seen:
                seen.add(nxt)
                queue.append(nxt)
        while queue:
            current = queue.popleft()
            for label, nxt in self.graph.out_edges(current):
                if label in symbols and nxt not in seen:
                    seen.add(nxt)
                    queue.append(nxt)
        self._reach_cache[key] = seen
        return seen

    def _candidate_length(self, pieces):
        """Pinned length so far (gaps count 1 minimum each)."""
        total = 0
        for piece in pieces:
            if isinstance(piece, _Run):
                total += len(piece.labels)
            else:
                total += 1
        return total

    # -- DFS ----------------------------------------------------------------------

    def run(self, best_bound=None):
        if best_bound is not None:
            self.best_bound = best_bound
        else:
            self.best_bound = None
        start_run = _Run([self.source], [])
        self._search(0, self.nfa.start, [start_run], {self.source})
        return self.best

    def _too_long(self, pieces, seg_index):
        if self.weight_fn is not None:
            # Edge counts do not bound weights; skip the length prune.
            return False
        if self.best is not None:
            bound = len(self.best)
        elif self.best_bound is not None:
            bound = self.best_bound
        else:
            return False
        return (
            self._candidate_length(pieces) + self.min_remaining[seg_index]
            >= bound
        )

    def _search(self, seg_index, state, pieces, pinned):
        self.stats.charge_dfs_step()
        if self.budget is not None and self.stats.dfs_steps > self.budget:
            return
        if self._too_long(pieces, seg_index):
            return
        current = pieces[-1].vertices[-1]
        if state is not None and not self._alive(current, state):
            return
        if seg_index == len(self.segments):
            if current != self.target:
                return
            self.stats.count_candidate()
            path = _complete_candidate(
                self.graph, pieces, self.stats, weight_fn=self.weight_fn
            )
            self.stats.count_completion()
            if path is not None:
                metric = self._metric(path)
                if self.best is None or metric < self.best_metric:
                    self.best = path
                    self.best_metric = metric
            return
        kind, payload = self.segments[seg_index]
        if kind == _WORD:
            self._follow_word(
                seg_index, state, pieces, pinned, payload, optional=False
            )
        elif kind == _OPTWORD:
            self._follow_word(
                seg_index, state, pieces, pinned, payload, optional=True
            )
        else:
            self._follow_star(seg_index, state, pieces, pinned, payload)

    def _next_entry_state(self, seg_index):
        return self.nfa.entry[seg_index + 1]

    def _follow_word(self, seg_index, state, pieces, pinned, word, optional):
        if optional:
            # Skip branch: ε for (w + ε).
            self._search(
                seg_index + 1, self._next_entry_state(seg_index), pieces, pinned
            )
        self._follow_letters(
            seg_index,
            state,
            pieces,
            pinned,
            word,
            0,
            lambda pcs, pnd: self._search(
                seg_index + 1, self._next_entry_state(seg_index), pcs, pnd
            ),
        )

    def _follow_letters(
        self, seg_index, state, pieces, pinned, word, offset, continuation
    ):
        """Pin edges spelling ``word[offset:]`` then call continuation."""
        if offset == len(word):
            continuation(pieces, pinned)
            return
        symbol = word[offset]
        run = pieces[-1]
        current = run.vertices[-1]
        next_state = self._letter_target(state, symbol)
        for target in self._sorted_successors(current, symbol):
            if target in pinned:
                continue
            if next_state is not None and not self._alive(target, next_state):
                continue
            run.vertices.append(target)
            run.labels.append(symbol)
            pinned.add(target)
            self._follow_letters(
                seg_index,
                next_state,
                pieces,
                pinned,
                word,
                offset + 1,
                continuation,
            )
            pinned.discard(target)
            run.vertices.pop()
            run.labels.pop()

    def _letter_target(self, state, symbol):
        if state is None:
            return None
        for symbols, target in self.nfa.letter_arcs[state]:
            if symbol in symbols:
                return target
        return None

    def _class_targets(self, state, symbol):
        if state is None:
            return [None]
        return [
            target
            for symbols, target in self.nfa.letter_arcs[state]
            if symbol in symbols
        ] or [None]

    def _follow_star(self, seg_index, state, pieces, pinned, payload):
        symbols, min_count = payload
        after_state = self._next_entry_state(seg_index)
        # Branch 1: ε.
        self._search(seg_index + 1, after_state, pieces, pinned)
        # Branch 2: exact pinned matches of length m in [min_count, 2k].
        for length in range(min_count, 2 * min_count + 1):
            self._follow_class_letters(
                state,
                pieces,
                pinned,
                symbols,
                length,
                lambda pcs, pnd: self._search(
                    seg_index + 1, after_state, pcs, pnd
                ),
            )
        # Branch 3: k anchors + gap + k anchors (total length >= 2k+1).
        loop_state = self.nfa.star_loop.get(seg_index)

        def after_head(pcs, pnd):
            head_vertex = pcs[-1].vertices[-1]
            reachable = self._reach(head_vertex, symbols)
            for exit_vertex in sorted(reachable, key=repr):
                if exit_vertex in pnd:
                    continue
                if loop_state is not None and not self._alive(
                    exit_vertex, loop_state
                ):
                    continue
                gap = _Gap(symbols)
                new_run = _Run([exit_vertex], [])
                pcs.append(gap)
                pcs.append(new_run)
                pnd.add(exit_vertex)
                self._follow_class_letters(
                    loop_state,
                    pcs,
                    pnd,
                    symbols,
                    min_count,
                    lambda pcs2, pnd2: self._search(
                        seg_index + 1, after_state, pcs2, pnd2
                    ),
                )
                pnd.discard(exit_vertex)
                pcs.pop()
                pcs.pop()

        self._follow_class_letters(
            state, pieces, pinned, symbols, min_count, after_head
        )

    def _follow_class_letters(
        self, state, pieces, pinned, symbols, count, continuation
    ):
        """Pin ``count`` edges with labels in ``symbols``."""
        if count == 0:
            continuation(pieces, pinned)
            return
        run = pieces[-1]
        current = run.vertices[-1]
        for label, target in self._sorted_out(current):
            if label not in symbols or target in pinned:
                continue
            next_state = self._letter_target(state, label)
            if next_state is not None and not self._alive(target, next_state):
                continue
            run.vertices.append(target)
            run.labels.append(label)
            pinned.add(target)
            self._follow_class_letters(
                next_state, pieces, pinned, symbols, count - 1, continuation
            )
            pinned.discard(target)
            run.vertices.pop()
            run.labels.pop()


class TractableSolver:
    """Shortest simple L-labeled paths for ``L ∈ trC`` in polynomial time.

    Parameters
    ----------
    language:
        A :class:`~repro.languages.Language` (or regex string) in trC.
    expression:
        Optional pre-computed :class:`PsitrExpression`; by default the
        language is decomposed via :func:`repro.core.psitr.decompose`
        (syntactic extraction, then validated synthesis).
    dfs_budget:
        Optional cap on DFS steps per query (None = unlimited).
    """

    def __init__(self, language, expression=None, dfs_budget=None,
                 use_live_pruning=True):
        if isinstance(language, str):
            language = Language(language)
        self.language = language
        if expression is None:
            expression = decompose(language)
        if not isinstance(expression, PsitrExpression):
            raise TypeError("expression must be a PsitrExpression")
        self.expression = expression
        self.dfs_budget = dfs_budget
        self.use_live_pruning = use_live_pruning
        #: Stats of the last context-less query (legacy shim); queries
        #: that pass an explicit ExecutionContext never touch this, so
        #: a shared solver stays re-entrant.
        self.last_stats = None

    def shortest_simple_path(self, graph, source, target, weight_fn=None,
                             ctx=None):
        """A shortest simple L-labeled path, or ``None``.

        Runs the anchored search for every Ψtr-sequence of the
        decomposition and returns the overall shortest completion.  The
        result is always verified simple and L-labeled.

        ``weight_fn(u, label, v) -> R+`` switches to weighted-shortest
        semantics (the paper's E → R+ generalisation); weights must be
        strictly positive.

        ``ctx`` carries the per-query DFS counters (and optional
        deadline); one is created — and remembered as ``last_stats`` —
        when the caller does not supply one.
        """
        graph.require_vertex(source)
        graph.require_vertex(target)
        if ctx is None:
            ctx = ExecutionContext()
            self.last_stats = ctx
        stats = ctx
        if source == target:
            if self.language.accepts(""):
                return Path.single(source)
            return None
        best = None
        best_metric = None
        for sequence in self.expression.sequences:
            search = _SequenceSearch(
                graph, sequence, source, target, stats,
                budget=self.dfs_budget, weight_fn=weight_fn,
                use_live_pruning=self.use_live_pruning,
            )
            found = search.run(
                best_bound=(
                    len(best)
                    if best is not None and weight_fn is None
                    else None
                )
            )
            if found is not None:
                metric = (
                    len(found)
                    if weight_fn is None
                    else path_weight(found, weight_fn)
                )
                if best is None or metric < best_metric:
                    best = found
                    best_metric = metric
        if best is not None:
            if not best.is_simple():
                raise GraphError("solver produced a non-simple path (bug)")
            if not self.language.accepts(best.word):
                raise GraphError(
                    "solver produced a path outside L (bug): %r" % best.word
                )
        return best

    def exists(self, graph, source, target, ctx=None):
        """Decision variant of RSPQ(L)."""
        return (
            self.shortest_simple_path(graph, source, target, ctx=ctx)
            is not None
        )
