"""Property-(1) witnesses for languages outside trC (Lemma 4).

A *hardness witness* is a tuple ``(q1, q2, wl, w1, wm, w2, wr)`` of
states and words of the minimal DFA such that

1. ``Δ(i_L, wl) = q1``,
2. ``w1 ∈ Loop(q1)`` (non-empty),
3. ``Δ(q1, wm) = q2`` with ``wm`` non-empty,
4. ``w2 ∈ Loop(q2)`` (non-empty),
5. ``Δ(q2, wr) ∈ F_L``  (hence ``wl w1^j wm w2^i wr ∈ L`` for all i, j),
6. ``(w1 + w2)* wr ∩ L_{q1} = ∅``.

Conditions 5 and 6 are exactly Property (1) of Lemma 4 instantiated so
the Lemma-5 reduction from Vertex-Disjoint-Path goes through verbatim;
:mod:`repro.algorithms.reductions` consumes these witnesses.  Lemma 4
guarantees a witness exists whenever ``L ∉ trC``.

The search is guided: candidate loop words per state (shortest loop
through each outgoing letter, their powers, and shortest *common* loops
for same-SCC state pairs), shortest connecting words, and candidate
``wr`` of the form ``w2^j · u``.  Every candidate is *verified* with
exact automaton constructions, so a returned witness is always correct;
the guided enumeration is validated against the whole catalog in tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from ..errors import ReproError
from ..languages.analysis import looping_states
from ..languages.nfa import star_nfa, word_nfa
from .trc import _as_minimal_dfa, is_in_trc


@dataclass(frozen=True)
class HardnessWitness:
    """A verified Property-(1) witness; see the module docstring."""

    q1: int
    q2: int
    wl: str
    w1: str
    wm: str
    w2: str
    wr: str

    def words(self):
        """The word components ``(wl, w1, wm, w2, wr)``."""
        return (self.wl, self.w1, self.wm, self.w2, self.wr)

    def __str__(self):
        return (
            "HardnessWitness(wl=%r, w1=%r, wm=%r, w2=%r, wr=%r; "
            "q1=%d, q2=%d)"
            % (self.wl, self.w1, self.wm, self.w2, self.wr, self.q1, self.q2)
        )


def verify_witness(dfa, witness):
    """Check all six witness conditions exactly; returns bool."""
    q1, q2 = witness.q1, witness.q2
    wl, w1, wm, w2, wr = witness.words()
    if not w1 or not wm or not w2:
        return False
    if dfa.run(wl) != q1:
        return False
    if dfa.run_from(q1, w1) != q1:
        return False
    if dfa.run_from(q1, wm) != q2:
        return False
    if dfa.run_from(q2, w2) != q2:
        return False
    if dfa.run_from(q2, wr) not in dfa.accepting:
        return False
    return _loops_then_wr_avoids(dfa, q1, w1, w2, wr)


def _loops_then_wr_avoids(dfa, q1, w1, w2, wr):
    """True iff ``(w1 + w2)* wr ∩ L_{q1} = ∅`` (condition 6)."""
    loops = star_nfa(word_nfa(w1).union(word_nfa(w2)))
    candidate = loops.concat(word_nfa(wr))
    overlap = candidate.intersect_dfa(dfa, dfa_initial=q1)
    return overlap.is_empty()


def _shortest_word_between(dfa, source, target, require_nonempty=False):
    """Shortest word with ``Δ(source, word) = target`` (or ``None``)."""
    if source == target and not require_nonempty:
        return ""
    best = {source: ""}
    from collections import deque

    queue = deque([source])
    # Standard BFS, except the start state may be re-entered (loops).
    while queue:
        state = queue.popleft()
        for symbol in sorted(dfa.alphabet):
            next_state = dfa.transition(state, symbol)
            word = best[state] + symbol
            if next_state == target:
                return word
            if next_state not in best:
                best[next_state] = word
                queue.append(next_state)
    return None


def _loop_candidates(dfa, state, max_power):
    """Candidate loop words for ``state``: the shortest loop through each
    outgoing letter, plus powers up to ``max_power``."""
    basics = []
    for symbol in sorted(dfa.alphabet):
        after = dfa.transition(state, symbol)
        back = _shortest_word_between(dfa, after, state)
        if back is not None:
            loop = symbol + back
            if loop not in basics:
                basics.append(loop)
    candidates = []
    for loop in basics:
        for power in range(1, max_power + 1):
            word = loop * power
            if word not in candidates:
                candidates.append(word)
    return candidates


def _common_loop(dfa, state_a, state_b, length_bound):
    """Shortest non-empty word looping on *both* states, or ``None``.

    BFS over state pairs from ``(state_a, state_b)`` back to itself.
    """
    from collections import deque

    start = (state_a, state_b)
    best = {start: ""}
    queue = deque([start])
    while queue:
        pair = queue.popleft()
        word = best[pair]
        if len(word) >= length_bound:
            continue
        for symbol in sorted(dfa.alphabet):
            next_pair = (
                dfa.transition(pair[0], symbol),
                dfa.transition(pair[1], symbol),
            )
            next_word = word + symbol
            if next_pair == start:
                return next_word
            if next_pair not in best:
                best[next_pair] = next_word
                queue.append(next_pair)
    return None


def _wr_candidates(dfa, q2, w2, max_loops, per_target=3):
    """Candidate ``wr`` words: ``w2^j · u`` with ``Δ(q2, u) ∈ F``.

    ``u`` ranges over a few shortest accepted words from ``Δ(q2, w2^j)``
    (= ``q2``), gathered by BFS with multiple targets.
    """
    suffixes = []
    shortest = dfa.shortest_accepted(start=q2)
    if shortest is not None:
        suffixes.append(shortest)
    # A couple of longer alternatives: shortest through each first letter.
    for symbol in sorted(dfa.alphabet):
        after = dfa.transition(q2, symbol)
        tail = dfa.shortest_accepted(start=after)
        if tail is not None:
            candidate = symbol + tail
            if candidate not in suffixes:
                suffixes.append(candidate)
        if len(suffixes) >= per_target + 1:
            break
    words = []
    for loops in range(max_loops + 1):
        for suffix in suffixes:
            word = w2 * loops + suffix
            if word not in words:
                words.append(word)
    return words


def find_hardness_witness(lang_or_dfa, max_power=None):
    """Find and verify a Property-(1) witness for ``L ∉ trC``.

    Returns a :class:`HardnessWitness`, or ``None`` when ``L ∈ trC``.
    Raises :class:`ReproError` if ``L ∉ trC`` but the guided search
    exhausts its candidates (not observed on any catalog language; the
    error asks for a report rather than silently looping).
    """
    dfa = _as_minimal_dfa(lang_or_dfa)
    if is_in_trc(dfa):
        return None
    M = dfa.num_states
    if max_power is None:
        max_power = max(2, M)
    loops = looping_states(dfa)
    reach_from_initial = dfa.reachable_states()
    for q1 in sorted(loops & reach_from_initial):
        wl = _shortest_word_between(dfa, dfa.initial, q1)
        if wl is None:
            continue
        w1_candidates = _loop_candidates(dfa, q1, max_power)
        for q2 in sorted(loops & dfa.reachable_states(q1)):
            if q1 == q2:
                wm_base = None
            else:
                wm_base = _shortest_word_between(dfa, q1, q2)
                if wm_base is None:
                    continue
            w2_candidates = _loop_candidates(dfa, q2, max_power)
            common = _common_loop(dfa, q1, q2, length_bound=2 * M * M)
            if common is not None:
                for power in range(1, max_power + 1):
                    word = common * power
                    if word not in w1_candidates:
                        w1_candidates.append(word)
                    if word not in w2_candidates:
                        w2_candidates.append(word)
            for w1 in w1_candidates:
                if dfa.run_from(q1, w1) != q1:
                    continue
                wm = wm_base if wm_base else w1
                if not wm:
                    continue
                if dfa.run_from(q1, wm) != q2:
                    continue
                for w2 in w2_candidates:
                    if dfa.run_from(q2, w2) != q2:
                        continue
                    for wr in _wr_candidates(dfa, q2, w2, max_loops=M):
                        witness = HardnessWitness(q1, q2, wl, w1, wm, w2, wr)
                        if verify_witness(dfa, witness):
                            return witness
    raise ReproError(
        "L is not in trC but the guided witness search failed; "
        "please report the language (increase max_power as a workaround)"
    )
