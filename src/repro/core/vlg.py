"""RSPQs on vertex-labeled and vertex+edge-labeled graphs (Section 4.1).

The paper adapts the dichotomy to vl-graphs via the relation
``w1 ≡vl w2`` (same last letter) and ``Loop_a(q)`` (loops whose last
letter is ``a``):

* Definition 5 / Theorem 5: RSPQ(L, vlg) is in NL iff L ∈ trC_vlg, and
  NP-complete otherwise, where trC_vlg relaxes Definition 1 to word
  pairs with a common last letter.
* Definition 6 / Theorem 6: the evl analogue with ``≡evl`` (same last
  vertex label, any edge label) over the pair alphabet ``Σ_V × Σ_E``.

Membership tests mirror the edge-labeled Lemma-6 test with
``Loop_a(q2)^M`` in place of ``Loop(q2)^M``, quantified over the common
last letter ``a`` (for evl: over vertex-label groups of pair symbols).
A brute-force definitional oracle is provided for cross-validation, and
:func:`solve_vlg` evaluates queries on vl-graphs (exactly, via the
encoding into db-graphs and the quotient language λ(x)⁻¹L).
"""

from __future__ import annotations

from ..errors import GraphError
from ..graphs.vlgraph import EvlGraph, VlGraph
from ..languages import Language
from ..languages.analysis import (
    has_loop_with_last_letter,
)
from .trc import _as_minimal_dfa


def _looping_letters(dfa, state):
    """Letters ``a`` with ``Loop_a(state) ≠ ∅``."""
    return {
        letter
        for letter in dfa.alphabet
        if has_loop_with_last_letter(dfa, state, letter)
    }


def _vlg_violating_pairs(dfa, letter_groups):
    """Pairs violating the vl-adapted Lemma-6 condition.

    ``letter_groups`` maps each letter to its equivalence group under
    the relevant relation: for vl-graphs every letter is its own group
    (``≡vl`` = same last letter); for evl-graphs pair symbols group by
    vertex label (``≡evl``).  The condition tested is, for every
    ``q1, q2`` with ``q2`` reachable from ``q1`` and every group g such
    that both states have a loop ending in g:
    ``(Loop_g(q2))^M · L_{q2} ⊆ L_{q1}``.
    """
    power = dfa.num_states
    non_accepting = set(dfa.states()) - dfa.accepting
    loop_groups = {
        state: {
            letter_groups[letter]
            for letter in _looping_letters(dfa, state)
        }
        for state in dfa.states()
    }
    pairs = []
    for q1 in dfa.states():
        if not loop_groups[q1]:
            continue
        reachable = dfa.reachable_states(q1)
        for q2 in reachable:
            common = loop_groups[q1] & loop_groups[q2]
            if not common:
                continue
            for group in sorted(common):
                nfa = _loop_group_power_then_quotient_nfa(
                    dfa, q2, group, letter_groups, power
                )
                bad = nfa.intersect_dfa(
                    dfa, dfa_initial=q1, dfa_accepting=non_accepting
                )
                if not bad.is_empty():
                    pairs.append((q1, q2, group))
                    break
    return pairs


def _loop_group_power_then_quotient_nfa(dfa, state, group, letter_groups, power):
    """NFA for ``(Loop_g(state))^power · L_state`` where ``Loop_g`` is
    the set of loops whose last letter belongs to group ``g``."""
    states = set()
    transitions = {}
    for copy in range(power):
        for q in dfa.states():
            source = (copy, q)
            states.add(source)
            arcs = []
            for symbol in dfa.alphabet:
                target_q = dfa.transition(q, symbol)
                arcs.append((symbol, (copy, target_q)))
                if target_q == state and letter_groups[symbol] == group:
                    arcs.append((symbol, (copy + 1, state)))
            transitions[source] = arcs
    for q in dfa.states():
        source = (power, q)
        states.add(source)
        transitions[source] = [
            (symbol, (power, dfa.transition(q, symbol)))
            for symbol in dfa.alphabet
        ]
    accepting = {(power, q) for q in dfa.accepting}
    from ..languages.nfa import NFA

    return NFA(
        states,
        dfa.alphabet,
        transitions,
        initial=[(0, state)],
        accepting=accepting,
    )


def is_in_trc_vlg(lang_or_dfa):
    """Decide ``L ∈ trC_vlg`` (Definition 5 / Theorem 5 criterion)."""
    dfa = _as_minimal_dfa(lang_or_dfa)
    groups = {letter: letter for letter in dfa.alphabet}
    return not _vlg_violating_pairs(dfa, groups)


def is_in_trc_evlg(lang_or_dfa, vertex_label_of):
    """Decide ``L ∈ trC_evlg`` over a pair-encoded alphabet.

    ``vertex_label_of`` maps each encoded symbol to its vertex-label
    component, defining the ``≡evl`` groups.
    """
    dfa = _as_minimal_dfa(lang_or_dfa)
    groups = {letter: vertex_label_of(letter) for letter in dfa.alphabet}
    return not _vlg_violating_pairs(dfa, groups)


# -- brute-force definitional oracle ----------------------------------------------


def find_trc_vlg_counterexample(lang_or_dfa, repetitions, max_length):
    """Search for a Definition-5 violation with bounded word lengths.

    Same contract as
    :func:`repro.core.trc.find_trc_counterexample`, but decompositions
    must satisfy ``w1 ≡vl w2`` (identical last letters).
    """
    from .trc import _decompositions

    dfa = _as_minimal_dfa(lang_or_dfa)
    for word in dfa.enumerate_words(max_length):
        for wl, w1, wm, w2, wr in _decompositions(word, repetitions):
            if not w1 or not w2 or w1[-1] != w2[-1]:
                continue
            pumped = wl + w1 * repetitions + w2 * repetitions + wr
            if not dfa.accepts(pumped):
                return (wl, w1, wm, w2, wr)
    return None


# -- evaluation on vl-graphs ---------------------------------------------------------


def solve_vlg(language, vlgraph, source, target, exact_budget=None, ctx=None):
    """Exact RSPQ on a vertex-labeled graph.

    The query asks for a simple path ``x = v1, …, vk = y`` whose
    *vertex-label word* ``λ(v1) λ(v2) … λ(vk)`` belongs to L.  Encoding:
    the db-graph carries ``λ(target)`` on each edge, so edge words spell
    ``λ(v2) … λ(vk)`` and the query becomes RSPQ(λ(x)⁻¹ L) on the
    encoded graph.  Evaluation uses the generic dispatcher, so languages
    whose quotient is tractable on the encoded graph run in polynomial
    time; the remainder fall back to exact search.

    Returns the result of the underlying db-graph solver.
    """
    from .solver import RspqSolver

    if not isinstance(vlgraph, VlGraph):
        raise GraphError("solve_vlg expects a VlGraph")
    if isinstance(language, str):
        language = Language(language)
    encoded = vlgraph.to_dbgraph()
    start_label = vlgraph.label_of(source)
    quotient_dfa = language.dfa.completed(
        set(vertex_label for vertex_label in _vl_labels(vlgraph))
    )
    quotient_state = quotient_dfa.run(start_label)
    quotient = Language(
        quotient_dfa.with_initial(quotient_state), name="quotient"
    )
    solver = RspqSolver(quotient, exact_budget=exact_budget)
    return solver.solve(encoded, source, target, ctx=ctx)


def _vl_labels(vlgraph):
    return {vlgraph.label_of(vertex) for vertex in vlgraph.vertices()}


def solve_evlg(language, evlgraph, source, target, encoding=None,
               exact_budget=None, ctx=None):
    """Exact RSPQ on a vertex+edge-labeled graph via the pair encoding.

    ``language`` must be given over the *encoded* pair alphabet (use
    ``encoding`` from :meth:`EvlGraph.to_dbgraph` to build it).  The
    word of a path is the sequence of ``(λ(v_{i+1}), edge label)``
    pairs, matching the convention of :func:`solve_vlg`.
    """
    from .solver import RspqSolver

    if not isinstance(evlgraph, EvlGraph):
        raise GraphError("solve_evlg expects an EvlGraph")
    encoded, used_encoding = evlgraph.to_dbgraph(pair_encoding=encoding)
    if isinstance(language, str):
        language = Language(language)
    solver = RspqSolver(language, exact_budget=exact_budget)
    return solver.solve(encoded, source, target, ctx=ctx), used_encoding
