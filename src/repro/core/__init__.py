"""Core contribution: trC, the trichotomy, Ψtr, and the tractable solver."""

from .trc import is_in_trc, find_trc_counterexample, is_in_trc_zero
from .trichotomy import Classification, ComplexityClass, classify
from .witness import HardnessWitness, find_hardness_witness, verify_witness
from .nice_paths import TractableSolver, path_weight
from .summary_solver import SummarySolver
from .solver import RspqResult, RspqSolver, solve_rspq
from .summary import Summary, annotate, summarize
from . import psitr, vlg

__all__ = [
    "Classification",
    "Summary",
    "annotate",
    "summarize",
    "ComplexityClass",
    "HardnessWitness",
    "RspqResult",
    "RspqSolver",
    "SummarySolver",
    "TractableSolver",
    "path_weight",
    "classify",
    "find_hardness_witness",
    "find_trc_counterexample",
    "is_in_trc",
    "is_in_trc_zero",
    "psitr",
    "solve_rspq",
    "verify_witness",
]
