"""The tractable fragment trC (Definition 1) and its decision procedure.

Definition 1: ``L ∈ trC(i)`` iff for all words ``wl, wm, wr`` and all
non-empty ``w1, w2``: ``wl w1^i wm w2^i wr ∈ L  ⇒  wl w1^i w2^i wr ∈ L``;
``trC = ∪_i trC(i)``.

The effective membership test implements the automaton characterisation
of Lemma 6 (refined by the Theorem-3 appendix algorithm):

    L ∈ trC  ⟺  for every pair of states ``q1, q2`` of the minimal DFA
    with ``Loop(q1) ≠ ∅``, ``Loop(q2) ≠ ∅`` and ``q2 ∈ Δ(q1, Σ*)``:
    ``Loop(q2)^M · L_{q2}  ⊆  L_{q1}``        (M = |Q_L|)

Each inclusion is checked without determinization by intersecting an NFA
for ``Loop(q2)^M · L_{q2}`` with the complement quotient ``¬L_{q1}``
(same DFA, initial state ``q1``, accepting set flipped) and testing
emptiness — the polynomial-time shadow of the paper's NL algorithm.

A brute-force definitional check over bounded words is provided as a
cross-validation oracle for tests.
"""

from __future__ import annotations


from ..languages import Language
from ..languages.analysis import looping_states
from ..languages.dfa import DFA
from ..languages.nfa import NFA


def _as_minimal_dfa(lang_or_dfa):
    """Accept a Language or DFA and return the minimal complete DFA."""
    if isinstance(lang_or_dfa, Language):
        return lang_or_dfa.dfa
    if isinstance(lang_or_dfa, DFA):
        return lang_or_dfa.minimized()
    raise TypeError("expected a Language or DFA, got %r" % (lang_or_dfa,))


def loops_then_quotient_nfa(dfa, state, power):
    """NFA for ``Loop(state)^power · L_state``.

    States ``(copy, q)``: ``copy < power`` counts completed loops; on a
    transition landing on ``state`` we may nondeterministically close the
    current loop.  Once ``copy == power`` the automaton simply runs the
    DFA from ``state`` and accepts in its accepting states.
    """
    if power < 0:
        raise ValueError("power must be non-negative")
    states = set()
    transitions = {}
    for copy in range(power):
        for q in dfa.states():
            source = (copy, q)
            states.add(source)
            arcs = []
            for symbol in dfa.alphabet:
                target_q = dfa.transition(q, symbol)
                arcs.append((symbol, (copy, target_q)))
                if target_q == state:
                    arcs.append((symbol, (copy + 1, state)))
            transitions[source] = arcs
    for q in dfa.states():
        source = (power, q)
        states.add(source)
        transitions[source] = [
            (symbol, (power, dfa.transition(q, symbol)))
            for symbol in dfa.alphabet
        ]
    accepting = {(power, q) for q in dfa.accepting}
    return NFA(
        states,
        dfa.alphabet,
        transitions,
        initial=[(0, state)],
        accepting=accepting,
    )


def violating_pairs(lang_or_dfa):
    """Yield state pairs ``(q1, q2)`` violating the Lemma-6 condition.

    Empty iff ``L ∈ trC``.  Works on the minimal DFA.
    """
    dfa = _as_minimal_dfa(lang_or_dfa)
    loops = looping_states(dfa)
    power = dfa.num_states
    non_accepting = set(dfa.states()) - dfa.accepting
    reachable_from = {q1: dfa.reachable_states(q1) for q1 in sorted(loops)}
    for q2 in sorted(loops):
        # The Loop(q2)^M · L_{q2} automaton is shared by every q1.
        nfa = None
        for q1 in sorted(loops):
            if q2 not in reachable_from[q1]:
                continue
            if nfa is None:
                nfa = loops_then_quotient_nfa(dfa, q2, power)
            product = nfa.intersect_dfa(
                dfa, dfa_initial=q1, dfa_accepting=non_accepting
            )
            if not product.is_empty():
                yield q1, q2

def is_in_trc(lang_or_dfa):
    """Decide ``L ∈ trC`` (Lemma 6 characterisation on the minimal DFA).

    Accepts a :class:`~repro.languages.Language` or a raw
    :class:`~repro.languages.dfa.DFA` (minimised internally).
    """
    for _pair in violating_pairs(lang_or_dfa):
        return False
    return True


def violation_word(lang_or_dfa, q1, q2):
    """A shortest word in ``Loop(q2)^M · L_{q2} \\ L_{q1}`` for a
    violating pair — concrete evidence of non-membership."""
    dfa = _as_minimal_dfa(lang_or_dfa)
    power = dfa.num_states
    non_accepting = set(dfa.states()) - dfa.accepting
    product = loops_then_quotient_nfa(dfa, q2, power).intersect_dfa(
        dfa, dfa_initial=q1, dfa_accepting=non_accepting
    )
    return product.shortest_accepted()


# -- brute-force definitional oracle -------------------------------------------


def _decompositions(word, repetitions):
    """Yield ``(wl, w1, wm, w2, wr)`` with
    ``word == wl + w1*i + wm + w2*i + wr`` and ``w1, w2`` non-empty."""
    n = len(word)
    i = repetitions
    # Choose the boundaries of the two repeated blocks.
    for start1 in range(n + 1):
        for len1 in range(1, (n - start1) // max(i, 1) + 1):
            block1 = word[start1:start1 + len1]
            if word[start1:start1 + i * len1] != block1 * i:
                continue
            mid_start = start1 + i * len1
            for start2 in range(mid_start, n + 1):
                for len2 in range(1, (n - start2) // max(i, 1) + 1):
                    block2 = word[start2:start2 + len2]
                    if word[start2:start2 + i * len2] != block2 * i:
                        continue
                    yield (
                        word[:start1],
                        block1,
                        word[mid_start:start2],
                        block2,
                        word[start2 + i * len2:],
                    )


def find_trc_counterexample(lang_or_dfa, repetitions, max_length):
    """Brute-force search for a Definition-1 violation of ``trC(i)``.

    Enumerates accepted words up to ``max_length`` and all decompositions
    ``wl w1^i wm w2^i wr``; returns the first decomposition whose pumped
    form ``wl w1^i w2^i wr`` is rejected, or ``None``.

    Exponential — only a testing oracle.  ``None`` does **not** prove
    membership in ``trC(i)`` (the bound may be too small); a non-``None``
    result *does* prove ``L ∉ trC(i)``.
    """
    dfa = _as_minimal_dfa(lang_or_dfa)
    if repetitions < 1:
        raise ValueError("repetitions must be >= 1 for the oracle")
    for word in dfa.enumerate_words(max_length):
        for wl, w1, wm, w2, wr in _decompositions(word, repetitions):
            if not wm and not (w1 and w2):
                continue
            pumped = wl + w1 * repetitions + w2 * repetitions + wr
            if not dfa.accepts(pumped):
                return (wl, w1, wm, w2, wr)
    return None


def is_in_trc_zero(lang_or_dfa):
    """Membership in ``trC(0)`` — the subword-closed Mendelzon–Wood class.

    ``trC(0)`` requires ``wl wm wr ∈ L ⇒ wl wr ∈ L`` (delete any factor),
    which is exactly closure under subwords.  Decided exactly via the
    downward-closure construction.
    """
    from ..languages.properties import is_subword_closed

    return is_subword_closed(_as_minimal_dfa(lang_or_dfa))
