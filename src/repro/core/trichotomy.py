"""The trichotomy (Theorem 2): AC0 / NL-complete / NP-complete.

For a regular language L, the data complexity of RSPQ(L) is:

1. ``AC0``          if L is finite,
2. ``NL-complete``  if L ∈ trC and L is infinite,
3. ``NP-complete``  if L ∉ trC.

:func:`classify` returns the class together with the *evidence*: for the
tractable classes a proof sketch (finiteness bound / trC confirmation),
for the hard class a verified hardness witness ready to drive the
Lemma-5 reduction.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from .trc import _as_minimal_dfa, is_in_trc
from .witness import HardnessWitness, find_hardness_witness


class ComplexityClass(enum.Enum):
    """Data complexity of RSPQ(L) per Theorem 2."""

    AC0 = "AC0"
    NL_COMPLETE = "NL-complete"
    NP_COMPLETE = "NP-complete"

    def is_tractable(self):
        """Polynomial-time evaluability (NL ⊆ P)."""
        return self is not ComplexityClass.NP_COMPLETE


@dataclass
class Classification:
    """Result of :func:`classify`.

    Attributes
    ----------
    complexity_class:
        The Theorem-2 class.
    finite:
        Whether L is finite (the AC0 criterion, Lemma 17).
    in_trc:
        Whether L ∈ trC (the Theorem-1 criterion).
    longest_word_bound:
        For finite L: no accepted word is longer than this (≤ M - 1).
    witness:
        For L ∉ trC: a verified Property-(1) hardness witness.
    """

    complexity_class: ComplexityClass
    finite: bool
    in_trc: bool
    longest_word_bound: Optional[int] = None
    witness: Optional[HardnessWitness] = None

    def is_tractable(self):
        return self.complexity_class.is_tractable()

    def __str__(self):
        return "Classification(%s)" % self.complexity_class.value


def classify(lang_or_dfa, with_witness=True):
    """Classify RSPQ(L) per Theorem 2.

    ``with_witness=False`` skips the hardness-witness search for speed
    (classification itself never needs it).
    """
    dfa = _as_minimal_dfa(lang_or_dfa)
    finite = dfa.is_finite()
    if finite:
        # Every accepted word of a finite language visits each state at
        # most once along the run, so |w| <= M - 1.
        return Classification(
            ComplexityClass.AC0,
            finite=True,
            in_trc=True,  # finite languages are trivially in trC
            longest_word_bound=dfa.num_states - 1,
        )
    in_trc = is_in_trc(dfa)
    if in_trc:
        return Classification(
            ComplexityClass.NL_COMPLETE, finite=False, in_trc=True
        )
    witness = find_hardness_witness(dfa) if with_witness else None
    return Classification(
        ComplexityClass.NP_COMPLETE,
        finite=False,
        in_trc=False,
        witness=witness,
    )
