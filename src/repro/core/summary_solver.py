"""Literal implementation of the paper's summary algorithm (Lemmas 15-16).

This is the *faithful* rendition of the NL procedure: enumerate
candidate summaries w.r.t. the components of the minimal DFA
(Definition 3) and complete each into a nice path under the
Definition-4 ``acc(i)`` discipline.  Its enumeration cost is
``n^{O(M·N)}`` in the worst case — the paper's algorithm is a
*complexity-theoretic* device, not an engineered one — so this solver
is intended for small graphs, cross-validation, and didactics; the
production solver is :class:`repro.core.nice_paths.TractableSolver`.

How the enumeration works
-------------------------

A candidate summary is grown edge by edge over the product
(vertex, DFA state).  Inside a strongly connected *looping* component C
the stay is either

* **short**: at most ``N + 1`` vertices annotated in C, all pinned; or
* **compressed**: the first C-vertex is pinned, a ``Σ*_C`` gap marker
  follows (Definition 3's replacement), and then exactly ``N`` more
  edges with labels in ``Σ_C`` are pinned (the N last component
  vertices), after which the run must leave C.

After a gap the DFA state is unknown within C, so the search tracks the
*set* of possible states; for ``N ≥ M²`` Lemma 10 collapses it to a
singleton before the component is left (for smaller, paper-style
illustrative bounds the search branches over the survivors).  Each
complete candidate is filled gap-by-gap with shortest ``Σ*_C``-paths
avoiding all pinned vertices and earlier ``acc(i)`` balls — shared with
the production solver — and checked simple and L-labeled, so the
algorithm is sound for every ``N``; with the paper's ``N = 2M²`` it is
also complete (Lemma 14) and returns a shortest simple L-labeled path.
"""

from __future__ import annotations

from ..errors import NotInTrCError
from ..graphs.dbgraph import Path
from ..graphs.product import ProductGraph
from ..graphs.view import as_graph_view
from ..languages import Language
from ..languages.analysis import (
    internal_alphabet,
    looping_states,
    strongly_connected_components,
)
from .nice_paths import SolverStats, _complete_candidate, _Gap, _Run
from .summary import default_bound
from .trc import is_in_trc


class SummarySolver:
    """The paper's candidate-summary algorithm, executable.

    Parameters
    ----------
    language:
        A :class:`~repro.languages.Language` (or regex string) in trC.
    bound:
        The summary bound ``N`` (default: the paper's ``2M²``).
        Smaller values shrink the search as in the paper's worked
        examples; soundness is unconditional, completeness is
        guaranteed for ``N = 2M²``.
    require_trc:
        Refuse non-trC languages (default).  Disabling this turns the
        solver into a heuristic: still sound, not complete.
    """

    def __init__(self, language, bound=None, require_trc=True):
        if isinstance(language, str):
            language = Language(language)
        self.language = language
        self.dfa = language.dfa
        if require_trc and not is_in_trc(self.dfa):
            raise NotInTrCError(
                "SummarySolver requires L ∈ trC (Theorem 1)"
            )
        self.bound = default_bound(self.dfa) if bound is None else bound
        if self.bound < 1:
            raise ValueError("summary bound must be >= 1")
        components = strongly_connected_components(self.dfa)
        self._component_of = {}
        for index, component in enumerate(components):
            for state in component:
                self._component_of[state] = index
        self._components = components
        loops = looping_states(self.dfa)
        self._looping_components = {
            index
            for index, component in enumerate(components)
            if component & loops
        }
        self._sigma = {
            index: internal_alphabet(self.dfa, component)
            for index, component in enumerate(components)
        }
        self.last_stats = None

    # -- public API -------------------------------------------------------------

    def shortest_simple_path(self, graph, source, target, ctx=None):
        """Shortest simple L-labeled path (complete for ``N = 2M²``)."""
        graph.require_vertex(source)
        graph.require_vertex(target)
        if ctx is not None:
            ctx.check_deadline()
        stats = SolverStats()
        self.last_stats = stats  # invariant: allow=solver-purity (legacy stats shim)
        if source == target:
            if self.dfa.initial in self.dfa.accepting:
                return Path.single(source)
            return None
        search = _SummarySearch(self, graph, source, target, stats)
        best = search.run()
        if best is not None:
            assert best.is_simple()
            assert self.language.accepts(best.word)
        return best

    def exists(self, graph, source, target, ctx=None):
        return (
            self.shortest_simple_path(graph, source, target, ctx=ctx)
            is not None
        )


class _SummarySearch:
    """One query's candidate-summary enumeration."""

    def __init__(self, solver, graph, source, target, stats):
        self.solver = solver
        self.graph = graph
        self.source = source
        self.target = target
        self.stats = stats
        self.dfa = solver.dfa
        self.bound = solver.bound
        self.product = ProductGraph(graph, self.dfa)
        self.live = self.product.live_states(target)
        self.best = None
        self._reach_cache = {}
        # The completion step is shared with the production solver,
        # which runs integer-native over a GraphView; this didactic
        # enumeration stays on names and translates each candidate at
        # the completion boundary (negligible next to the n^{O(M·N)}
        # enumeration itself).
        self.view = as_graph_view(graph)

    def run(self):
        start_state = self.dfa.initial
        if (self.source, start_state) not in self.live:
            return None
        pieces = [_Run([self.source], [])]
        component = self.solver._component_of[start_state]
        self._pinned_mode(
            state=start_state,
            pieces=pieces,
            pinned={self.source},
            component=component,
            stay=1,
            gapped_components=frozenset(),
        )
        return self.best

    # -- helpers ------------------------------------------------------------------

    def _id_pieces(self, pieces):
        """Name-level candidate pieces translated to view ids/masks."""
        view = self.view
        translated = []
        for piece in pieces:
            if isinstance(piece, _Run):
                translated.append(_Run(
                    [view.vertex_id(vertex) for vertex in piece.vertices],
                    [view.label_id(label) for label in piece.labels],
                ))
            else:
                translated.append(_Gap(view.label_mask(piece.mask)))
        return translated

    def _try_complete(self, pieces):
        self.stats.candidates += 1
        id_path = _complete_candidate(
            self.view, self._id_pieces(pieces), self.stats
        )
        self.stats.completions += 1
        if id_path is None:
            return
        path = self.view.path(*id_path)
        if not self.language_accepts(path):
            return
        if self.best is None or len(path) < len(self.best):
            self.best = path

    def language_accepts(self, path):
        return self.solver.language.accepts(path.word)

    def _too_long(self, pieces):
        if self.best is None:
            return False
        total = 0
        for piece in pieces:
            total += len(piece.labels) if isinstance(piece, _Run) else 1
        return total >= len(self.best)

    # -- pinned (singleton-state) mode ------------------------------------------------

    def _pinned_mode(self, state, pieces, pinned, component, stay,
                     gapped_components):
        self.stats.dfs_steps += 1
        if self._too_long(pieces):
            return
        current = pieces[-1].vertices[-1]
        if (current, state) not in self.live:
            return
        if current == self.target:
            # A simple path must end here: extensions can never return.
            if state in self.dfa.accepting:
                self._try_complete(pieces)
            return
        solver = self.solver
        # Option 1: extend with a pinned edge.
        for label, nxt in sorted(self.graph.out_edges(current), key=repr):
            if label not in self.dfa.alphabet or nxt in pinned:
                continue
            next_state = self.dfa.transition(state, label)
            next_component = solver._component_of[next_state]
            if next_component == component:
                next_stay = stay + 1
                if next_stay > self.bound + 1:
                    continue  # long stays must be compressed instead
                if next_component in gapped_components:
                    # Components are left for good after their gap.
                    continue
            else:
                next_stay = 1
            run = pieces[-1]
            run.vertices.append(nxt)
            run.labels.append(label)
            pinned.add(nxt)
            self._pinned_mode(
                next_state, pieces, pinned, next_component, next_stay,
                gapped_components,
            )
            pinned.discard(nxt)
            run.vertices.pop()
            run.labels.pop()
        # Option 2: compress the current component (insert a gap).
        if (
            component in solver._looping_components
            and component not in gapped_components
            and stay == 1
        ):
            self._insert_gap(
                state, pieces, pinned, component, gapped_components
            )

    # -- gap insertion and the N pinned tail edges ---------------------------------------

    def _insert_gap(self, state, pieces, pinned, component,
                    gapped_components):
        symbols = self.solver._sigma[component]
        if not symbols:
            return
        current = pieces[-1].vertices[-1]
        candidates = self.graph.reachable_within(
            current, allowed_labels=symbols
        ) - {current}
        component_states = self.solver._components[component]
        for exit_vertex in sorted(candidates, key=repr):
            if exit_vertex in pinned:
                continue
            if not any(
                (exit_vertex, q) in self.live for q in component_states
            ):
                continue
            gap = _Gap(symbols)
            run = _Run([exit_vertex], [])
            pieces.append(gap)
            pieces.append(run)
            pinned.add(exit_vertex)
            self._tail_mode(
                frozenset(component_states),
                pieces,
                pinned,
                component,
                self.bound,
                gapped_components | {component},
            )
            pinned.discard(exit_vertex)
            pieces.pop()
            pieces.pop()

    def _tail_mode(self, state_set, pieces, pinned, component, remaining,
                   gapped_components):
        """Pin the N post-gap edges inside Σ_C, tracking a state set."""
        self.stats.dfs_steps += 1
        if self._too_long(pieces):
            return
        current = pieces[-1].vertices[-1]
        symbols = self.solver._sigma[component]
        if remaining == 0:
            # The component must now be left (or the path may end).
            for state in sorted(state_set):
                self._leave_component(
                    state, pieces, pinned, component, gapped_components
                )
            return
        if current == self.target:
            return  # the tail still needs edges; a dead candidate
        for label in sorted(symbols):
            for nxt in sorted(
                self.graph.successors(current, label), key=repr
            ):
                if nxt in pinned:
                    continue
                next_set = frozenset(
                    self.dfa.transition(q, label) for q in state_set
                )
                if not any((nxt, q) in self.live for q in next_set):
                    continue
                run = pieces[-1]
                run.vertices.append(nxt)
                run.labels.append(label)
                pinned.add(nxt)
                self._tail_mode(
                    next_set, pieces, pinned, component, remaining - 1,
                    gapped_components,
                )
                pinned.discard(nxt)
                run.vertices.pop()
                run.labels.pop()

    def _leave_component(self, state, pieces, pinned, component,
                         gapped_components):
        """Resume singleton mode right after a compressed component."""
        current = pieces[-1].vertices[-1]
        if (current, state) not in self.live:
            return
        if current == self.target:
            if state in self.dfa.accepting:
                self._try_complete(pieces)
            return
        symbols = self.solver._sigma[component]
        for label, nxt in sorted(self.graph.out_edges(current), key=repr):
            if label not in self.dfa.alphabet or label in symbols:
                continue  # the next edge must exit the component
            if nxt in pinned:
                continue
            next_state = self.dfa.transition(state, label)
            next_component = self.solver._component_of[next_state]
            if next_component == component:
                continue
            run = pieces[-1]
            run.vertices.append(nxt)
            run.labels.append(label)
            pinned.add(nxt)
            self._pinned_mode(
                next_state, pieces, pinned, next_component, 1,
                gapped_components,
            )
            pinned.discard(nxt)
            run.vertices.pop()
            run.labels.pop()
