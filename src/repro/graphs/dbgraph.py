"""Directed edge-labeled multigraphs — the paper's *db-graphs*.

A db-graph is a tuple ``G = (V, Σ, E)`` with ``E ⊆ V × Σ × V``.  This
implementation keeps per-source and per-(source, label) adjacency indexes
so the solvers can iterate exactly the edges they need.

Vertices are arbitrary hashable objects.  Edge labels are single symbols;
:meth:`DbGraph.add_word_edge` provides the Lemma-5 generalisation of
edges labeled by non-empty *words*, expanded on the fly through fresh
intermediate vertices.
"""

from __future__ import annotations

from collections import defaultdict

from ..errors import GraphError


class DbGraph:
    """A directed, edge-labeled multigraph (db-graph)."""

    def __init__(self):
        self._vertices = set()
        self._succ = defaultdict(set)          # v -> {(label, w)}
        self._pred = defaultdict(set)          # w -> {(label, v)}
        self._succ_by_label = defaultdict(set)  # (v, label) -> {w}
        self._labels = set()
        self._num_edges = 0
        self._fresh_counter = 0
        # Deterministic-order caches (repr-sorted views), lazily built
        # and invalidated wholesale whenever the graph mutates.  The
        # mutation counter keeps staleness checks to one int compare.
        self._mutations = 0
        self._cache_mutations = -1
        self._sorted_vertices = None
        self._sorted_succ = {}
        self._sorted_succ_by_label = {}
        # Integer-native GraphView over this graph, memoised per
        # mutation generation (see view()).
        self._view = None
        self._view_mutations = -1

    def _sync_caches(self):
        if self._cache_mutations != self._mutations:
            self._cache_mutations = self._mutations
            self._sorted_vertices = None
            self._sorted_succ = {}
            self._sorted_succ_by_label = {}

    # -- construction -----------------------------------------------------------

    def add_vertex(self, vertex):
        """Add ``vertex`` (idempotent); returns the vertex."""
        if vertex not in self._vertices:
            self._vertices.add(vertex)
            self._mutations += 1
        return vertex

    def add_edge(self, source, label, target):
        """Add the labeled edge ``(source, label, target)``.

        Vertices are created implicitly.  Adding the same edge twice is a
        no-op (E is a *set* of triples, per the paper's definition).
        """
        if not isinstance(label, str) or len(label) != 1:
            raise GraphError(
                "edge labels are single symbols, got %r "
                "(use add_word_edge for word labels)" % (label,)
            )
        self._vertices.add(source)
        self._vertices.add(target)
        key = (label, target)
        if key in self._succ[source]:
            return
        self._succ[source].add(key)
        self._pred[target].add((label, source))
        self._succ_by_label[(source, label)].add(target)
        self._labels.add(label)
        self._num_edges += 1
        self._mutations += 1

    def fresh_vertex(self, prefix="_w"):
        """A vertex name guaranteed not to collide with existing ones."""
        while True:
            candidate = "%s%d" % (prefix, self._fresh_counter)
            self._fresh_counter += 1
            if candidate not in self._vertices:
                return candidate

    def add_word_edge(self, source, word, target):
        """Add a path spelling ``word`` from ``source`` to ``target``.

        Implements the generalisation used in the Lemma 5 reduction: "an
        edge labeled by a word w can be replaced with a path whose edges
        form the word w", with fresh intermediate vertices.  Returns the
        list of intermediate vertices created (empty for 1-letter words).
        """
        if not word:
            raise GraphError("word edges must carry a non-empty word")
        intermediates = []
        current = source
        for index, symbol in enumerate(word):
            is_last = index == len(word) - 1
            next_vertex = target if is_last else self.fresh_vertex()
            if not is_last:
                intermediates.append(next_vertex)
            self.add_edge(current, symbol, next_vertex)
            current = next_vertex
        return intermediates

    # -- queries ------------------------------------------------------------------

    @property
    def num_vertices(self):
        return len(self._vertices)

    @property
    def num_edges(self):
        return self._num_edges

    @property
    def generation(self):
        """Monotonic mutation counter (bumps on any structural change).

        Consumers that snapshot derived state — the memoised
        :class:`~repro.graphs.view.DbGraphView`, the engine's result
        cache — compare generations to detect staleness in one int
        compare instead of hashing the edge set.
        """
        return self._mutations

    def vertices(self):
        """Iterator over all vertices, in deterministic (repr) order.

        The sort is cached and invalidated on mutation, so repeated
        calls — ``copy()``, ``subgraph()``, solver preprocessing — cost
        O(V) instead of O(V log V) each.
        """
        self._sync_caches()
        if self._sorted_vertices is None:
            self._sorted_vertices = sorted(self._vertices, key=repr)
        return iter(self._sorted_vertices)

    def labels(self):
        """The set of labels that occur on edges."""
        return frozenset(self._labels)

    def has_vertex(self, vertex):
        return vertex in self._vertices

    def require_vertex(self, vertex):
        if vertex not in self._vertices:
            raise GraphError("unknown vertex %r" % (vertex,))

    def has_edge(self, source, label, target):
        return (label, target) in self._succ.get(source, ())

    def out_edges(self, vertex):
        """Iterator of ``(label, target)`` pairs from ``vertex``."""
        return iter(self._succ.get(vertex, ()))

    def in_edges(self, vertex):
        """Iterator of ``(label, source)`` pairs into ``vertex``."""
        return iter(self._pred.get(vertex, ()))

    def sorted_out_edges(self, vertex):
        """``(label, target)`` pairs from ``vertex`` in repr order.

        Cached per vertex (invalidated on mutation); the hot-path
        counterpart of :meth:`out_edges` for solvers that need a
        deterministic expansion order.
        """
        self._sync_caches()
        pairs = self._sorted_succ.get(vertex)
        if pairs is None:
            pairs = tuple(sorted(self._succ.get(vertex, ()), key=repr))
            self._sorted_succ[vertex] = pairs
        return pairs

    def sorted_successors(self, vertex, label):
        """Targets of ``label``-edges from ``vertex`` in repr order (cached)."""
        self._sync_caches()
        key = (vertex, label)
        targets = self._sorted_succ_by_label.get(key)
        if targets is None:
            targets = tuple(
                sorted(self._succ_by_label.get(key, ()), key=repr)
            )
            self._sorted_succ_by_label[key] = targets
        return targets

    def successors(self, vertex, label=None):
        """Targets of edges from ``vertex`` (optionally by label)."""
        if label is None:
            return {target for _label, target in self._succ.get(vertex, ())}
        return set(self._succ_by_label.get((vertex, label), ()))

    def predecessors(self, vertex, label=None):
        """Sources of edges into ``vertex`` (optionally by label)."""
        if label is None:
            return {source for _label, source in self._pred.get(vertex, ())}
        return {
            source
            for edge_label, source in self._pred.get(vertex, ())
            if edge_label == label
        }

    def edges(self):
        """Iterator over all ``(source, label, target)`` triples.

        Deterministic (repr-sorted) order, served from the cached sorted
        views rather than re-sorting on every call.
        """
        for source in self.vertices():
            for label, target in self.sorted_out_edges(source):
                yield source, label, target

    def out_degree(self, vertex):
        return len(self._succ.get(vertex, ()))

    def in_degree(self, vertex):
        return len(self._pred.get(vertex, ()))

    def view(self):
        """The integer-native :class:`~repro.graphs.view.DbGraphView`.

        Memoised per mutation generation: repeated solves against an
        unchanged graph share one view (and its id tables); any
        mutation invalidates it wholesale, exactly like the sorted
        adjacency caches.
        """
        if self._view is None or self._view_mutations != self._mutations:
            from .view import DbGraphView

            self._view = DbGraphView(self)
            self._view_mutations = self._mutations
        return self._view

    # -- restricted views ------------------------------------------------------------

    def subgraph(self, vertices):
        """Induced subgraph on ``vertices`` (a new DbGraph)."""
        keep = set(vertices)
        result = DbGraph()
        for vertex in keep:
            self.require_vertex(vertex)
            result.add_vertex(vertex)
        for source, label, target in self.edges():
            if source in keep and target in keep:
                result.add_edge(source, label, target)
        return result

    def reversed(self):
        """Graph with every edge reversed."""
        result = DbGraph()
        for vertex in self._vertices:
            result.add_vertex(vertex)
        for source, label, target in self.edges():
            result.add_edge(target, label, source)
        return result

    def restricted_to_labels(self, labels):
        """Graph keeping only edges whose label is in ``labels``."""
        allowed = frozenset(labels)
        result = DbGraph()
        for vertex in self._vertices:
            result.add_vertex(vertex)
        for source, label, target in self.edges():
            if label in allowed:
                result.add_edge(source, label, target)
        return result

    def copy(self):
        """A deep structural copy."""
        result = DbGraph()
        for vertex in self._vertices:
            result.add_vertex(vertex)
        for source, label, target in self.edges():
            result.add_edge(source, label, target)
        return result

    # -- path utilities ---------------------------------------------------------------

    def is_path(self, path):
        """Check a ``Path`` is edge-consistent with this graph."""
        for source, label, target in path.steps():
            if not self.has_edge(source, label, target):
                return False
        return True

    def reachable_within(self, start, allowed_labels=None, forbidden=()):
        """Vertices reachable from ``start`` avoiding ``forbidden``.

        ``allowed_labels=None`` means every label.  ``start`` itself is
        included (unless it is forbidden, in which case the set is empty).
        """
        self.require_vertex(start)
        blocked = set(forbidden)
        if start in blocked:
            return set()
        seen = {start}
        stack = [start]
        while stack:
            vertex = stack.pop()
            for label, target in self._succ.get(vertex, ()):
                if allowed_labels is not None and label not in allowed_labels:
                    continue
                if target in blocked or target in seen:
                    continue
                seen.add(target)
                stack.append(target)
        return seen

    # -- interop --------------------------------------------------------------------------

    def to_networkx(self):
        """Export as a ``networkx.MultiDiGraph`` (label attribute: 'label')."""
        import networkx as nx

        graph = nx.MultiDiGraph()
        graph.add_nodes_from(self._vertices)
        for source, label, target in self.edges():
            graph.add_edge(source, target, label=label)
        return graph

    @classmethod
    def from_networkx(cls, graph, label_attr="label"):
        """Import from any networkx directed graph with labeled edges."""
        result = cls()
        for vertex in graph.nodes():
            result.add_vertex(vertex)
        for source, target, data in graph.edges(data=True):
            label = data.get(label_attr)
            if label is None:
                raise GraphError(
                    "edge (%r, %r) lacks the %r attribute"
                    % (source, target, label_attr)
                )
            result.add_edge(source, str(label), target)
        return result

    @classmethod
    def from_edges(cls, triples):
        """Build from an iterable of ``(source, label, target)`` triples."""
        result = cls()
        for source, label, target in triples:
            result.add_edge(source, label, target)
        return result

    def __repr__(self):
        return "DbGraph(|V|=%d, |E|=%d, Σ=%s)" % (
            self.num_vertices,
            self.num_edges,
            "".join(sorted(self._labels)),
        )


def sorted_out_edges_fn(graph):
    """A callable ``v -> repr-sorted (label, target) pairs`` for ``graph``.

    Solvers need a deterministic expansion order on their hot paths.
    When the graph exposes a cached or precompiled ``sorted_out_edges``
    (``DbGraph``, :class:`repro.engine.IndexedGraph`) that accessor is
    used directly; otherwise the sort is memoised per vertex so any
    graph-shaped object pays it at most once per solve.
    """
    accessor = getattr(graph, "sorted_out_edges", None)
    if accessor is not None:
        return accessor
    memo = {}

    def fallback(vertex):
        pairs = memo.get(vertex)
        if pairs is None:
            pairs = tuple(sorted(graph.out_edges(vertex), key=repr))
            memo[vertex] = pairs
        return pairs

    return fallback


def sorted_successors_fn(graph):
    """A callable ``(v, label) -> repr-sorted targets`` for ``graph``.

    Same dispatch-or-memoise contract as :func:`sorted_out_edges_fn`.
    """
    accessor = getattr(graph, "sorted_successors", None)
    if accessor is not None:
        return accessor
    memo = {}

    def fallback(vertex, label):
        key = (vertex, label)
        targets = memo.get(key)
        if targets is None:
            targets = tuple(
                sorted(graph.successors(vertex, label), key=repr)
            )
            memo[key] = targets
        return targets

    return fallback


class Path:
    """A labeled path ``(v_1, a_1, v_2, ..., a_k, v_{k+1})``.

    Stored as the vertex sequence plus the label sequence (one shorter).
    """

    __slots__ = ("vertices", "labels")

    def __init__(self, vertices, labels):
        vertices = tuple(vertices)
        labels = tuple(labels)
        if len(vertices) != len(labels) + 1:
            raise GraphError(
                "a path with %d labels needs %d vertices, got %d"
                % (len(labels), len(labels) + 1, len(vertices))
            )
        if not vertices:
            raise GraphError("a path has at least one vertex")
        self.vertices = vertices
        self.labels = labels

    @classmethod
    def single(cls, vertex):
        """The empty path sitting at ``vertex``."""
        return cls((vertex,), ())

    @property
    def source(self):
        return self.vertices[0]

    @property
    def target(self):
        return self.vertices[-1]

    @property
    def word(self):
        """The word spelled by the edge labels."""
        return "".join(self.labels)

    def __len__(self):
        """Path size = number of edges."""
        return len(self.labels)

    def is_simple(self):
        """True iff all vertices are distinct."""
        return len(set(self.vertices)) == len(self.vertices)

    def steps(self):
        """Iterator of ``(source, label, target)`` per edge."""
        for index, label in enumerate(self.labels):
            yield self.vertices[index], label, self.vertices[index + 1]

    def extend(self, label, vertex):
        """New path with one more edge appended."""
        return Path(self.vertices + (vertex,), self.labels + (label,))

    def concat(self, other):
        """Join with ``other`` (which must start at this path's target)."""
        if other.source != self.target:
            raise GraphError(
                "cannot concatenate: %r does not start at %r"
                % (other.source, self.target)
            )
        return Path(
            self.vertices + other.vertices[1:], self.labels + other.labels
        )

    def __eq__(self, other):
        return (
            isinstance(other, Path)
            and self.vertices == other.vertices
            and self.labels == other.labels
        )

    def __hash__(self):
        return hash((self.vertices, self.labels))

    def __repr__(self):
        if not self.labels:
            return "Path(%r)" % (self.vertices[0],)
        pieces = [repr(self.vertices[0])]
        for index, label in enumerate(self.labels):
            pieces.append("-%s->" % label)
            pieces.append(repr(self.vertices[index + 1]))
        return "Path(%s)" % " ".join(pieces)
