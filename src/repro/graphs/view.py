"""GraphView — the integer-native read layer under the solver cores.

The three solver cores (finite / tractable / exact) spend their hot
loops asking the same four questions: *what are this vertex's
successors, partitioned by label?  what is its out-degree?  who points
at it?  have I visited it?*  Asking those questions of a
:class:`~repro.graphs.dbgraph.DbGraph` means hashing vertex names and
label strings on every expansion.  A :class:`GraphView` answers them in
integers instead: vertices carry contiguous ids ``0..n-1`` assigned in
the graph's deterministic (repr-sorted) order, labels carry ids
``0..L-1`` in sorted order, and label *sets* become bitmasks — so a
visited set is a flat ``bytearray`` index, a label-class test is one
shift-and-mask, and a DFA transition is a list lookup.

Two implementations:

:class:`DbGraphView`
    Dict-backed with *reference semantics*: every read goes through the
    live graph's own adjacency (plus its cached repr-sorted views), so
    the view is cheap to build and never copies the edge set.  This is
    what a direct ``solve_rspq`` on a mutable :class:`DbGraph` uses —
    ``DbGraph.view()`` memoises one per mutation generation.

``CsrView`` (:mod:`repro.engine.indexed`)
    Frozen CSR arrays with everything precompiled: per-vertex integer
    adjacency pairs, per-label forward CSR slices, and a
    label-partitioned *reverse* CSR for backward product searches.
    This is what :class:`~repro.engine.QueryEngine` (and therefore
    every batch and HTTP-served query) hands to the solvers.

Both views assign vertex ids in the same repr-sorted order and iterate
adjacency in the same precomputed repr order, so the solvers return
**bit-identical paths** on either backing — the property the
CSR-vs-DbGraph differential suite in ``tests/test_hypothesis_solvers``
pins down.

:func:`as_graph_view` is the solvers' entry point: it accepts a view
(identity), anything exposing ``.view()`` (``DbGraph``,
``IndexedGraph``), or any duck-typed graph with the ``DbGraph`` read
API (wrapped in a fresh :class:`DbGraphView`).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterable, Sequence

from ..errors import GraphError
from .dbgraph import (
    DbGraph,
    Path,
    sorted_out_edges_fn,
    sorted_successors_fn,
)

if TYPE_CHECKING:
    from .reach import ReachabilityIndex


class GraphView:
    """Abstract integer-native graph view (see module docstring).

    Subclasses provide ``_vertex_of`` / ``_id_of`` (vertex tables),
    ``_label_of`` / ``_label_ids`` (label tables) and the adjacency
    methods :meth:`out`, :meth:`out_by_label`, :meth:`in_pairs`,
    :meth:`in_by_label` and :meth:`out_degree`.  Vertex ids follow the
    repr-sorted vertex order; label ids follow sorted label order;
    adjacency iterates in the same repr order every solver historically
    sorted into, which is what makes results view-independent.
    """

    #: Short machine-readable backend name ("dict" / "csr").
    kind = "abstract"

    #: Subclass contract: the id tables behind the generic accessors.
    _vertex_of: Sequence[Any]
    _id_of: dict[Any, int]
    _label_of: Sequence[str]
    _label_ids: dict[str, int]
    _reach_index: "ReachabilityIndex | None"

    #: Mutation generation of the backing graph at view-build time
    #: (always 0 for frozen views).  The engine's result cache keys on
    #: it, so cached answers die with the view they were computed on.
    generation = 0

    # -- reachability index -------------------------------------------------------

    def reachability(self) -> ReachabilityIndex:
        """The :class:`~repro.graphs.reach.ReachabilityIndex` for this view.

        Built lazily on first use and memoised on the view instance —
        a :class:`DbGraphView` is rebuilt per mutation generation, so
        its index can never serve a stale graph; a ``CsrView`` is
        frozen, so its index (possibly thawed straight from a snapshot)
        lives as long as the compiled graph.  Both backends condense in
        the same canonical order, so the component partition — and
        therefore every pruning decision — is view-independent.
        """
        index = getattr(self, "_reach_index", None)
        if index is None:
            index = self._build_reachability()
            self._reach_index = index
        return index

    def _build_reachability(self) -> ReachabilityIndex:
        from .reach import ReachabilityIndex

        return ReachabilityIndex.from_view(self)

    # -- id tables ---------------------------------------------------------------

    @property
    def num_vertices(self) -> int:
        return len(self._vertex_of)

    @property
    def num_labels(self) -> int:
        return len(self._label_of)

    def vertex_id(self, vertex: Any) -> int:
        """The contiguous int id of ``vertex`` (GraphError if unknown)."""
        try:
            return self._id_of[vertex]
        except KeyError:
            raise GraphError("unknown vertex %r" % (vertex,)) from None

    def vertex_at(self, vertex_id: int) -> Any:
        """The vertex carrying id ``vertex_id``."""
        return self._vertex_of[vertex_id]

    def label_id(self, label: str) -> int | None:
        """The int id of ``label``, or ``None`` when no edge carries it."""
        return self._label_ids.get(label)

    def label_at(self, label_id: int) -> str:
        return self._label_of[label_id]

    def label_mask(self, symbols: Iterable[str]) -> int:
        """Bitmask over label ids for a set of label strings.

        Symbols that label no edge contribute no bit — a class test
        against the mask then fails exactly like the string-set test
        used to.
        """
        mask = 0
        label_ids = self._label_ids
        for symbol in symbols:
            label_id = label_ids.get(symbol)
            if label_id is not None:
                mask |= 1 << label_id
        return mask

    def word_label_ids(self, word: Iterable[str]) -> tuple[int | None, ...]:
        """Per-letter label ids; ``None`` marks a letter with no edges."""
        label_ids = self._label_ids
        return tuple(label_ids.get(symbol) for symbol in word)

    def out_csr(
        self, label_id: int
    ) -> tuple[Sequence[int], Sequence[int]] | None:
        """Bulk successors-by-label: the ``(indptr, targets)`` CSR pair.

        ``targets[indptr[v]:indptr[v + 1]]`` lists the ``label_id``-
        successors of vertex ``v`` in ascending id order — the whole
        label partition in two flat arrays, so a multi-source sweep
        (:mod:`repro.engine.vectorized`) can expand every pending
        query's frontier through one label without a per-vertex method
        call.  Returns ``None`` on backings with no CSR arrays (the
        dict-backed view) — callers must fall back to per-vertex
        :meth:`out_by_label` or per-query solving.
        """
        return None

    def path(self, vertex_ids: Sequence[int],
             label_ids: Sequence[int]) -> Path:
        """Materialise an id-path back into a named :class:`Path`."""
        vertex_of = self._vertex_of
        label_of = self._label_of
        return Path(
            tuple(vertex_of[vertex_id] for vertex_id in vertex_ids),
            tuple(label_of[label_id] for label_id in label_ids),
        )


class DbGraphView(GraphView):
    """Dict-backed :class:`GraphView` with reference semantics.

    Reads go straight through the backing graph's adjacency (using its
    cached repr-sorted accessors when available), converting names to
    ids on the fly — nothing about the edge set is copied, so the view
    costs one pass over the vertex set to build.  The id tables are a
    snapshot: after the graph mutates, build a new view
    (``DbGraph.view()`` does this automatically via its mutation
    counter).
    """

    kind = "dict"

    def __init__(self, graph: Any) -> None:
        self.graph = graph
        self.generation = getattr(graph, "generation", 0)
        if isinstance(graph, DbGraph):
            # DbGraph.vertices() is already repr-sorted (and cached).
            vertices = tuple(graph.vertices())
        else:
            vertices = tuple(sorted(graph.vertices(), key=repr))
        self._vertex_of = vertices
        self._id_of = {
            vertex: index for index, vertex in enumerate(vertices)
        }
        self._label_of = tuple(sorted(graph.labels()))
        self._label_ids = {
            label: index for index, label in enumerate(self._label_of)
        }
        self._sorted_out = sorted_out_edges_fn(graph)
        self._sorted_successors = sorted_successors_fn(graph)

    def out(self, vertex_id: int) -> list[tuple[int, int]]:
        """``(label_id, target_id)`` pairs in repr order."""
        label_ids = self._label_ids
        id_of = self._id_of
        return [
            (label_ids[label], id_of[target])
            for label, target in self._sorted_out(self._vertex_of[vertex_id])
        ]

    def out_by_label(self, vertex_id: int,
                     label_id: int | None) -> Sequence[int]:
        """Target ids of ``label_id``-edges, ascending (= repr order)."""
        if label_id is None:
            return ()
        id_of = self._id_of
        return [
            id_of[target]
            for target in self._sorted_successors(
                self._vertex_of[vertex_id], self._label_of[label_id]
            )
        ]

    def in_pairs(self, vertex_id: int) -> list[tuple[int, int]]:
        """``(label_id, source_id)`` pairs (order unspecified)."""
        label_ids = self._label_ids
        id_of = self._id_of
        return [
            (label_ids[label], id_of[source])
            for label, source in self.graph.in_edges(
                self._vertex_of[vertex_id]
            )
        ]

    def in_by_label(self, vertex_id: int,
                    label_id: int | None) -> Sequence[int]:
        """Source ids of ``label_id``-edges into ``vertex_id``."""
        if label_id is None:
            return ()
        label = self._label_of[label_id]
        id_of = self._id_of
        return [
            id_of[source]
            for edge_label, source in self.graph.in_edges(
                self._vertex_of[vertex_id]
            )
            if edge_label == label
        ]

    def out_degree(self, vertex_id: int) -> int:
        return self.graph.out_degree(self._vertex_of[vertex_id])

    def __repr__(self) -> str:
        return "DbGraphView(|V|=%d, |Σ|=%d over %r)" % (
            self.num_vertices, self.num_labels, self.graph,
        )


def as_graph_view(graph: Any) -> GraphView:
    """The :class:`GraphView` for ``graph`` (identity when already one).

    ``DbGraph`` and :class:`~repro.engine.indexed.IndexedGraph` expose
    a cached ``view()`` (rebuilt on mutation / built once per compiled
    graph); any other duck-typed graph with the ``DbGraph`` read API is
    wrapped in a fresh :class:`DbGraphView`.
    """
    if isinstance(graph, GraphView):
        return graph
    viewer = getattr(graph, "view", None)
    if viewer is not None:
        return viewer()
    return DbGraphView(graph)
