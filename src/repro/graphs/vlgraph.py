"""Vertex-labeled and vertex+edge-labeled graphs (Section 4.1).

The paper treats these as special db-graphs:

* A *vl-graph* (vertices labeled) becomes a db-graph in which the label
  of an edge ``(x, y)`` is the label of its **target** vertex, so no two
  edges entering the same vertex carry different labels.
* An *evl-graph* (vertices and edges labeled) becomes a db-graph over the
  product alphabet ``Σ_V × Σ_E``; we encode the pair ``(v_label,
  e_label)`` as a single fresh symbol via an explicit pair alphabet.

Queries on these graphs are regular languages over the vertex alphabet
(vl) or the pair alphabet (evl); the encoders return ordinary
:class:`~repro.graphs.dbgraph.DbGraph` objects plus the mapping needed to
interpret words.
"""

from __future__ import annotations

from ..errors import GraphError
from .dbgraph import DbGraph


class VlGraph:
    """A directed graph whose *vertices* carry labels."""

    def __init__(self):
        self._labels = {}
        self._edges = set()

    def add_vertex(self, vertex, label):
        """Add ``vertex`` with ``label`` (re-adding must not change it)."""
        if not isinstance(label, str) or len(label) != 1:
            raise GraphError("vertex labels are single symbols, got %r" % (label,))
        existing = self._labels.get(vertex)
        if existing is not None and existing != label:
            raise GraphError(
                "vertex %r already labeled %r, cannot relabel to %r"
                % (vertex, existing, label)
            )
        self._labels[vertex] = label
        return vertex

    def add_edge(self, source, target):
        """Add the (unlabeled) edge; both endpoints must exist."""
        for vertex in (source, target):
            if vertex not in self._labels:
                raise GraphError("unknown vertex %r (add it with a label)" % (vertex,))
        self._edges.add((source, target))

    @property
    def num_vertices(self):
        return len(self._labels)

    @property
    def num_edges(self):
        return len(self._edges)

    def vertices(self):
        return iter(sorted(self._labels, key=repr))

    def label_of(self, vertex):
        try:
            return self._labels[vertex]
        except KeyError:
            raise GraphError("unknown vertex %r" % (vertex,)) from None

    def edges(self):
        return iter(sorted(self._edges, key=repr))

    def to_dbgraph(self):
        """Encode as a db-graph: edge ``(x, y)`` gets label ``λ(y)``.

        The *source* vertex's label is not represented on any edge, which
        matches the paper's convention that a path's word is the sequence
        of labels of the traversed vertices **after** the start vertex.
        Callers that want the full vertex-word (including the start
        label) should prepend ``label_of(x)`` themselves; the vl-solver
        in :mod:`repro.core.vlg` handles this via language quotients.
        """
        result = DbGraph()
        for vertex in self._labels:
            result.add_vertex(vertex)
        for source, target in self._edges:
            result.add_edge(source, self._labels[target], target)
        return result

    def __repr__(self):
        return "VlGraph(|V|=%d, |E|=%d)" % (self.num_vertices, self.num_edges)


class EvlGraph:
    """A directed graph with labels on both vertices and edges."""

    def __init__(self):
        self._labels = {}
        self._edges = set()
        self._edge_labels = set()

    def add_vertex(self, vertex, label):
        if not isinstance(label, str) or len(label) != 1:
            raise GraphError("vertex labels are single symbols, got %r" % (label,))
        existing = self._labels.get(vertex)
        if existing is not None and existing != label:
            raise GraphError(
                "vertex %r already labeled %r, cannot relabel to %r"
                % (vertex, existing, label)
            )
        self._labels[vertex] = label
        return vertex

    def add_edge(self, source, edge_label, target):
        if not isinstance(edge_label, str) or len(edge_label) != 1:
            raise GraphError("edge labels are single symbols, got %r" % (edge_label,))
        for vertex in (source, target):
            if vertex not in self._labels:
                raise GraphError("unknown vertex %r (add it with a label)" % (vertex,))
        self._edges.add((source, edge_label, target))
        self._edge_labels.add(edge_label)

    @property
    def num_vertices(self):
        return len(self._labels)

    @property
    def num_edges(self):
        return len(self._edges)

    def vertices(self):
        return iter(sorted(self._labels, key=repr))

    def label_of(self, vertex):
        try:
            return self._labels[vertex]
        except KeyError:
            raise GraphError("unknown vertex %r" % (vertex,)) from None

    def edges(self):
        return iter(sorted(self._edges, key=repr))

    def pair_alphabet(self):
        """All ``(vertex_label, edge_label)`` pairs that can occur."""
        vertex_labels = sorted(set(self._labels.values()))
        edge_labels = sorted(self._edge_labels)
        return [(v, e) for v in vertex_labels for e in edge_labels]

    def to_dbgraph(self, pair_encoding=None):
        """Encode as a db-graph over an encoded pair alphabet.

        Edge ``(x, e, y)`` becomes an edge labeled ``enc((λ(y), e))``.
        Returns ``(dbgraph, encoding)`` where ``encoding`` maps label
        pairs to single symbols.  A default encoding assigns successive
        printable symbols.
        """
        if pair_encoding is None:
            pair_encoding = default_pair_encoding(self.pair_alphabet())
        result = DbGraph()
        for vertex in self._labels:
            result.add_vertex(vertex)
        for source, edge_label, target in self._edges:
            pair = (self._labels[target], edge_label)
            result.add_edge(source, pair_encoding[pair], target)
        return result, pair_encoding

    def __repr__(self):
        return "EvlGraph(|V|=%d, |E|=%d)" % (self.num_vertices, self.num_edges)


_ENCODING_POOL = (
    "0123456789ABCDEFGHIJKLMNOPQRSTUVWXYZ"
    "abcdefghijklmnopqrstuvwxyz"
    "!#$%&'@~`_-.:;<>"
)


def default_pair_encoding(pairs):
    """Assign a distinct single symbol to every label pair."""
    pairs = list(pairs)
    if len(pairs) > len(_ENCODING_POOL):
        raise GraphError(
            "pair alphabet too large for the default encoding (%d > %d)"
            % (len(pairs), len(_ENCODING_POOL))
        )
    return {pair: _ENCODING_POOL[index] for index, pair in enumerate(pairs)}


def encode_pair_word(word_pairs, encoding):
    """Encode a sequence of ``(vertex_label, edge_label)`` pairs."""
    return "".join(encoding[pair] for pair in word_pairs)
