"""Label-constrained reachability index over a :class:`GraphView`.

Every RSPQ — tractable or not — answers NOT_FOUND for free when the
target is not even *walk*-reachable from the source under the labels
the language can ever use: every simple path is a path, so plain
reachability under the query's label mask is a sound upper bound on
simple-path existence.  This module precomputes exactly that bound:

1. an **SCC condensation** of the graph (iterative Tarjan over the
   view's adjacency, vertices in id order, neighbours in the canonical
   repr order — so both view backends number components identically);
2. per-edge-label **condensation edges** (inter-component only;
   intra-component movement is free in the condensation, which is what
   makes every answer an *overapproximation* of label-restricted
   reachability — the sound direction for pruning);
3. lazy **bitset closures** per label mask: ``reach[c]`` is a Python
   int whose bit ``d`` says component ``c`` can reach component ``d``
   using only inter-component edges whose label is in the mask.
   Components come out of Tarjan in reverse topological order, so one
   ascending pass computes the closure with pure big-int ORs.

Soundness contract
------------------

``can_reach(u, v, mask)`` may say *True* for a pair that label-mask
reachability actually rules out (intra-component hops are not
label-checked), but it never says *False* for a reachable pair.  Hence:

* ``False`` proves NOT_FOUND for any query whose paths only use labels
  in the mask (the engine's short-circuit);
* ``comps_to(target, mask)`` marks every component that might still
  reach the target — dropping product states outside it never drops a
  solution (the solvers' frontier pruning);
* with the full label mask the condensation is exact: ``can_reach``
  equals plain graph reachability, which is what lets
  :meth:`IndexedGraph.reachable_within` dedupe onto this index.

The index is immutable once built and safe to share across query
threads: the memo caches (closure tables, filter bytearrays) are
LRU-bounded and guarded by one lock; racers may duplicate a build, but
the results are immutable so the worst a race costs is work.
"""

from __future__ import annotations

import threading
from array import array
from collections import OrderedDict

#: Bounds on the index's internal memo caches, so a long-lived serving
#: process with many distinct masks/endpoints cannot grow them without
#: limit (the closure tables are O(num_comps²) bits *per mask*).  Both
#: evict least-recently-used; correctness never depends on a cache hit.
MAX_MASK_TABLES = 64
MAX_FILTERS = 4096


def condense(num_vertices, out_fn):
    """SCC condensation of the adjacency ``out_fn(v) -> (label_id, w)...``.

    Returns ``(comp_of, num_comps, label_edges)``:

    * ``comp_of`` — ``array('l')`` mapping vertex id to component id,
      components numbered in *reverse topological* completion order
      (an inter-component edge always points to a smaller id);
    * ``num_comps`` — number of strongly connected components;
    * ``label_edges`` — tuple with one entry per label id: the sorted
      tuple of distinct inter-component ``(comp_from, comp_to)`` pairs
      carried by edges of that label.

    The traversal order (vertices ascending, neighbours in the view's
    canonical order) is deterministic, so two views over the same graph
    produce identical component numberings.
    """
    indices = [-1] * num_vertices
    lowlink = [0] * num_vertices
    on_stack = bytearray(num_vertices)
    scc_stack = []
    comp_of = array("l", [0] * num_vertices)
    counter = 0
    num_comps = 0
    for root in range(num_vertices):
        if indices[root] != -1:
            continue
        indices[root] = lowlink[root] = counter
        counter += 1
        scc_stack.append(root)
        on_stack[root] = 1
        call_stack = [(root, iter(out_fn(root)))]
        while call_stack:
            vertex, edges = call_stack[-1]
            advanced = False
            for _label_id, target in edges:
                if indices[target] == -1:
                    indices[target] = lowlink[target] = counter
                    counter += 1
                    scc_stack.append(target)
                    on_stack[target] = 1
                    call_stack.append((target, iter(out_fn(target))))
                    advanced = True
                    break
                if on_stack[target] and indices[target] < lowlink[vertex]:
                    lowlink[vertex] = indices[target]
            if advanced:
                continue
            call_stack.pop()
            if call_stack:
                parent = call_stack[-1][0]
                if lowlink[vertex] < lowlink[parent]:
                    lowlink[parent] = lowlink[vertex]
            if lowlink[vertex] == indices[vertex]:
                while True:
                    member = scc_stack.pop()
                    on_stack[member] = 0
                    comp_of[member] = num_comps
                    if member == vertex:
                        break
                num_comps += 1

    # Inter-component edges, deduped per label.
    num_labels = 0
    edge_sets = []
    for vertex in range(num_vertices):
        comp_v = comp_of[vertex]
        for label_id, target in out_fn(vertex):
            if label_id >= num_labels:
                edge_sets.extend(set() for _ in range(label_id + 1 - num_labels))
                num_labels = label_id + 1
            comp_t = comp_of[target]
            if comp_t != comp_v:
                edge_sets[label_id].add((comp_v, comp_t))
    label_edges = tuple(tuple(sorted(edges)) for edges in edge_sets)
    return comp_of, num_comps, label_edges


class ReachabilityIndex:
    """Compiled label-constrained reachability oracle (see module doc).

    Parameters
    ----------
    comp_of:
        Vertex id -> component id (reverse-topological numbering).
    num_comps:
        Number of components.
    label_edges:
        Per label id, the distinct inter-component ``(from, to)`` pairs.
    num_labels:
        Total label count of the view (``label_edges`` may be shorter
        when trailing labels carry no inter-component edge).
    """

    def __init__(self, comp_of, num_comps, label_edges, num_labels=None):
        self.comp_of = comp_of
        self.num_comps = num_comps
        if num_labels is None:
            num_labels = len(label_edges)
        self.num_labels = max(num_labels, len(label_edges))
        self.full_mask = (1 << self.num_labels) - 1
        label_out = []
        for edges in label_edges:
            out = {}
            for comp_from, comp_to in edges:
                out.setdefault(comp_from, []).append(comp_to)
            label_out.append({
                comp_from: tuple(comp_tos)
                for comp_from, comp_tos in out.items()
            })
        while len(label_out) < self.num_labels:
            label_out.append({})
        self._label_out = label_out
        self.num_condensation_edges = sum(len(edges) for edges in label_edges)
        self._mask_reach = OrderedDict()
        self._to_filters = OrderedDict()
        self._from_filters = OrderedDict()
        self._lock = threading.Lock()

    @classmethod
    def from_view(cls, view):
        """Build the index by walking ``view.out`` (deterministic order)."""
        comp_of, num_comps, label_edges = condense(
            view.num_vertices, view.out
        )
        return cls(comp_of, num_comps, label_edges,
                   num_labels=view.num_labels)

    # -- closures ----------------------------------------------------------------

    def _normalised(self, mask):
        if mask is None:
            return self.full_mask
        return mask & self.full_mask

    # invariant: holds-lock
    def _cache_get(self, cache, key):
        # Caller holds the lock.
        value = cache.get(key)
        if value is not None:
            cache.move_to_end(key)
        return value

    @staticmethod
    # invariant: holds-lock
    def _cache_put(cache, key, value, capacity):
        # Caller holds the lock.  LRU-bounded: the index must stay
        # memory-safe in a long-lived serving process however many
        # distinct masks/endpoints the workload throws at it.
        cache[key] = value
        cache.move_to_end(key)
        if len(cache) > capacity:
            cache.popitem(last=False)

    def _reach_for(self, mask):
        """Per-component reachability bitsets under ``mask`` (cached).

        One ascending pass over the reverse-topologically numbered
        components: every inter-component edge points to an
        already-finished component, so ``reach[c]`` is its own bit OR'd
        with the closures of its mask-labelled out-neighbours.
        """
        with self._lock:
            table = self._cache_get(self._mask_reach, mask)
        if table is not None:
            return table
        outs = []
        bits = mask
        while bits:
            low = bits & -bits
            outs.append(self._label_out[low.bit_length() - 1])
            bits ^= low
        table = [0] * self.num_comps
        for comp in range(self.num_comps):
            reach = 1 << comp
            for out in outs:
                for succ in out.get(comp, ()):
                    reach |= table[succ]
            table[comp] = reach
        with self._lock:
            self._cache_put(
                self._mask_reach, mask, table, MAX_MASK_TABLES
            )
        return table

    # -- queries -----------------------------------------------------------------

    def can_reach(self, source_id, target_id, mask=None):
        """May ``target_id`` be walk-reachable from ``source_id`` under
        ``mask``?  ``False`` is a proof of unreachability; ``True`` is
        only an overapproximation (see module docstring)."""
        comp_source = self.comp_of[source_id]
        comp_target = self.comp_of[target_id]
        if comp_source == comp_target:
            return True
        mask = self._normalised(mask)
        return bool(self._reach_for(mask)[comp_source] >> comp_target & 1)

    def comps_to(self, target_id, mask=None):
        """Bytearray over components: 1 where the component may still
        reach ``target_id`` under ``mask`` (frontier-pruning filter)."""
        mask = self._normalised(mask)
        comp_target = self.comp_of[target_id]
        key = (comp_target, mask)
        with self._lock:
            filter_ = self._cache_get(self._to_filters, key)
        if filter_ is None:
            table = self._reach_for(mask)
            filter_ = bytearray(self.num_comps)
            for comp in range(self.num_comps):
                if table[comp] >> comp_target & 1:
                    filter_[comp] = 1
            with self._lock:
                self._cache_put(self._to_filters, key, filter_, MAX_FILTERS)
        return filter_

    def comps_from(self, source_id, mask=None):
        """Bytearray over components: 1 where the component may be
        walk-reachable from ``source_id`` under ``mask``."""
        mask = self._normalised(mask)
        comp_source = self.comp_of[source_id]
        key = (comp_source, mask)
        with self._lock:
            filter_ = self._cache_get(self._from_filters, key)
        if filter_ is None:
            bits = self._reach_for(mask)[comp_source]
            filter_ = bytearray(self.num_comps)
            while bits:
                low = bits & -bits
                filter_[low.bit_length() - 1] = 1
                bits ^= low
            with self._lock:
                self._cache_put(
                    self._from_filters, key, filter_, MAX_FILTERS
                )
        return filter_

    def describe(self):
        """JSON-safe shape/usage counters (service observability)."""
        with self._lock:
            masks_cached = len(self._mask_reach)
        return {
            "num_components": self.num_comps,
            "condensation_edges": self.num_condensation_edges,
            "masks_cached": masks_cached,
        }

    def __repr__(self):
        return "ReachabilityIndex(comps=%d, edges=%d, labels=%d)" % (
            self.num_comps, self.num_condensation_edges, self.num_labels,
        )
