"""Graph-database substrate: db-graphs, vl/evl graphs, generators, IO."""

from .dbgraph import DbGraph, Path
from .vlgraph import EvlGraph, VlGraph
from .product import ProductGraph, rpq_reachable, shortest_walk
from . import generators, io

__all__ = [
    "DbGraph",
    "EvlGraph",
    "Path",
    "ProductGraph",
    "VlGraph",
    "generators",
    "io",
    "rpq_reachable",
    "shortest_walk",
]
