"""Graph-database substrate: db-graphs, vl/evl graphs, generators, IO."""

from .dbgraph import DbGraph, Path
from .view import DbGraphView, GraphView, as_graph_view
from .vlgraph import EvlGraph, VlGraph
from .product import ProductGraph, rpq_reachable, shortest_walk
from . import generators, io

__all__ = [
    "DbGraph",
    "DbGraphView",
    "EvlGraph",
    "GraphView",
    "Path",
    "ProductGraph",
    "VlGraph",
    "as_graph_view",
    "generators",
    "io",
    "rpq_reachable",
    "shortest_walk",
]
