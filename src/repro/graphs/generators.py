"""Synthetic workload generators.

Every generator takes an explicit ``seed`` where randomness is involved
so all experiments are reproducible.  The families cover:

* uniform random labeled digraphs (the generic workload),
* layered DAGs (combined-complexity experiments, Theorem 8),
* grid graphs (the Barrett et al. hardness family mentioned in Related
  Work),
* the Figure-3 "component chain" family (summaries / nice paths),
* the Figure-4 loop-elimination counterexample family,
* disjoint-path gadgets (Lemma 5 reduction experiments),
* a small transportation-network generator (the Google-Maps motivation
  from the introduction).
"""

from __future__ import annotations

import random

from .dbgraph import DbGraph
from .vlgraph import VlGraph


def random_labeled_graph(num_vertices, num_edges, alphabet, seed=0):
    """Uniform random digraph: ``num_edges`` distinct labeled edges.

    Self-loop edges are allowed (they can never appear on a simple path
    of length ≥ 1 but exercise the solvers' filtering).
    """
    rng = random.Random(seed)
    alphabet = sorted(alphabet)
    graph = DbGraph()
    for vertex in range(num_vertices):
        graph.add_vertex(vertex)
    max_edges = num_vertices * num_vertices * len(alphabet)
    num_edges = min(num_edges, max_edges)
    added = 0
    attempts = 0
    while added < num_edges and attempts < 50 * num_edges + 100:
        attempts += 1
        source = rng.randrange(num_vertices)
        target = rng.randrange(num_vertices)
        label = rng.choice(alphabet)
        if not graph.has_edge(source, label, target):
            graph.add_edge(source, label, target)
            added += 1
    return graph


def random_vl_graph(num_vertices, num_edges, alphabet, seed=0):
    """Uniform random vertex-labeled digraph."""
    rng = random.Random(seed)
    alphabet = sorted(alphabet)
    graph = VlGraph()
    for vertex in range(num_vertices):
        graph.add_vertex(vertex, rng.choice(alphabet))
    added = 0
    attempts = 0
    while added < num_edges and attempts < 50 * num_edges + 100:
        attempts += 1
        source = rng.randrange(num_vertices)
        target = rng.randrange(num_vertices)
        before = graph.num_edges
        graph.add_edge(source, target)
        if graph.num_edges > before:
            added += 1
    return graph


def labeled_path(word, start=0):
    """A path graph spelling ``word`` on vertices ``start..start+len``."""
    graph = DbGraph()
    graph.add_vertex(start)
    for index, symbol in enumerate(word):
        graph.add_edge(start + index, symbol, start + index + 1)
    return graph


def labeled_cycle(word, start=0):
    """A cycle spelling ``word`` repeatedly (``len(word)`` vertices)."""
    graph = DbGraph()
    size = len(word)
    for index, symbol in enumerate(word):
        graph.add_edge(
            start + index, symbol, start + (index + 1) % size
        )
    return graph


def layered_dag(num_layers, layer_width, alphabet, density=0.5, seed=0):
    """A DAG of ``num_layers`` layers with random inter-layer edges.

    Vertices are pairs ``(layer, index)``.  Every path in a DAG is
    simple, which is exactly the Theorem-8 corner case.
    """
    rng = random.Random(seed)
    alphabet = sorted(alphabet)
    graph = DbGraph()
    for layer in range(num_layers):
        for index in range(layer_width):
            graph.add_vertex((layer, index))
    for layer in range(num_layers - 1):
        for index in range(layer_width):
            for next_index in range(layer_width):
                if rng.random() < density:
                    graph.add_edge(
                        (layer, index),
                        rng.choice(alphabet),
                        (layer + 1, next_index),
                    )
    return graph


def grid_graph(rows, cols, right_label="a", down_label="b"):
    """Directed grid: right edges labeled ``right_label``, down edges
    ``down_label`` — the hardness family of Barrett et al."""
    graph = DbGraph()
    for row in range(rows):
        for col in range(cols):
            graph.add_vertex((row, col))
    for row in range(rows):
        for col in range(cols):
            if col + 1 < cols:
                graph.add_edge((row, col), right_label, (row, col + 1))
            if row + 1 < rows:
                graph.add_edge((row, col), down_label, (row + 1, col))
    return graph


def figure3_graph():
    """The Figure-3 graph of the paper (Examples 2/3), reconstructed.

    15 vertices ``v1..v15`` for the language
    ``a(c≥2+ε)(a+b)*(ac)?a*`` of Figure 2.  The long path runs through
    the ``c``-looping component C1 (vertices v4..v9, with the detour
    vertices v5/v6 providing alternative component-internal routes —
    the paper's acc(1)), then through the ``a/b`` component C2
    (v10..v13, detours v11/v12 = acc(2)), then two final ``a`` edges.
    Returns ``(graph, v1, v15)``.
    """
    graph = DbGraph()
    v = {i: "v%d" % i for i in range(1, 16)}
    edges = [
        (1, "a", 2), (2, "c", 3), (3, "c", 4),
        # C1: c-labeled chain v4 -> v9 with shortcuts (v5, v6 optional)
        (4, "c", 5), (5, "c", 6), (6, "c", 7),
        (4, "c", 6), (5, "c", 7),
        (7, "c", 8), (8, "c", 9),
        # exit C1 with an (a+b)* letter
        (9, "a", 10),
        # C2: b-labeled chain v10 -> v13 with shortcuts (v11, v12 optional)
        (10, "b", 11), (11, "b", 12), (12, "b", 13),
        (10, "b", 12), (11, "b", 13),
        # final a* tail
        (13, "a", 14), (14, "a", 15),
    ]
    for source, label, target in edges:
        graph.add_edge(v[source], label, v[target])
    return graph, v[1], v[15]


def _b_chain(graph, source, target, length):
    """A fresh b-labeled chain of ``length`` edges from source to target."""
    current = source
    for _step in range(length - 1):
        nxt = graph.fresh_vertex("b")
        graph.add_edge(current, "b", nxt)
        current = nxt
    graph.add_edge(current, "b", target)


def figure4_graph(k):
    """The Figure-4 loop-elimination counterexample, faithful version.

    For the language ``a*(bb+ + ε)c*`` with ``k`` playing N:

    * an ``a``-path ``x_0 .. x_{2k}``,
    * a ``c``-path ``y_0 .. y_{2k}``,
    * a ``b``-path of length ``2k`` from ``x_{2k}`` to ``y_0`` that
      meets the middles: ``k`` b-edges reach ``x_k``, **one** b-edge
      crosses to ``y_k``, and ``k - 1`` more reach ``y_0``.

    The walk a^{2k} b^{2k} c^{2k} from ``x_0`` to ``y_{2k}`` is
    L-labeled but self-intersects at both middles; eliminating one loop
    leaves a loop whose removal yields ``a^k b c^k ∉ L``.  In fact *no*
    simple L-labeled path connects the terminals — the family is a
    negative instance that naive loop-removal would wrongly accept.
    Returns ``(graph, x0, y_2k)``.  Requires ``k ≥ 2``.
    """
    if k < 2:
        raise ValueError("figure4_graph needs k >= 2")
    graph = DbGraph()
    xs = ["x%d" % i for i in range(2 * k + 1)]
    ys = ["y%d" % i for i in range(2 * k + 1)]
    for i in range(2 * k):
        graph.add_edge(xs[i], "a", xs[i + 1])
        graph.add_edge(ys[i], "c", ys[i + 1])
    _b_chain(graph, xs[2 * k], xs[k], k)
    graph.add_edge(xs[k], "b", ys[k])
    _b_chain(graph, ys[k], ys[0], k - 1)
    return graph, xs[0], ys[2 * k]


def figure4_cross_graph(k):
    """A positive variant of the Figure-4 shape.

    Same three chains, but the bridge between the middles is ``k``
    b-edges long, so the cut-across route ``a^k b^k c^k`` is a simple
    L-labeled path for ``a*(bb+ + ε)c*`` (k ≥ 2).  Exercises the same
    anchored-gap machinery on a yes-instance and scales with k.
    Returns ``(graph, x0, y_2k)``.
    """
    if k < 2:
        raise ValueError("figure4_cross_graph needs k >= 2")
    graph = DbGraph()
    xs = ["x%d" % i for i in range(2 * k + 1)]
    ys = ["y%d" % i for i in range(2 * k + 1)]
    for i in range(2 * k):
        graph.add_edge(xs[i], "a", xs[i + 1])
        graph.add_edge(ys[i], "c", ys[i + 1])
    _b_chain(graph, xs[2 * k], xs[k], k)
    _b_chain(graph, xs[k], ys[k], k)
    _b_chain(graph, ys[k], ys[0], k)
    return graph, xs[0], ys[2 * k]


def two_terminal_random_digraph(num_vertices, num_edges, seed=0):
    """Unlabeled random digraph + 4 random distinct terminals.

    Input family for Vertex-Disjoint-Path experiments.  Returns
    ``(edges, x1, y1, x2, y2)`` where ``edges`` is a set of vertex pairs.
    """
    rng = random.Random(seed)
    if num_vertices < 4:
        raise ValueError("need at least 4 vertices for terminals")
    edges = set()
    attempts = 0
    while len(edges) < num_edges and attempts < 50 * num_edges + 100:
        attempts += 1
        source = rng.randrange(num_vertices)
        target = rng.randrange(num_vertices)
        if source != target:
            edges.add((source, target))
    terminals = rng.sample(range(num_vertices), 4)
    return edges, terminals[0], terminals[1], terminals[2], terminals[3]


def transportation_network(num_cities, seed=0):
    """A toy road network: cities connected by 'h' (highway), 'r'
    (regional road) and 'f' (ferry) edges.

    Returns ``(graph, cities)`` where cities are ``c0..c{n-1}``.  The
    network is a ring of regional roads plus random highways and a few
    ferries, mirroring the introduction's Google-Maps-style motivation
    (enforce a stopover, avoid a city, prefer road types).
    """
    rng = random.Random(seed)
    graph = DbGraph()
    cities = ["c%d" % i for i in range(num_cities)]
    for index in range(num_cities):
        graph.add_edge(cities[index], "r", cities[(index + 1) % num_cities])
        graph.add_edge(cities[(index + 1) % num_cities], "r", cities[index])
    num_highways = max(1, num_cities // 2)
    for _ in range(num_highways):
        a, b = rng.sample(range(num_cities), 2)
        graph.add_edge(cities[a], "h", cities[b])
        graph.add_edge(cities[b], "h", cities[a])
    for _ in range(max(1, num_cities // 5)):
        a, b = rng.sample(range(num_cities), 2)
        graph.add_edge(cities[a], "f", cities[b])
    return graph, cities


def scale_free_social_graph(num_vertices, alphabet="fk", seed=0):
    """A scale-free "social network" with labeled relationships.

    Uses networkx's Barabási–Albert preferential attachment as the
    topology source (the introduction names social networks as an RSPQ
    application), orients each undirected edge in both directions, and
    assigns labels with a skew: the first symbol of ``alphabet`` is the
    common relation (e.g. 'f' = follows), the rest are rare.
    """
    import networkx as nx

    rng = random.Random(seed)
    alphabet = list(alphabet)
    if num_vertices < 3:
        raise ValueError("need at least 3 vertices")
    backbone = nx.barabasi_albert_graph(
        num_vertices, 2, seed=rng.randrange(2 ** 30)
    )
    graph = DbGraph()
    for vertex in backbone.nodes():
        graph.add_vertex(vertex)
    for a, b in backbone.edges():
        for source, target in ((a, b), (b, a)):
            if rng.random() < 0.75 or len(alphabet) == 1:
                label = alphabet[0]
            else:
                label = rng.choice(alphabet[1:])
            graph.add_edge(source, label, target)
    return graph


def component_chain_graph(segment_words, detour_density=0.3, seed=0):
    """Chain of labeled segments with random shortcut detours.

    ``segment_words`` is a list of words; the main path spells their
    concatenation.  With probability ``detour_density`` per interior
    vertex, a two-edge detour (same labels as the skipped edges) is
    added, creating alternative simple paths — a generalisation of the
    Figure-3 shape used by the summary benches.  Returns
    ``(graph, source, target)``.
    """
    rng = random.Random(seed)
    word = "".join(segment_words)
    graph = labeled_path(word)
    for index in range(len(word) - 1):
        if rng.random() < detour_density:
            detour = graph.fresh_vertex("d")
            graph.add_edge(index, word[index], detour)
            graph.add_edge(detour, word[index + 1], index + 2)
    return graph, 0, len(word)
