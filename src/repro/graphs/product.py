"""Product of a db-graph with a DFA — the classic RPQ structure.

The product graph has nodes ``(vertex, state)`` and an edge
``(v, q) -> (w, δ(q, a))`` for every graph edge ``(v, a, w)``.  BFS over
it answers *arbitrary-path* regular path queries in linear time and
provides the reachability pruning used by the simple-path solvers.
"""

from __future__ import annotations

from collections import deque

from .dbgraph import Path


class ProductGraph:
    """Lazy product ``G × A_L`` with cached reachability queries."""

    def __init__(self, graph, dfa):
        self.graph = graph
        self.dfa = dfa
        self._forward_cache = {}
        self._backward_cache = {}

    def successors(self, vertex, state):
        """Product successors of ``(vertex, state)``."""
        for label, target in self.graph.out_edges(vertex):
            if label in self.dfa.alphabet:
                yield target, self.dfa.transition(state, label)

    def forward_reachable(self, vertex, state):
        """All product nodes reachable from ``(vertex, state)``."""
        key = (vertex, state)
        cached = self._forward_cache.get(key)
        if cached is not None:
            return cached
        seen = {key}
        queue = deque([key])
        while queue:
            node = queue.popleft()
            for successor in self.successors(*node):
                if successor not in seen:
                    seen.add(successor)
                    queue.append(successor)
        self._forward_cache[key] = seen
        return seen

    def backward_reachable(self, vertex, state):
        """All product nodes that can reach ``(vertex, state)``."""
        key = (vertex, state)
        cached = self._backward_cache.get(key)
        if cached is not None:
            return cached
        seen = {key}
        queue = deque([key])
        while queue:
            node_vertex, node_state = queue.popleft()
            for label, source in self.graph.in_edges(node_vertex):
                if label not in self.dfa.alphabet:
                    continue
                for state_before in self.dfa.states():
                    if self.dfa.transition(state_before, label) != node_state:
                        continue
                    predecessor = (source, state_before)
                    if predecessor not in seen:
                        seen.add(predecessor)
                        queue.append(predecessor)
        self._backward_cache[key] = seen
        return seen

    def can_accept_from(self, vertex, state, target_vertex):
        """True iff some walk from ``(vertex, state)`` reaches
        ``(target_vertex, f)`` with ``f`` accepting."""
        reachable = self.forward_reachable(vertex, state)
        return any(
            (target_vertex, final) in reachable for final in self.dfa.accepting
        )

    def live_states(self, target_vertex):
        """Product nodes from which ``target_vertex`` is acceptable.

        The union of backward-reachable sets of ``(target, f)`` over all
        accepting states ``f`` — the standard pruning set: any partial
        walk whose product node falls outside is hopeless even without
        the simplicity constraint.
        """
        live = set()
        for final in self.dfa.accepting:
            live |= self.backward_reachable(target_vertex, final)
        return live


def rpq_reachable(graph, dfa, source):
    """All vertices reachable from ``source`` by an L-labeled *walk*."""
    graph.require_vertex(source)
    product = ProductGraph(graph, dfa)
    reachable = product.forward_reachable(source, dfa.initial)
    return {
        vertex for vertex, state in reachable if state in dfa.accepting
    }


def shortest_walk(graph, dfa, source, target):
    """Shortest L-labeled walk from ``source`` to ``target`` (or None).

    Plain BFS on the product graph with parent pointers.  The walk is
    *not* necessarily simple.
    """
    graph.require_vertex(source)
    graph.require_vertex(target)
    start = (source, dfa.initial)
    parents = {start: None}
    queue = deque([start])
    goal = None
    if source == target and dfa.initial in dfa.accepting:
        return Path.single(source)
    while queue and goal is None:
        vertex, state = queue.popleft()
        for label, next_vertex in graph.out_edges(vertex):
            if label not in dfa.alphabet:
                continue
            next_state = dfa.transition(state, label)
            node = (next_vertex, next_state)
            if node in parents:
                continue
            parents[node] = ((vertex, state), label)
            if next_vertex == target and next_state in dfa.accepting:
                goal = node
                break
            queue.append(node)
    if goal is None:
        return None
    vertices = deque()
    labels = deque()
    node = goal
    while parents[node] is not None:
        previous, label = parents[node]
        vertices.appendleft(node[0])
        labels.appendleft(label)
        node = previous
    vertices.appendleft(node[0])
    return Path(tuple(vertices), tuple(labels))
