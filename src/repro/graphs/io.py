"""Plain-text serialization for db-graphs.

Format — one record per line:

* ``v <vertex>`` declares an isolated vertex,
* ``e <source> <label> <target>`` declares an edge,
* blank lines and ``#`` comments are ignored.

Vertex names are written verbatim, so names must not contain whitespace.
Round-trips through :func:`dumps`/:func:`loads` preserve the graph
exactly (vertex names become strings).
"""

from __future__ import annotations

from ..errors import GraphError
from .dbgraph import DbGraph


def dumps(graph):
    """Serialize ``graph`` into the text format."""
    lines = []
    touched = set()
    for source, label, target in graph.edges():
        for vertex in (source, target):
            if " " in str(vertex):
                raise GraphError(
                    "vertex name %r contains whitespace" % (vertex,)
                )
        lines.append("e %s %s %s" % (source, label, target))
        touched.add(source)
        touched.add(target)
    for vertex in graph.vertices():
        if vertex not in touched:
            if " " in str(vertex):
                raise GraphError(
                    "vertex name %r contains whitespace" % (vertex,)
                )
            lines.append("v %s" % (vertex,))
    return "\n".join(lines) + "\n"


def loads(text):
    """Parse the text format into a :class:`DbGraph`."""
    graph = DbGraph()
    for line_number, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.strip()
        if not line or line.startswith("#"):
            continue
        fields = line.split()
        if fields[0] == "v" and len(fields) == 2:
            graph.add_vertex(fields[1])
        elif fields[0] == "e" and len(fields) == 4:
            source, label, target = fields[1], fields[2], fields[3]
            if len(label) != 1:
                raise GraphError(
                    "line %d: label %r is not a single symbol"
                    % (line_number, label)
                )
            graph.add_edge(source, label, target)
        else:
            raise GraphError(
                "line %d: unrecognised record %r" % (line_number, raw_line)
            )
    return graph


def dump(graph, path):
    """Write ``graph`` to the file at ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(dumps(graph))


def load(path):
    """Read a graph from the file at ``path``."""
    with open(path, "r", encoding="utf-8") as handle:
        return loads(handle.read())
