"""Plain-text serialization for db-graphs.

Format — one record per line:

* ``v <vertex>`` declares an isolated vertex,
* ``e <source> <label> <target>`` declares an edge,
* blank lines and ``#`` comments are ignored.

Vertex names and labels are written verbatim, so neither may contain
whitespace (a whitespace label or name would split into extra record
fields and misparse).  Round-trips through :func:`dumps`/:func:`loads`
preserve the graph exactly (vertex names become strings).
"""

from __future__ import annotations

from ..errors import GraphError
from .dbgraph import DbGraph


def _checked_vertex(vertex):
    name = str(vertex)
    if any(ch.isspace() for ch in name):
        raise GraphError("vertex name %r contains whitespace" % (vertex,))
    return name


def _checked_label(label):
    if label.isspace():
        raise GraphError(
            "label %r is whitespace and cannot be serialized" % (label,)
        )
    return label


def dumps(graph):
    """Serialize ``graph`` into the text format."""
    lines = []
    touched = set()
    for source, label, target in graph.edges():
        lines.append(
            "e %s %s %s"
            % (
                _checked_vertex(source),
                _checked_label(label),
                _checked_vertex(target),
            )
        )
        touched.add(source)
        touched.add(target)
    for vertex in graph.vertices():
        if vertex not in touched:
            lines.append("v %s" % _checked_vertex(vertex))
    return "\n".join(lines) + "\n"


def loads(text):
    """Parse the text format into a :class:`DbGraph`."""
    graph = DbGraph()
    for line_number, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.strip()
        if not line or line.startswith("#"):
            continue
        fields = line.split()
        if fields[0] == "v" and len(fields) == 2:
            graph.add_vertex(fields[1])
        elif fields[0] == "e" and len(fields) == 4:
            source, label, target = fields[1], fields[2], fields[3]
            if len(label) != 1:
                raise GraphError(
                    "line %d: label %r is not a single symbol"
                    % (line_number, label)
                )
            graph.add_edge(source, label, target)
        else:
            raise GraphError(
                "line %d: unrecognised record %r" % (line_number, raw_line)
            )
    return graph


def dump(graph, path):
    """Write ``graph`` to the file at ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(dumps(graph))


def load(path):
    """Read a graph from the file at ``path``."""
    with open(path, "r", encoding="utf-8") as handle:
        return loads(handle.read())
