"""Tests for the Ψtr fragment (Theorem 4)."""

import pytest

from repro import catalog
from repro.core.psitr import (
    OptionalWordTerm,
    PsitrExpression,
    PsitrSequence,
    StarTerm,
    decompose,
    equivalent_to,
    extract,
    synthesize,
)
from repro.core.trc import is_in_trc
from repro.errors import NotInTrCError, ReproError
from repro.languages import Language, language


class TestTermConstruction:
    def test_star_term_requires_positive_k(self):
        with pytest.raises(ValueError):
            StarTerm(frozenset("a"), 0)

    def test_star_term_requires_symbols(self):
        with pytest.raises(ValueError):
            StarTerm(frozenset(), 1)

    def test_optional_word_requires_word(self):
        with pytest.raises(ValueError):
            OptionalWordTerm("")

    def test_sequence_rejects_foreign_terms(self):
        with pytest.raises(TypeError):
            PsitrSequence("a", ("not a term",), "b")


class TestCompilation:
    def test_sequence_language(self):
        seq = PsitrSequence(
            "x", (StarTerm(frozenset("a"), 2), OptionalWordTerm("yz")), "w"
        )
        lang = Language(seq.to_nfa())
        assert lang.accepts("xw")            # both terms skipped
        assert lang.accepts("xaaw")          # two a's
        assert lang.accepts("xaaaw")
        assert lang.accepts("xyzw")
        assert lang.accepts("xaayzw")
        assert not lang.accepts("xaw")       # one a < k
        assert not lang.accepts("xyw")       # partial word

    def test_expression_union(self):
        expr = PsitrExpression(
            (PsitrSequence("a", (), ""), PsitrSequence("b", (), ""))
        )
        lang = expr.to_language()
        assert lang.accepts("a")
        assert lang.accepts("b")
        assert not lang.accepts("ab")

    def test_empty_expression(self):
        assert PsitrExpression(()).to_language(alphabet={"a"}).is_empty()


class TestExtraction:
    @pytest.mark.parametrize(
        "entry", catalog.tractable_entries(), ids=lambda e: e.name
    )
    def test_catalog_extraction_roundtrip(self, entry):
        lang = entry.language()
        expr = extract(lang.ast)
        assert expr is not None, "extraction failed for %s" % entry.name
        assert equivalent_to(expr, lang.dfa)

    @pytest.mark.parametrize(
        "entry", catalog.hard_entries(), ids=lambda e: e.name
    )
    def test_hard_languages_not_extracted_or_not_equivalent(self, entry):
        # Theorem 4: a Ψtr expression would certify trC membership, so
        # no *equivalent* Ψtr extraction may exist for hard languages.
        lang = entry.language()
        expr = extract(lang.ast)
        assert expr is None or not equivalent_to(expr, lang.dfa)

    def test_extracted_expressions_define_trc_languages(self):
        # Lemma 19 (easy direction of Theorem 4): Ψtr ⊆ trC.
        for entry in catalog.tractable_entries():
            expr = extract(entry.language().ast)
            if expr is None:
                continue
            compiled = expr.to_language(alphabet=entry.language().alphabet)
            assert is_in_trc(compiled.dfa), entry.name

    def test_middle_mandatory_word_rejected(self):
        # a*b(cc)*d has a mandatory middle letter — outside Ψtr.
        expr = extract(language("a*b(cc)*d").ast)
        assert expr is None or not equivalent_to(
            expr, language("a*b(cc)*d").dfa
        )


class TestHandwrittenTerms:
    def test_star_terms_from_paper_notation(self):
        # (A≥k + ε) written as [ab]{2,} wrapped optional.
        expr = extract(language("([ab]{2,})?").ast)
        assert expr is not None
        lang = expr.to_language(alphabet={"a", "b"})
        assert lang.accepts("")
        assert lang.accepts("ab")
        assert lang.accepts("bbb")
        assert not lang.accepts("a")


class TestSynthesis:
    def test_synthesis_requires_trc(self):
        with pytest.raises(NotInTrCError):
            synthesize(language("(aa)*").dfa)

    def test_synthesis_of_simple_star(self):
        expr = synthesize(language("a*").dfa)
        assert equivalent_to(expr, language("a*").dfa)

    def test_synthesis_of_empty(self):
        expr = synthesize(language("∅", alphabet={"a"}).dfa)
        assert equivalent_to(expr, language("∅", alphabet={"a"}).dfa)

    def test_synthesis_validates_or_raises(self):
        # Either a validated-equivalent expression or an explicit error;
        # silent wrong output is never acceptable.
        lang = language("a*c*")
        try:
            expr = synthesize(lang.dfa)
        except ReproError:
            return
        assert equivalent_to(expr, lang.dfa)


class TestDecompose:
    def test_decompose_rejects_hard_languages(self):
        with pytest.raises(NotInTrCError):
            decompose(language("a*ba*"))

    @pytest.mark.parametrize(
        "entry", catalog.tractable_entries(), ids=lambda e: e.name
    )
    def test_decompose_tractable_catalog(self, entry):
        expr = decompose(entry.language())
        assert equivalent_to(expr, entry.language().dfa)
