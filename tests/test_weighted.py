"""Tests for weighted shortest simple paths (the paper's E → R+ remark).

"[The algorithm] can be generalized to db-graphs weighted by a function
E → R+" — both the tractable solver and the exact solver accept a
``weight_fn`` and must agree on minimum total weight.
"""

import random

import pytest

from repro.algorithms.exact import ExactSolver
from repro.core.nice_paths import TractableSolver, path_weight
from repro.errors import GraphError
from repro.graphs.dbgraph import DbGraph
from repro.graphs.generators import random_labeled_graph
from repro.languages import language


def _weights_for(graph, seed):
    rng = random.Random(seed)
    table = {
        (u, label, v): rng.choice([1, 2, 3, 5, 10])
        for u, label, v in graph.edges()
    }
    return lambda u, label, v: table[(u, label, v)]


class TestWeightedBasics:
    def test_heavier_short_route_loses(self):
        # Two a*-routes 0 -> 3: direct edge weight 10, two-hop weight 4.
        graph = DbGraph.from_edges(
            [(0, "a", 3), (0, "a", 1), (1, "a", 3)]
        )
        weights = {(0, "a", 3): 10, (0, "a", 1): 2, (1, "a", 3): 2}
        def weight_fn(u, label, v):
            return weights[(u, label, v)]

        solver = TractableSolver(language("a*"))
        path = solver.shortest_simple_path(graph, 0, 3, weight_fn=weight_fn)
        assert path.vertices == (0, 1, 3)
        assert path_weight(path, weight_fn) == 4

    def test_unweighted_prefers_fewer_edges(self):
        graph = DbGraph.from_edges(
            [(0, "a", 3), (0, "a", 1), (1, "a", 3)]
        )
        solver = TractableSolver(language("a*"))
        path = solver.shortest_simple_path(graph, 0, 3)
        assert len(path) == 1

    def test_nonpositive_weight_rejected_in_gap(self):
        # A long a-run forces a gap, whose Dijkstra validates weights.
        graph = DbGraph.from_edges(
            [(i, "a", i + 1) for i in range(6)]
        )
        solver = TractableSolver(language("a*"))
        with pytest.raises(GraphError):
            solver.shortest_simple_path(
                graph, 0, 6, weight_fn=lambda u, label, v: 0
            )

    def test_exact_rejects_nonpositive_weights(self):
        graph = DbGraph.from_edges([(0, "a", 1)])
        with pytest.raises(ValueError):
            ExactSolver(language("a*")).shortest_simple_path(
                graph, 0, 1, weight_fn=lambda u, label, v: -1
            )


class TestWeightedAgreement:
    @pytest.mark.parametrize(
        "regex", ["a*", "a*c*", "a*(bb^+ + eps)c*", "a*(b + eps)c*"],
    )
    def test_matches_exact_on_random_graphs(self, regex):
        lang = language(regex)
        alphabet = sorted(lang.alphabet)
        solver = TractableSolver(lang)
        exact = ExactSolver(lang)
        for seed in range(20):
            rng = random.Random(seed)
            n = rng.randint(4, 9)
            graph = random_labeled_graph(
                n, rng.randint(n, 3 * n), alphabet, seed=seed
            )
            weight_fn = _weights_for(graph, seed)
            x, y = rng.randrange(n), rng.randrange(n)
            mine = solver.shortest_simple_path(
                graph, x, y, weight_fn=weight_fn
            )
            truth = exact.shortest_simple_path(
                graph, x, y, weight_fn=weight_fn
            )
            assert (mine is None) == (truth is None), (regex, seed)
            if mine is not None:
                assert path_weight(mine, weight_fn) == path_weight(
                    truth, weight_fn
                ), (regex, seed)

    def test_weighted_and_unweighted_can_differ(self):
        graph = DbGraph.from_edges(
            [(0, "a", 9), (0, "a", 1), (1, "a", 2), (2, "a", 9)]
        )
        weights = {
            (0, "a", 9): 100,
            (0, "a", 1): 1, (1, "a", 2): 1, (2, "a", 9): 1,
        }
        def weight_fn(u, label, v):
            return weights[(u, label, v)]

        solver = TractableSolver(language("a*"))
        light = solver.shortest_simple_path(graph, 0, 9, weight_fn=weight_fn)
        short = solver.shortest_simple_path(graph, 0, 9)
        assert len(short) == 1
        assert len(light) == 3


class TestPruningAblation:
    def test_disabling_live_pruning_keeps_answers(self):
        lang = language("a*(bb^+ + eps)c*")
        fast = TractableSolver(lang)
        slow = TractableSolver(lang, use_live_pruning=False)
        for seed in range(10):
            graph = random_labeled_graph(8, 20, "abc", seed=seed)
            a = fast.shortest_simple_path(graph, 0, 7)
            b = slow.shortest_simple_path(graph, 0, 7)
            assert (a is None) == (b is None)
            if a is not None:
                assert len(a) == len(b)

    def test_pruning_reduces_work(self):
        lang = language("a*(bb^+ + eps)c*")
        graph = random_labeled_graph(40, 100, "abc", seed=3)
        fast = TractableSolver(lang)
        slow = TractableSolver(lang, use_live_pruning=False)
        fast.shortest_simple_path(graph, 0, 39)
        pruned_steps = fast.last_stats.dfs_steps
        slow.shortest_simple_path(graph, 0, 39)
        unpruned_steps = slow.last_stats.dfs_steps
        assert pruned_steps <= unpruned_steps
