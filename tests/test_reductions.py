"""Tests for the paper's reductions (Lemmas 5, 17; Theorem 3)."""

import random

import pytest

from repro import language
from repro.algorithms.disjoint_paths import vertex_disjoint_paths_exist
from repro.algorithms.exact import ExactSolver
from repro.algorithms.reductions import (
    disjoint_paths_to_rspq,
    emptiness_to_trc_instance,
    pumping_triple,
    reachability_to_rspq,
    rspq_instance_for_language,
    universality_to_trc_instance,
)
from repro.core.trc import is_in_trc
from repro.core.witness import find_hardness_witness
from repro.errors import ReproError
from repro.languages import Language
from repro.languages.nfa import nfa_from_ast
from repro.languages.regex.parser import parse


def _random_vdp_instance(seed):
    rng = random.Random(seed)
    n = rng.choice([4, 5, 6])
    edges = set()
    for _ in range(rng.randint(n, 2 * n)):
        a, b = rng.randrange(n), rng.randrange(n)
        if a != b:
            edges.add((a, b))
    x1, y1, x2, y2 = rng.sample(range(n), 4)
    return edges, x1, y1, x2, y2


class TestLemma5:
    @pytest.mark.parametrize(
        "regex", ["a*ba*", "(aa)*", "a*b(cc)*d", "a*bc*", "(ab)*"]
    )
    def test_reduction_preserves_answers(self, regex):
        lang = language(regex)
        witness = find_hardness_witness(lang.dfa)
        solver = ExactSolver(lang)
        for seed in range(15):
            edges, x1, y1, x2, y2 = _random_vdp_instance(seed)
            truth = vertex_disjoint_paths_exist(edges, x1, y1, x2, y2)
            graph, x, y = disjoint_paths_to_rspq(
                edges, x1, y1, x2, y2, witness
            )
            assert solver.exists(graph, x, y) == truth, (regex, seed)

    def test_figure1_instance_structure(self):
        # The Figure 1 example: L = a*b(cc)*d on the 5-vertex instance.
        lang = language("a*b(cc)*d")
        witness = find_hardness_witness(lang.dfa)
        edges = {("x1", "v"), ("v", "y1"), ("y2", "x1"), ("x2", "y2"),
                 ("v", "x2")}
        graph, x, y = disjoint_paths_to_rspq(
            edges, "x1", "y1", "x2", "y2", witness
        )
        truth = vertex_disjoint_paths_exist(edges, "x1", "y1", "x2", "y2")
        assert ExactSolver(lang).exists(graph, x, y) == truth

    def test_convenience_wrapper_rejects_trc(self):
        with pytest.raises(ReproError):
            rspq_instance_for_language("a*", {(0, 1)}, 0, 1, 2, 3)

    def test_reduction_size_is_linear(self):
        lang = language("a*ba*")
        witness = find_hardness_witness(lang.dfa)
        edges = {(i, i + 1) for i in range(20)}
        graph, _x, _y = disjoint_paths_to_rspq(edges, 0, 5, 6, 20, witness)
        word_cost = len(witness.w1) + len(witness.w2)
        bound = (
            len(edges) * word_cost
            + len(witness.wl) + len(witness.wm) + len(witness.wr) + 25
        )
        assert graph.num_edges <= bound


class TestLemma17:
    def test_pumping_triple_properties(self):
        lang = language("ab^+c")
        u, v, w = pumping_triple(lang.dfa)
        assert v
        for pumps in range(4):
            assert lang.accepts(u + v * pumps + w)

    def test_pumping_triple_requires_infinite(self):
        with pytest.raises(ReproError):
            pumping_triple(language("abc").dfa)

    @pytest.mark.parametrize("regex", ["a*", "ab^+", "a*(bb^+ + eps)c*"])
    def test_reachability_embedding(self, regex):
        lang = language(regex)
        edges = {(0, 1), (1, 2), (2, 3), (4, 0)}
        solver = ExactSolver(lang)
        graph, x, y = reachability_to_rspq(edges, 0, 3, lang.dfa)
        assert solver.exists(graph, x, y)
        graph, x, y = reachability_to_rspq(edges, 1, 0, lang.dfa)
        assert not solver.exists(graph, x, y)


class TestTheorem3Constructions:
    def test_emptiness_reduction_empty_side(self):
        empty = language("∅", alphabet={"a"})
        instance = emptiness_to_trc_instance(empty.dfa)
        assert is_in_trc(Language(instance).dfa)

    @pytest.mark.parametrize("regex", ["a", "ab", "a*b"])
    def test_emptiness_reduction_nonempty_side(self, regex):
        lang = language(regex)
        instance = emptiness_to_trc_instance(lang.dfa)
        assert not is_in_trc(Language(instance).dfa)

    def test_emptiness_reduction_language_shape(self):
        lang = language("ab")
        instance = Language(emptiness_to_trc_instance(lang.dfa))
        assert instance.accepts("1ab1")
        assert instance.accepts("11ab111")
        assert not instance.accepts("ab")
        assert not instance.accepts("1ab")
        assert not instance.accepts("1ba1")

    def test_emptiness_rejects_epsilon_languages(self):
        with pytest.raises(ReproError):
            emptiness_to_trc_instance(language("a*").dfa)

    def test_universality_reduction_universal_side(self):
        universal = nfa_from_ast(parse("(0+1)*"))
        instance = universality_to_trc_instance(universal)
        assert is_in_trc(Language(instance).dfa)

    @pytest.mark.parametrize("regex", ["(00+1)*", "0*", "(0+1)*1"])
    def test_universality_reduction_non_universal_side(self, regex):
        nfa = nfa_from_ast(parse(regex))
        instance = universality_to_trc_instance(nfa)
        assert not is_in_trc(Language(instance).dfa)

    def test_universality_rejects_wrong_alphabet(self):
        with pytest.raises(ReproError):
            universality_to_trc_instance(nfa_from_ast(parse("a*")))


class TestDisjointPathSolver:
    def test_simple_yes_instance(self):
        edges = {(0, 1), (2, 3)}
        assert vertex_disjoint_paths_exist(edges, 0, 1, 2, 3)

    def test_shared_bottleneck_no_instance(self):
        # Both paths must pass through vertex 4.
        edges = {(0, 4), (4, 1), (2, 4), (4, 3)}
        assert not vertex_disjoint_paths_exist(edges, 0, 1, 2, 3)

    def test_shared_terminal_is_no(self):
        edges = {(0, 1), (1, 2)}
        assert not vertex_disjoint_paths_exist(edges, 0, 1, 1, 2)

    def test_budget(self):
        from repro.errors import BudgetExceededError

        # y1 = 9 is unreachable, so the search enumerates every simple
        # path out of the 8-clique before giving up — far over budget.
        edges = {(i, j) for i in range(8) for j in range(8) if i != j}
        with pytest.raises(BudgetExceededError):
            vertex_disjoint_paths_exist(edges, 0, 9, 2, 3, budget=3)
