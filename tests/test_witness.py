"""Tests for Property-(1) hardness witnesses (Lemma 4)."""

import pytest

from repro import catalog
from repro.core.witness import (
    HardnessWitness,
    find_hardness_witness,
    verify_witness,
)
from repro.languages import language


class TestWitnessSearch:
    @pytest.mark.parametrize(
        "entry", catalog.hard_entries(), ids=lambda e: e.name
    )
    def test_every_hard_catalog_language_has_witness(self, entry):
        lang = entry.language()
        witness = find_hardness_witness(lang.dfa)
        assert witness is not None
        assert verify_witness(lang.dfa, witness)

    @pytest.mark.parametrize(
        "entry", catalog.tractable_entries(), ids=lambda e: e.name
    )
    def test_tractable_languages_have_none(self, entry):
        assert find_hardness_witness(entry.language().dfa) is None


class TestWitnessSemantics:
    def test_witness_words_pump_inside_l(self):
        lang = language("a*ba*")
        witness = find_hardness_witness(lang.dfa)
        # wl w1^j wm w2^i wr ∈ L for all i, j (conditions 1-5).
        for i in range(3):
            for j in range(3):
                word = (
                    witness.wl
                    + witness.w1 * j
                    + witness.wm
                    + witness.w2 * i
                    + witness.wr
                )
                assert lang.accepts(word), (i, j, word)

    def test_witness_without_middle_never_in_l(self):
        lang = language("a*ba*")
        witness = find_hardness_witness(lang.dfa)
        # wl (w1|w2)* wr ∩ L = ∅ (condition 6): check small samples.
        pieces = [witness.w1, witness.w2]
        samples = [""]
        for _ in range(3):
            samples = [s + p for s in samples for p in pieces] + samples
        for middle in set(samples):
            assert not lang.accepts(witness.wl + middle + witness.wr)

    def test_verify_rejects_corrupted_witness(self):
        lang = language("a*ba*")
        witness = find_hardness_witness(lang.dfa)
        broken = HardnessWitness(
            witness.q1, witness.q2, witness.wl, witness.w1,
            witness.wm + witness.wm, witness.w2, witness.wr,
        )
        # Doubling wm drives past q2 (b twice hits the sink) — invalid.
        assert not verify_witness(lang.dfa, broken)

    def test_verify_rejects_empty_loop_words(self):
        lang = language("a*ba*")
        witness = find_hardness_witness(lang.dfa)
        broken = HardnessWitness(
            witness.q1, witness.q2, witness.wl, "", witness.wm,
            witness.w2, witness.wr,
        )
        assert not verify_witness(lang.dfa, broken)

    def test_figure1_language_witness_shape(self):
        # For a*b(cc)*d the paper picks wl=w1=a, wm=b, w2=cc, wr=d;
        # any verified witness must satisfy the same six conditions.
        lang = language("a*b(cc)*d")
        witness = find_hardness_witness(lang.dfa)
        dfa = lang.dfa
        assert dfa.run(witness.wl) == witness.q1
        assert dfa.run_from(witness.q1, witness.w1) == witness.q1
        assert dfa.run_from(witness.q1, witness.wm) == witness.q2
        assert dfa.run_from(witness.q2, witness.w2) == witness.q2
        assert dfa.run_from(witness.q2, witness.wr) in dfa.accepting
