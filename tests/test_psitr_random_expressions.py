"""Randomized Ψtr-expression stress test for the tractable solver.

Generates a deterministic family of random Ψtr expressions (the
fragment is exactly trC, Theorem 4), compiles each to a language, and
cross-validates the anchored solver against the exact solver on random
graphs.  This widens the completeness validation far beyond the
catalog: adjacent star terms, shared alphabets, overlapping optional
words, leading/trailing words.
"""

import random

import pytest

from repro.algorithms.exact import ExactSolver
from repro.core.nice_paths import TractableSolver
from repro.core.psitr import (
    OptionalWordTerm,
    PsitrExpression,
    PsitrSequence,
    StarTerm,
)
from repro.core.trc import is_in_trc
from repro.graphs.generators import random_labeled_graph
from repro.languages import Language

ALPHABET = "abc"


def _random_sequence(rng):
    lead = "".join(
        rng.choice(ALPHABET) for _ in range(rng.randint(0, 2))
    )
    trail = "".join(
        rng.choice(ALPHABET) for _ in range(rng.randint(0, 2))
    )
    terms = []
    for _ in range(rng.randint(1, 3)):
        if rng.random() < 0.6:
            size = rng.randint(1, 2)
            symbols = frozenset(rng.sample(ALPHABET, size))
            terms.append(StarTerm(symbols, rng.randint(1, 2)))
        else:
            word = "".join(
                rng.choice(ALPHABET) for _ in range(rng.randint(1, 2))
            )
            terms.append(OptionalWordTerm(word))
    return PsitrSequence(lead, tuple(terms), trail)


def _random_expression(seed):
    rng = random.Random(seed)
    sequences = tuple(
        _random_sequence(rng) for _ in range(rng.randint(1, 2))
    )
    return PsitrExpression(sequences)


EXPRESSION_SEEDS = list(range(24))


@pytest.mark.parametrize("seed", EXPRESSION_SEEDS)
def test_random_psitr_language_is_trc(seed):
    # The easy direction of Theorem 4 on random fragment members.
    expression = _random_expression(seed)
    lang = Language(expression.to_nfa(), alphabet=set(ALPHABET))
    assert is_in_trc(lang.dfa), str(expression)


@pytest.mark.parametrize("seed", EXPRESSION_SEEDS)
def test_solver_agrees_with_exact(seed):
    expression = _random_expression(seed)
    lang = Language(expression.to_nfa(), alphabet=set(ALPHABET))
    solver = TractableSolver(lang, expression=expression)
    exact = ExactSolver(lang)
    rng = random.Random(1000 + seed)
    for _query in range(12):
        n = rng.randint(4, 9)
        graph = random_labeled_graph(
            n, rng.randint(n, 3 * n), ALPHABET, seed=rng.randrange(10**6)
        )
        x, y = rng.randrange(n), rng.randrange(n)
        mine = solver.shortest_simple_path(graph, x, y)
        truth = exact.shortest_simple_path(graph, x, y)
        assert (mine is None) == (truth is None), (
            str(expression), n, x, y)
        if mine is not None:
            assert len(mine) == len(truth), (str(expression), n, x, y)
