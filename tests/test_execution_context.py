"""ExecutionContext: pure solver cores, budgets, deadlines, legacy shims.

The refactor contract: a solver constructed once is never mutated by a
query that passes an explicit context — every counter lands on the
context — while context-less calls keep the historical behaviour
(``solver.steps`` / ``words_tried`` / ``last_stats`` read the most
recent query).
"""

import pytest

from repro.algorithms.bounded import FiniteLanguageSolver
from repro.algorithms.exact import ExactSolver
from repro.core.nice_paths import TractableSolver
from repro.core.solver import RspqSolver, solve_rspq
from repro.errors import BudgetExceededError, DeadlineExceededError
from repro.execution import ExecutionContext
from repro.graphs.generators import labeled_cycle, random_labeled_graph
from repro.languages import language


@pytest.fixture
def graph():
    return random_labeled_graph(25, 75, "abc", seed=11)


def _working_pair(regex, graph):
    """A (source, target) pair the query actually explores."""
    for source in graph.vertices():
        for target in graph.vertices():
            if source == target:
                continue
            if solve_rspq(regex, graph, source, target).found:
                return source, target
    raise AssertionError("no positive instance in fixture graph")


class TestContextIsolation:
    def test_exact_solver_instance_stays_clean(self, graph):
        solver = ExactSolver("a*ba*")
        source, target = _working_pair("a*ba*", graph)
        ctx = ExecutionContext()
        path = solver.shortest_simple_path(graph, source, target, ctx=ctx)
        assert path is not None
        assert ctx.steps > 0
        assert solver.steps == 0  # legacy shim untouched by ctx queries

    def test_finite_solver_instance_stays_clean(self, graph):
        solver = FiniteLanguageSolver(language("ab + ba + abc"))
        ctx = ExecutionContext()
        solver.shortest_simple_path(graph, 0, 5, ctx=ctx)
        assert ctx.words_tried > 0
        assert solver.words_tried == 0

    def test_tractable_solver_instance_stays_clean(self, graph):
        solver = TractableSolver(language("a*(bb^+ + eps)c*"))
        ctx = ExecutionContext()
        solver.shortest_simple_path(graph, 0, 5, ctx=ctx)
        assert ctx.dfs_steps > 0
        assert solver.last_stats is None

    def test_two_contexts_do_not_mix(self, graph):
        solver = ExactSolver("a*ba*")
        source, target = _working_pair("a*ba*", graph)
        first = ExecutionContext()
        solver.shortest_simple_path(graph, source, target, ctx=first)
        recorded = first.steps
        second = ExecutionContext()
        solver.shortest_simple_path(graph, source, target, ctx=second)
        assert first.steps == recorded  # untouched by the second query
        assert second.steps == recorded  # deterministic workload

    def test_shared_solver_is_deterministic_across_contexts(self, graph):
        solver = TractableSolver(language("a*(bb^+ + eps)c*"))
        paths = set()
        counts = set()
        for _ in range(3):
            ctx = ExecutionContext()
            path = solver.shortest_simple_path(graph, 0, 5, ctx=ctx)
            paths.add(path)
            counts.add(ctx.dfs_steps)
        assert len(paths) == 1
        assert len(counts) == 1


class TestLegacyShims:
    def test_exact_steps_shim(self, graph):
        solver = ExactSolver("a*ba*")
        source, target = _working_pair("a*ba*", graph)
        solver.shortest_simple_path(graph, source, target)
        assert solver.steps > 0

    def test_exact_steps_shim_is_writable(self, graph):
        # bench_tractability_frontier resets the counter by assignment.
        solver = ExactSolver("a*ba*")
        solver.steps = 0
        assert solver.steps == 0

    def test_finite_words_tried_shim(self, graph):
        solver = FiniteLanguageSolver(language("ab + ba + abc"))
        solver.shortest_simple_path(graph, 0, 5)
        assert solver.words_tried > 0

    def test_tractable_last_stats_shim(self, graph):
        solver = TractableSolver(language("a*(bb^+ + eps)c*"))
        solver.shortest_simple_path(graph, 0, 5)
        assert solver.last_stats is not None
        assert solver.last_stats.dfs_steps > 0


class TestBudgets:
    def test_context_budget_on_unbudgeted_solver(self):
        solver = ExactSolver("(aa)*")  # no instance budget
        cycle = labeled_cycle("a" * 9)
        with pytest.raises(BudgetExceededError) as info:
            solver.shortest_simple_path(
                cycle, 0, 1, ctx=ExecutionContext(budget=3)
            )
        assert info.value.steps > 3

    def test_explicit_context_overrides_instance_budget(self):
        solver = ExactSolver("(aa)*", budget=3)
        cycle = labeled_cycle("a" * 9)
        # An unbudgeted context wins over the instance default.
        path = solver.shortest_simple_path(
            cycle, 0, 1, ctx=ExecutionContext()
        )
        assert path is None  # odd distance: correctly no (aa)* path

    def test_instance_budget_still_guards_legacy_calls(self):
        solver = ExactSolver("(aa)*", budget=3)
        cycle = labeled_cycle("a" * 9)
        with pytest.raises(BudgetExceededError):
            solver.shortest_simple_path(cycle, 0, 1)


class TestDeadlines:
    def test_expired_deadline_aborts_query(self):
        solver = ExactSolver("(aa)*")
        cycle = labeled_cycle("a" * 9)
        ctx = ExecutionContext(
            deadline_seconds=0.0, deadline_check_interval=1
        )
        with pytest.raises(DeadlineExceededError):
            solver.shortest_simple_path(cycle, 0, 1, ctx=ctx)

    def test_generous_deadline_does_not_fire(self, graph):
        solver = ExactSolver("a*ba*")
        source, target = _working_pair("a*ba*", graph)
        ctx = ExecutionContext(
            deadline_seconds=3600.0, deadline_check_interval=1
        )
        path = solver.shortest_simple_path(graph, source, target, ctx=ctx)
        assert path is not None

    def test_deadline_on_tractable_solver(self, graph):
        solver = TractableSolver(language("a*(bb^+ + eps)c*"))
        ctx = ExecutionContext(
            deadline_seconds=0.0, deadline_check_interval=1
        )
        with pytest.raises(DeadlineExceededError):
            solver.shortest_simple_path(graph, 0, 5, ctx=ctx)

    def test_deadline_on_finite_solver(self, graph):
        solver = FiniteLanguageSolver(language("ab + ba + abc"))
        ctx = ExecutionContext(
            deadline_seconds=0.0, deadline_check_interval=1
        )
        with pytest.raises(DeadlineExceededError):
            solver.shortest_simple_path(graph, 0, 5, ctx=ctx)

    def test_check_interval_validated(self):
        with pytest.raises(ValueError):
            ExecutionContext(deadline_check_interval=0)


class TestRspqSolverDispatch:
    @pytest.mark.parametrize(
        "regex,counter",
        [
            ("ab + ba", "words_tried"),
            ("a*", "dfs_steps"),
            ("a*ba*", "steps"),
        ],
    )
    def test_steps_in_reads_strategy_counter(self, graph, regex, counter):
        solver = RspqSolver(regex)
        source, target = _working_pair(regex, graph)
        ctx = ExecutionContext()
        solver.shortest_simple_path(graph, source, target, ctx=ctx)
        assert solver.steps_in(ctx) == getattr(ctx, counter)
        assert solver.steps_in(ctx) > 0

    def test_solve_threads_context(self, graph):
        solver = RspqSolver("a*")
        ctx = ExecutionContext()
        result = solver.solve(graph, 0, 5, ctx=ctx)
        assert result.strategy == solver.strategy
        assert ctx.dfs_steps > 0

    def test_exists_threads_context(self, graph):
        solver = RspqSolver("a*ba*")
        source, target = _working_pair("a*ba*", graph)
        ctx = ExecutionContext()
        assert solver.exists(graph, source, target, ctx=ctx)
        assert ctx.steps > 0
