"""Tests for the dispatching front-door solver (Theorem 2 in code)."""

import pytest

from tests.conftest import paths_agree, random_instance

from repro import catalog
from repro.algorithms.exact import ExactSolver
from repro.core.solver import (
    STRATEGY_EXACT,
    STRATEGY_FINITE,
    STRATEGY_TRACTABLE,
    RspqSolver,
    solve_rspq,
)
from repro.graphs.generators import labeled_path
from repro.languages import language


class TestDispatch:
    def test_finite_language_uses_finite_solver(self):
        solver = RspqSolver(language("abc"))
        assert solver.strategy == STRATEGY_FINITE

    def test_trc_language_uses_tractable_solver(self):
        solver = RspqSolver(language("a*(bb^+ + eps)c*"))
        assert solver.strategy == STRATEGY_TRACTABLE

    def test_hard_language_uses_exact_solver(self):
        solver = RspqSolver(language("a*ba*"))
        assert solver.strategy == STRATEGY_EXACT

    def test_force_exact(self):
        solver = RspqSolver(language("a*"), force_exact=True)
        assert solver.strategy == STRATEGY_EXACT

    @pytest.mark.parametrize("entry", catalog.entries(), ids=lambda e: e.name)
    def test_strategy_matches_classification(self, entry):
        solver = RspqSolver(entry.language())
        if entry.complexity == "AC0":
            assert solver.strategy == STRATEGY_FINITE
        elif entry.complexity == "NL-complete":
            assert solver.strategy == STRATEGY_TRACTABLE
        else:
            assert solver.strategy == STRATEGY_EXACT


class TestResults:
    def test_result_object(self):
        graph = labeled_path("ab")
        result = solve_rspq("ab", graph, 0, 2)
        assert result.found
        assert result.length == 2
        assert result.strategy == STRATEGY_FINITE
        assert result.classification.finite

    def test_negative_result(self):
        graph = labeled_path("ab")
        result = solve_rspq("ba", graph, 0, 2)
        assert not result.found
        assert result.path is None
        assert result.length is None


class TestCrossStrategyAgreement:
    """All strategies are answering the same question."""

    @pytest.mark.parametrize(
        "entry", catalog.entries(), ids=lambda e: e.name
    )
    def test_dispatcher_agrees_with_exact(self, entry):
        lang = entry.language()
        alphabet = sorted(lang.alphabet) or ["a"]
        solver = RspqSolver(lang)
        exact = ExactSolver(lang)
        for seed in range(12):
            graph, x, y = random_instance(seed, alphabet, max_vertices=9)
            mine = solver.shortest_simple_path(graph, x, y)
            truth = exact.shortest_simple_path(graph, x, y)
            assert paths_agree(mine, truth), (entry.name, seed)

    def test_exists_matches_path_search(self):
        lang = language("a*c*")
        solver = RspqSolver(lang)
        for seed in range(10):
            graph, x, y = random_instance(seed, "ac", max_vertices=8)
            assert solver.exists(graph, x, y) == (
                solver.shortest_simple_path(graph, x, y) is not None
            )


class TestDecomposeFailedFlag:
    """The documented trC-fallback warning flag (both branches)."""

    def test_successful_decomposition_leaves_flag_clear(self):
        solver = RspqSolver(language("a*(bb^+ + eps)c*"))
        assert solver.strategy == STRATEGY_TRACTABLE
        assert solver.decompose_failed is False
        result = solver.solve(labeled_path("a"), 0, 1)
        assert result.decompose_failed is False

    def test_failed_decomposition_sets_flag_and_falls_back(self, monkeypatch):
        from repro.core import solver as solver_module
        from repro.errors import ReproError

        def broken_decompose(_language):
            raise ReproError("synthetic decomposition failure")

        monkeypatch.setattr(solver_module, "decompose", broken_decompose)
        solver = RspqSolver(language("a*"))
        assert solver.strategy == STRATEGY_EXACT
        assert solver.decompose_failed is True
        result = solver.solve(labeled_path("aa"), 0, 2)
        assert result.decompose_failed is True
        assert result.found and result.length == 2

    def test_other_regimes_never_warn(self):
        assert RspqSolver(language("ab")).decompose_failed is False
        assert RspqSolver(language("a*ba*")).decompose_failed is False
        assert RspqSolver(
            language("a*"), force_exact=True
        ).decompose_failed is False


class TestLastSteps:
    def test_steps_reported_per_strategy(self):
        graph = labeled_path("ab")
        finite = RspqSolver(language("ab"))
        finite.solve(graph, 0, 2)
        assert finite.last_steps() >= 1
        tractable = RspqSolver(language("a*b*"))
        tractable.solve(graph, 0, 2)
        assert tractable.last_steps() >= 1
        exact = RspqSolver(language("a*ba*"))
        exact.solve(graph, 0, 2)
        assert exact.last_steps() >= 1
