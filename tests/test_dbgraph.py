"""Tests for the db-graph substrate and Path objects."""

import pytest

from repro.errors import GraphError
from repro.graphs.dbgraph import DbGraph, Path
from repro.graphs import io as graph_io


class TestDbGraph:
    def test_add_edge_creates_vertices(self):
        graph = DbGraph()
        graph.add_edge("x", "a", "y")
        assert graph.has_vertex("x")
        assert graph.has_vertex("y")
        assert graph.num_edges == 1

    def test_duplicate_edge_ignored(self):
        graph = DbGraph()
        graph.add_edge(1, "a", 2)
        graph.add_edge(1, "a", 2)
        assert graph.num_edges == 1

    def test_multigraph_labels(self):
        graph = DbGraph()
        graph.add_edge(1, "a", 2)
        graph.add_edge(1, "b", 2)
        assert graph.num_edges == 2
        assert graph.successors(1) == {2}
        assert graph.successors(1, "a") == {2}

    def test_multi_letter_label_rejected(self):
        graph = DbGraph()
        with pytest.raises(GraphError):
            graph.add_edge(1, "ab", 2)

    def test_word_edge_expansion(self):
        graph = DbGraph()
        inner = graph.add_word_edge("x", "abc", "y")
        assert len(inner) == 2
        assert graph.num_edges == 3
        # Follow the expansion.
        current, word = "x", ""
        for _ in range(3):
            ((label, nxt),) = list(graph.out_edges(current))
            word += label
            current = nxt
        assert current == "y"
        assert word == "abc"

    def test_word_edge_empty_rejected(self):
        graph = DbGraph()
        with pytest.raises(GraphError):
            graph.add_word_edge("x", "", "y")

    def test_predecessors(self):
        graph = DbGraph.from_edges([(1, "a", 2), (3, "b", 2)])
        assert graph.predecessors(2) == {1, 3}
        assert graph.predecessors(2, "a") == {1}

    def test_subgraph(self):
        graph = DbGraph.from_edges([(1, "a", 2), (2, "a", 3)])
        sub = graph.subgraph([1, 2])
        assert sub.num_vertices == 2
        assert sub.num_edges == 1

    def test_subgraph_unknown_vertex(self):
        graph = DbGraph()
        graph.add_vertex(1)
        with pytest.raises(GraphError):
            graph.subgraph([1, 99])

    def test_reversed(self):
        graph = DbGraph.from_edges([(1, "a", 2)])
        rev = graph.reversed()
        assert rev.has_edge(2, "a", 1)
        assert not rev.has_edge(1, "a", 2)

    def test_restricted_to_labels(self):
        graph = DbGraph.from_edges([(1, "a", 2), (1, "b", 2)])
        only_a = graph.restricted_to_labels({"a"})
        assert only_a.num_edges == 1

    def test_reachable_within(self):
        graph = DbGraph.from_edges(
            [(1, "a", 2), (2, "a", 3), (2, "b", 4), (4, "a", 5)]
        )
        assert graph.reachable_within(1, allowed_labels={"a"}) == {1, 2, 3}
        assert graph.reachable_within(1, forbidden={2}) == {1}

    def test_networkx_roundtrip(self):
        graph = DbGraph.from_edges([(1, "a", 2), (2, "b", 1)])
        back = DbGraph.from_networkx(graph.to_networkx())
        assert sorted(back.edges()) == sorted(graph.edges())

    def test_fresh_vertex_no_collision(self):
        graph = DbGraph()
        graph.add_vertex("_w0")
        fresh = graph.fresh_vertex()
        assert fresh != "_w0"


class TestPath:
    def test_length_and_word(self):
        path = Path((1, 2, 3), ("a", "b"))
        assert len(path) == 2
        assert path.word == "ab"
        assert path.source == 1
        assert path.target == 3

    def test_single(self):
        path = Path.single("x")
        assert len(path) == 0
        assert path.word == ""
        assert path.is_simple()

    def test_mismatched_lengths(self):
        with pytest.raises(GraphError):
            Path((1, 2), ())

    def test_simplicity(self):
        assert Path((1, 2, 3), ("a", "a")).is_simple()
        assert not Path((1, 2, 1), ("a", "a")).is_simple()

    def test_extend(self):
        path = Path.single(1).extend("a", 2).extend("b", 3)
        assert path.vertices == (1, 2, 3)
        assert path.word == "ab"

    def test_concat(self):
        left = Path((1, 2), ("a",))
        right = Path((2, 3), ("b",))
        assert left.concat(right).word == "ab"

    def test_concat_mismatch(self):
        with pytest.raises(GraphError):
            Path((1, 2), ("a",)).concat(Path((9, 3), ("b",)))

    def test_steps(self):
        path = Path((1, 2, 3), ("a", "b"))
        assert list(path.steps()) == [(1, "a", 2), (2, "b", 3)]

    def test_graph_is_path(self):
        graph = DbGraph.from_edges([(1, "a", 2), (2, "b", 3)])
        assert graph.is_path(Path((1, 2, 3), ("a", "b")))
        assert not graph.is_path(Path((1, 2, 3), ("b", "b")))


class TestIo:
    def test_roundtrip(self):
        graph = DbGraph.from_edges(
            [("x", "a", "y"), ("y", "b", "z")]
        )
        graph.add_vertex("lonely")
        back = graph_io.loads(graph_io.dumps(graph))
        assert sorted(back.edges()) == sorted(graph.edges())
        assert back.has_vertex("lonely")

    def test_comments_and_blanks(self):
        text = "# comment\n\ne x a y\nv z\n"
        graph = graph_io.loads(text)
        assert graph.num_edges == 1
        assert graph.has_vertex("z")

    def test_bad_record(self):
        with pytest.raises(GraphError):
            graph_io.loads("nonsense line\n")

    def test_bad_label(self):
        with pytest.raises(GraphError):
            graph_io.loads("e x ab y\n")

    def test_file_roundtrip(self, tmp_path):
        graph = DbGraph.from_edges([("a", "x", "b")])
        target = tmp_path / "graph.txt"
        graph_io.dump(graph, target)
        assert sorted(graph_io.load(target).edges()) == sorted(graph.edges())


class TestSortedCaches:
    """Deterministic-order views are cached and invalidated on mutation."""

    def test_vertices_cached_list_reused(self):
        graph = DbGraph.from_edges([(2, "a", 1), (3, "b", 1)])
        first = list(graph.vertices())
        second = list(graph.vertices())
        assert first == second == [1, 2, 3]

    def test_vertices_refresh_after_mutation(self):
        graph = DbGraph()
        graph.add_vertex(2)
        assert list(graph.vertices()) == [2]
        graph.add_vertex(1)
        assert list(graph.vertices()) == [1, 2]
        graph.add_edge(0, "a", 3)  # implicit vertices also invalidate
        assert list(graph.vertices()) == [0, 1, 2, 3]

    def test_edges_refresh_after_mutation(self):
        graph = DbGraph.from_edges([(1, "b", 2)])
        assert list(graph.edges()) == [(1, "b", 2)]
        graph.add_edge(1, "a", 2)
        assert list(graph.edges()) == [(1, "a", 2), (1, "b", 2)]

    def test_sorted_out_edges_matches_repr_sort(self):
        graph = DbGraph.from_edges(
            [(1, "b", 3), (1, "a", 2), (1, "a", 12), (1, "c", 2)]
        )
        assert graph.sorted_out_edges(1) == tuple(
            sorted(graph.out_edges(1), key=repr)
        )
        assert graph.sorted_out_edges(3) == ()
        graph.add_edge(1, "a", 1)
        assert graph.sorted_out_edges(1) == tuple(
            sorted(graph.out_edges(1), key=repr)
        )

    def test_sorted_successors_matches_repr_sort(self):
        graph = DbGraph.from_edges(
            [(1, "a", 12), (1, "a", 2), (1, "b", 3)]
        )
        assert graph.sorted_successors(1, "a") == tuple(
            sorted(graph.successors(1, "a"), key=repr)
        )
        assert graph.sorted_successors(1, "z") == ()
        graph.add_edge(1, "a", 7)
        assert 7 in graph.sorted_successors(1, "a")

    def test_duplicate_mutations_keep_caches_valid(self):
        graph = DbGraph.from_edges([(1, "a", 2)])
        list(graph.edges())
        graph.add_edge(1, "a", 2)  # no-op duplicate
        graph.add_vertex(1)  # no-op duplicate
        assert list(graph.edges()) == [(1, "a", 2)]
        assert list(graph.vertices()) == [1, 2]


class TestIoLabelValidation:
    """Whitespace labels must be rejected at dump time (regression)."""

    def test_whitespace_label_rejected_at_dump(self):
        graph = DbGraph.from_edges([("x", " ", "y")])
        with pytest.raises(GraphError):
            graph_io.dumps(graph)

    def test_tab_and_newline_labels_rejected(self):
        for label in ("\t", "\n"):
            graph = DbGraph.from_edges([("x", label, "y")])
            with pytest.raises(GraphError):
                graph_io.dumps(graph)

    def test_whitespace_vertex_rejected_any_kind(self):
        graph = DbGraph.from_edges([("x\ty", "a", "z")])
        with pytest.raises(GraphError):
            graph_io.dumps(graph)

    def test_valid_labels_roundtrip(self):
        graph = DbGraph.from_edges(
            [("x", "a", "y"), ("y", "b", "z"), ("z", "c", "x")]
        )
        back = graph_io.loads(graph_io.dumps(graph))
        assert sorted(back.edges()) == sorted(graph.edges())
