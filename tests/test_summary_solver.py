"""Tests for the literal Lemma 15/16 summary-enumeration solver."""

import pytest

from tests.conftest import paths_agree, random_instance

from repro.algorithms.exact import ExactSolver
from repro.core.nice_paths import TractableSolver
from repro.core.summary_solver import SummarySolver
from repro.errors import NotInTrCError
from repro.graphs.dbgraph import Path
from repro.graphs.generators import (
    figure3_graph,
    figure4_cross_graph,
    figure4_graph,
    labeled_cycle,
    labeled_path,
)
from repro.languages import language


class TestConstruction:
    def test_rejects_hard_languages(self):
        with pytest.raises(NotInTrCError):
            SummarySolver(language("(aa)*"))

    def test_heuristic_mode_allows_them(self):
        solver = SummarySolver(language("(aa)*"), require_trc=False)
        graph = labeled_path("aa")
        path = solver.shortest_simple_path(graph, 0, 2)
        # Sound: any returned path is correct.
        assert path is None or (
            path.is_simple() and len(path) % 2 == 0
        )

    def test_default_bound_is_2m_squared(self):
        lang = language("a*c*")
        solver = SummarySolver(lang)
        assert solver.bound == 2 * lang.num_states ** 2

    def test_bad_bound_rejected(self):
        with pytest.raises(ValueError):
            SummarySolver(language("a*"), bound=0)


class TestBasicQueries:
    def test_straight_line(self):
        solver = SummarySolver(language("a*"), bound=2)
        graph = labeled_path("aaaaa")
        path = solver.shortest_simple_path(graph, 0, 5)
        assert path is not None
        assert path.word == "aaaaa"

    def test_source_equals_target(self):
        solver = SummarySolver(language("a*"), bound=2)
        graph = labeled_cycle("aa")
        assert solver.shortest_simple_path(graph, 0, 0) == Path.single(0)

    def test_short_stays_need_no_gap(self):
        solver = SummarySolver(language("a*c*"), bound=5)
        graph = labeled_path("ac")
        path = solver.shortest_simple_path(graph, 0, 2)
        assert path.word == "ac"
        # Everything pinned: no gap BFS ran.
        assert solver.last_stats.gap_bfs == 0

    def test_long_stays_are_compressed(self):
        solver = SummarySolver(language("a*"), bound=2)
        graph = labeled_path("a" * 8)
        path = solver.shortest_simple_path(graph, 0, 8)
        assert path is not None
        assert len(path) == 8
        assert solver.last_stats.gap_bfs > 0


class TestPaperInstances:
    def test_figure3(self):
        lang = language("a(c{2,} + eps)(a+b)*(ac)?a*")
        graph, x, y = figure3_graph()
        # The paper "pretends N = 3" for this example.
        solver = SummarySolver(lang, bound=3)
        mine = solver.shortest_simple_path(graph, x, y)
        truth = ExactSolver(lang).shortest_simple_path(graph, x, y)
        assert paths_agree(mine, truth)

    def test_figure4_negative(self):
        lang = language("a*(bb^+ + eps)c*")
        graph, x, y = figure4_graph(2)
        solver = SummarySolver(lang, bound=2)
        assert solver.shortest_simple_path(graph, x, y) is None

    def test_figure4_cross_positive(self):
        lang = language("a*(bb^+ + eps)c*")
        graph, x, y = figure4_cross_graph(3)
        solver = SummarySolver(lang, bound=2)
        path = solver.shortest_simple_path(graph, x, y)
        assert path is not None
        assert len(path) == 9


class TestOracleAgreement:
    @pytest.mark.parametrize(
        "regex,bound",
        [("a*", 2), ("a*c*", 2), ("a*(bb^+ + eps)c*", 3),
         ("a*(b + eps)c*", 2), ("[ab]*", 2)],
        ids=["a", "ac", "example1", "optb", "classes"],
    )
    def test_small_graphs(self, regex, bound):
        lang = language(regex)
        alphabet = sorted(lang.alphabet)
        solver = SummarySolver(lang, bound=bound)
        exact = ExactSolver(lang)
        for seed in range(20):
            graph, x, y = random_instance(seed, alphabet, max_vertices=7)
            mine = solver.shortest_simple_path(graph, x, y)
            truth = exact.shortest_simple_path(graph, x, y)
            assert paths_agree(mine, truth), (regex, seed)

    def test_agrees_with_anchored_solver(self):
        lang = language("a*(bb^+ + eps)c*")
        faithful = SummarySolver(lang, bound=3)
        anchored = TractableSolver(lang)
        for seed in range(12):
            graph, x, y = random_instance(100 + seed, "abc", max_vertices=7)
            a = faithful.shortest_simple_path(graph, x, y)
            b = anchored.shortest_simple_path(graph, x, y)
            assert paths_agree(a, b), seed

    def test_paper_bound_on_tiny_graphs(self):
        # The full N = 2M² bound is usable only on tiny instances; it
        # must agree with everything there.
        lang = language("a*c*")
        solver = SummarySolver(lang)  # N = 18 for M = 3
        exact = ExactSolver(lang)
        for seed in range(8):
            graph, x, y = random_instance(seed, "ac", max_vertices=5)
            assert paths_agree(
                solver.shortest_simple_path(graph, x, y),
                exact.shortest_simple_path(graph, x, y),
            ), seed
