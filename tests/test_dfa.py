"""Unit and property tests for the DFA layer."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import AutomatonError
from repro.languages.dfa import DFA, dfa_from_words, from_nfa
from repro.languages.nfa import nfa_from_ast
from repro.languages.regex.parser import parse


def _dfa(text, alphabet=None):
    return from_nfa(nfa_from_ast(parse(text)), alphabet)


class TestConstruction:
    def test_incomplete_dfa_rejected(self):
        with pytest.raises(AutomatonError):
            DFA(2, ["a"], {(0, "a"): 1}, 0, [1])

    def test_bad_initial_rejected(self):
        with pytest.raises(AutomatonError):
            DFA(1, [], {}, 5, [])

    def test_unknown_symbol_raises(self):
        dfa = _dfa("a*")
        with pytest.raises(AutomatonError):
            dfa.transition(0, "z")

    def test_run_and_accepts(self):
        dfa = _dfa("a*ba*")
        assert dfa.accepts("ab")
        assert not dfa.accepts("aa")


class TestPredicates:
    def test_emptiness(self):
        assert _dfa("∅", alphabet={"a"}).is_empty()
        assert not _dfa("a").is_empty()

    def test_universality(self):
        assert _dfa("(a+b)*").is_universal()
        assert not _dfa("a*", alphabet={"a", "b"}).is_universal()

    @pytest.mark.parametrize(
        "text,finite",
        [("abc", True), ("ab + ba", True), ("a*", False),
         ("(aa)*", False), ("∅", True), ("eps", True)],
    )
    def test_finiteness(self, text, finite):
        assert _dfa(text, alphabet={"a", "b", "c"}).is_finite() is finite

    def test_shortest_accepted(self):
        assert _dfa("aaa + ba").shortest_accepted() == "ba"

    def test_shortest_accepted_of_empty(self):
        assert _dfa("∅", alphabet={"a"}).shortest_accepted() is None

    def test_enumerate_words(self):
        words = list(_dfa("a*b").enumerate_words(3))
        assert words == ["b", "ab", "aab"]

    def test_count_words_of_length(self):
        dfa = _dfa("(a+b)*")
        assert dfa.count_words_of_length(3) == 8


class TestBooleanOperations:
    def test_complement(self):
        dfa = _dfa("a*").completed({"a", "b"})
        comp = dfa.complement()
        assert comp.accepts("ab")
        assert not comp.accepts("aa")

    def test_intersection(self):
        left = _dfa("a*b")
        right = _dfa("ab*")
        both = left.intersection(right)
        assert both.accepts("ab")
        assert not both.accepts("aab")
        assert not both.accepts("abb")

    def test_union(self):
        either = _dfa("aa").union(_dfa("bb"))
        assert either.accepts("aa")
        assert either.accepts("bb")
        assert not either.accepts("ab")

    def test_difference(self):
        diff = _dfa("a*").difference(_dfa("aa"))
        assert diff.accepts("a")
        assert not diff.accepts("aa")
        assert diff.accepts("aaa")

    def test_equivalence(self):
        assert _dfa("a*a").equivalent(_dfa("aa*"))
        assert not _dfa("a*").equivalent(_dfa("a+aa"))

    def test_containment(self):
        assert _dfa("a*").contains_language(_dfa("aa"))
        assert not _dfa("aa").contains_language(_dfa("a*"))


class TestMinimisation:
    def test_minimal_size_of_known_languages(self):
        # a*ba* needs 3 states (before b / after b / sink).
        assert _dfa("a*ba*").minimized().num_states == 3
        # (aa)* needs 2 states over {a}.
        assert _dfa("(aa)*").minimized().num_states == 2

    def test_minimisation_preserves_language(self):
        dfa = _dfa("a*(bb+ + eps)c*")
        minimal = dfa.minimized()
        for word in ["", "abbc", "abc", "bb", "ac", "bc", "b"]:
            assert minimal.accepts(word) == dfa.accepts(word)

    def test_minimized_is_canonical(self):
        first = _dfa("a*a").minimized()
        second = _dfa("aa*").minimized()
        assert first.num_states == second.num_states
        assert first.accepting == second.accepting

    def test_is_minimal(self):
        assert _dfa("a*ba*").minimized().is_minimal()

    def test_with_initial_quotient(self):
        dfa = _dfa("ab").minimized()
        after_a = dfa.transition(dfa.initial, "a")
        quotient = dfa.with_initial(after_a)
        assert quotient.accepts("b")
        assert not quotient.accepts("ab")


class TestFromWords:
    def test_finite_language(self):
        dfa = dfa_from_words(["ab", "ba", ""])
        for word, expected in [("ab", True), ("ba", True), ("", True),
                               ("aa", False)]:
            assert dfa.accepts(word) is expected

    def test_empty_set_of_words(self):
        dfa = dfa_from_words([], alphabet={"a"})
        assert dfa.is_empty()


@st.composite
def _word(draw):
    return "".join(draw(st.lists(st.sampled_from("ab"), max_size=7)))


class TestProperties:
    @given(_word())
    @settings(max_examples=80, deadline=None)
    def test_minimisation_agrees_on_random_words(self, word):
        dfa = _dfa("(a(a+b))*b?")
        assert dfa.minimized().accepts(word) == dfa.accepts(word)

    @given(_word(), _word())
    @settings(max_examples=60, deadline=None)
    def test_product_semantics(self, word_a, word_b):
        left = _dfa("a(a+b)*")
        right = _dfa("(a+b)*b")
        inter = left.intersection(right)
        for word in (word_a, word_b):
            assert inter.accepts(word) == (
                left.accepts(word) and right.accepts(word)
            )

    @given(_word())
    @settings(max_examples=60, deadline=None)
    def test_complement_partition(self, word):
        dfa = _dfa("ab*a", alphabet={"a", "b"})
        assert dfa.accepts(word) != dfa.complement().accepts(word)
