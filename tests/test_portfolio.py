"""The hard-regime solver portfolio: ladder, anytime budgets, caching.

Three layers under test:

* the :class:`~repro.engine.PortfolioSolver` ladder itself — which
  rung answers, what confidence it reports, how budget slices
  escalate;
* the certified-equals-exact contract, differentially and with
  hypothesis: whenever the portfolio reports ``certified`` it must
  agree with the exact solver answer-for-answer;
* the engine integration — per-query opt-in, bounded k-RSPQ, and the
  acceptance-criterion regression: a probabilistic NOT_FOUND must
  never be served from the result cache as definitive.

The deterministic probabilistic-negative gadget used throughout: an
odd a-cycle with two padding vertices, so the shortest accepting
``(aa)*`` walk (6 edges) fits the n-1 cap but revisits vertices, no
simple accepting path exists, and both randomized rungs run to
completion.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.exact import ExactSolver
from repro.engine import (
    CONFIDENCE_CERTIFIED,
    CONFIDENCE_PROBABILISTIC,
    IndexedGraph,
    PortfolioSolver,
    QueryEngine,
    QueryPlan,
)
from repro.errors import BudgetExceededError
from repro.execution import ExecutionContext
from repro.graphs.dbgraph import DbGraph
from repro.graphs.generators import labeled_path, random_labeled_graph
from repro.languages import language
from repro.service.protocol import RESULT_FIELDS, result_record

from tests.conftest import random_instance


def hard_negative_gadget():
    """Graph where ``(aa)*`` 0→4 has an accepting walk but no simple path.

    The walk 0-1-2-3-1-2-4 (6 edges, even) revisits 1 and 2; the only
    simple route 0-1-2-4 has 3 edges (odd).  Padding vertices 5 and 6
    raise the simple-path cap to 6 so the walk probe cannot certify.
    """
    graph = DbGraph()
    for u, l, v in [
        (0, "a", 1), (1, "a", 2), (2, "a", 3), (3, "a", 1), (2, "a", 4),
    ]:
        graph.add_edge(u, l, v)
    graph.add_vertex(5)
    graph.add_vertex(6)
    return graph


class TestLadderRungs:
    def test_walk_probe_certifies_easy_positive(self):
        graph = labeled_path("aa")
        outcome = PortfolioSolver("(aa)*").solve(IndexedGraph(graph), 0, 2)
        assert outcome.found
        assert outcome.confidence == CONFIDENCE_CERTIFIED
        assert outcome.failure_bound is None
        assert outcome.strategy == "portfolio:walk-probe"
        assert outcome.path.word == "aa"

    def test_walk_probe_certifies_absence_without_a_walk(self):
        graph = labeled_path("ab")
        outcome = PortfolioSolver("(aa)*").solve(IndexedGraph(graph), 0, 2)
        assert not outcome.found
        assert outcome.confidence == CONFIDENCE_CERTIFIED
        assert outcome.strategy == "portfolio:walk-probe"
        assert outcome.rungs[-1].outcome == "proved-absent"

    def test_source_equals_target_is_the_empty_path(self):
        view = IndexedGraph(labeled_path("a"))
        assert PortfolioSolver("a*").solve(view, 0, 0).found
        negative = PortfolioSolver("aa*").solve(view, 0, 0)
        assert not negative.found
        assert negative.confidence == CONFIDENCE_CERTIFIED

    def test_probabilistic_negative_reports_combined_bound(self):
        # Color rung complete (cap 6 <= 7) and algebraic rung negative:
        # independent streams multiply the one-sided bounds.
        view = IndexedGraph(hard_negative_gadget())
        outcome = PortfolioSolver(
            "(aa)*", failure_probability=1e-3
        ).solve(view, 0, 4)
        assert not outcome.found
        assert outcome.confidence == CONFIDENCE_PROBABILISTIC
        assert outcome.failure_bound == pytest.approx(1e-6)
        assert outcome.strategy == "portfolio:algebraic"
        names = [r.name for r in outcome.rungs]
        assert names == ["walk-probe", "color-coding", "algebraic"]

    def test_rung_reports_carry_steps(self):
        view = IndexedGraph(hard_negative_gadget())
        outcome = PortfolioSolver("(aa)*").solve(view, 0, 4)
        assert all(r.steps >= 0 for r in outcome.rungs)
        assert sum(r.steps for r in outcome.rungs) > 0

    def test_max_path_edges_validation(self):
        view = IndexedGraph(labeled_path("a"))
        with pytest.raises(ValueError):
            PortfolioSolver("a*").solve(view, 0, 1, max_path_edges=-1)

    def test_bounded_negative_is_certified_by_the_walk_probe(self):
        # Bound 1: no accepting (aa)* walk with one edge exists at all.
        view = IndexedGraph(labeled_path("aa"))
        outcome = PortfolioSolver("(aa)*").solve(
            view, 0, 2, max_path_edges=1
        )
        assert not outcome.found
        assert outcome.confidence == CONFIDENCE_CERTIFIED

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            PortfolioSolver("a*", failure_probability=0.0)
        with pytest.raises(ValueError):
            PortfolioSolver("a*", algebraic_max_edges=99)
        with pytest.raises(ValueError):
            PortfolioSolver("a*", budget_split={"color-coding": 0.0})


class TestBudgetLadder:
    def test_starved_rungs_escalate_to_exact(self):
        # A small budget exhausts both randomized slices; the exact
        # rung gets the remainder and still certifies the negative.
        view = IndexedGraph(hard_negative_gadget())
        ctx = ExecutionContext(budget=400)
        outcome = PortfolioSolver("(aa)*").solve(view, 0, 4, ctx=ctx)
        assert not outcome.found
        assert outcome.confidence == CONFIDENCE_CERTIFIED
        assert outcome.strategy == "portfolio:exact"

    def test_anytime_negative_survives_exact_exhaustion(self):
        # Enough budget for the color rung to complete but not for
        # more: the probabilistic negative is the anytime answer.
        view = IndexedGraph(hard_negative_gadget())
        ctx = ExecutionContext(budget=6400)
        outcome = PortfolioSolver("(aa)*").solve(view, 0, 4, ctx=ctx)
        assert not outcome.found
        assert outcome.confidence == CONFIDENCE_PROBABILISTIC
        assert outcome.failure_bound is not None

    def test_no_answer_in_hand_reraises(self):
        # A budget that dies before any rung concludes must surface
        # the exhaustion rather than invent an answer.
        view = IndexedGraph(hard_negative_gadget())
        ctx = ExecutionContext(budget=20)
        with pytest.raises(BudgetExceededError):
            PortfolioSolver("(aa)*").solve(view, 0, 4, ctx=ctx)

    def test_budget_split_report_partitions_the_unit(self):
        shares = PortfolioSolver("(aa)*").budget_split_report()
        assert set(shares) == {
            "walk-probe", "color-coding", "algebraic", "exact",
        }
        assert shares["walk-probe"] == 0.0
        assert sum(shares.values()) == pytest.approx(1.0)

    def test_describe_is_json_safe(self):
        import json

        report = PortfolioSolver("(aa)*").describe()
        assert report["ladder"][0] == "walk-probe"
        json.dumps(report)


class TestCertifiedEqualsExact:
    @pytest.mark.parametrize("regex", ["(aa)*", "a*ba*c*", "(ab)*a"])
    def test_differential_on_random_graphs(self, regex):
        lang = language(regex)
        portfolio = PortfolioSolver(lang, seed=3)
        exact = ExactSolver(lang)
        alphabet = sorted(lang.alphabet)
        for seed in range(12):
            graph, x, y = random_instance(seed, alphabet, max_vertices=8)
            view = IndexedGraph(graph)
            truth = exact.shortest_simple_path(view, x, y)
            outcome = portfolio.solve(view, x, y)
            if outcome.confidence == CONFIDENCE_CERTIFIED:
                assert outcome.found == (truth is not None), (regex, seed)
                if truth is not None:
                    assert len(outcome.path) == len(truth), (regex, seed)
                    assert outcome.path.is_simple()
                    assert lang.accepts(outcome.path.word)
            else:
                # A probabilistic miss would fail here with
                # probability < 1e-3 per instance.
                assert not outcome.found
                assert truth is None, (regex, seed)

    @settings(max_examples=40, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        num_vertices=st.integers(2, 7),
        bound=st.integers(0, 5),
    )
    def test_hypothesis_bounded_portfolio_equals_exact(
        self, seed, num_vertices, bound
    ):
        lang = language("(aa)*")
        graph = random_labeled_graph(
            num_vertices, 2 * num_vertices, "ab", seed=seed
        )
        view = IndexedGraph(graph)
        x, y = 0, num_vertices - 1
        truth = ExactSolver(lang).shortest_simple_path(view, x, y)
        if truth is not None and len(truth) > bound:
            truth = None
        outcome = PortfolioSolver(lang, seed=seed).solve(
            view, x, y, max_path_edges=bound
        )
        if outcome.confidence == CONFIDENCE_CERTIFIED:
            assert outcome.found == (truth is not None)
            if truth is not None:
                assert len(outcome.path) == len(truth)
        else:
            assert not outcome.found
            assert truth is None


class TestPlanAttachment:
    def test_exact_plans_carry_a_ladder(self):
        plan = QueryPlan.compile("(aa)*")
        assert plan.portfolio is not None
        assert plan.portfolio.language.accepts("aaaa")

    def test_tractable_plans_do_not(self):
        assert QueryPlan.compile("a*c*").portfolio is None
        assert QueryPlan.compile("abc").portfolio is None


class TestEngineIntegration:
    def test_per_query_opt_in_on_a_default_engine(self):
        engine = QueryEngine(hard_negative_gadget())
        classic = engine.query("(aa)*", 0, 4)
        assert classic.strategy == "exact-backtracking"
        assert classic.confidence == CONFIDENCE_CERTIFIED
        routed = engine.query("(aa)*", 0, 4, portfolio=True)
        assert routed.strategy.startswith("portfolio:")
        assert not routed.found

    def test_engine_default_with_per_query_opt_out(self):
        engine = QueryEngine(hard_negative_gadget(), portfolio=True)
        routed = engine.query("(aa)*", 0, 4)
        assert routed.strategy.startswith("portfolio:")
        classic = engine.query("(aa)*", 0, 4, portfolio=False)
        assert classic.strategy == "exact-backtracking"
        assert classic.confidence == CONFIDENCE_CERTIFIED

    def test_portfolio_flag_is_inert_for_tractable_plans(self):
        graph = labeled_path("aca")
        engine = QueryEngine(graph, portfolio=True)
        result = engine.query("a*c*", 0, 2)
        assert result.strategy == "trc-nice-path"
        assert result.found
        assert result.confidence == CONFIDENCE_CERTIFIED

    def test_certified_portfolio_agrees_with_classic_path_for_path(self):
        graph = random_labeled_graph(10, 28, "ab", seed=5)
        baseline = QueryEngine(graph)
        routed = QueryEngine(graph, portfolio=True)
        for x in range(5):
            for y in range(5, 10):
                classic = baseline.query("(aa)*", x, y)
                result = routed.query("(aa)*", x, y)
                if result.confidence == CONFIDENCE_CERTIFIED:
                    assert result.found == classic.found, (x, y)
                    if classic.found:
                        assert result.length == classic.length, (x, y)
                else:
                    assert not result.found
                    assert not classic.found, (x, y)

    def test_bounded_classic_query_prunes_by_shortest(self):
        # The classic solver returns a shortest path, so a bound under
        # its length is a certified negative and a bound at it passes.
        graph = labeled_path("aaaa")
        engine = QueryEngine(graph)
        full = engine.query("(aa)*", 0, 4)
        assert full.found and full.length == 4
        cut = engine.query("(aa)*", 0, 4, max_path_edges=3)
        assert not cut.found
        assert cut.confidence == CONFIDENCE_CERTIFIED
        kept = engine.query("(aa)*", 0, 4, max_path_edges=4)
        assert kept.found and kept.length == 4

    def test_override_validation(self):
        engine = QueryEngine(labeled_path("a"))
        with pytest.raises(ValueError):
            engine.query("a*", 0, 1, max_path_edges=-1)
        with pytest.raises(ValueError):
            QueryEngine(labeled_path("a"), portfolio_failure_probability=0.0)

    def test_batch_routes_hard_queries_through_the_ladder(self):
        engine = QueryEngine(hard_negative_gadget(), portfolio=True)
        batch = engine.run_batch(
            [("(aa)*", 0, 4), ("(aa)*", 0, 2), ("a*", 0, 4)]
        )
        by_query = {
            (r.source, r.target, str(r.language)): r
            for r in batch.results
        }
        hard = by_query[(0, 4, "(aa)*")]
        assert not hard.found
        easy = by_query[(0, 2, "(aa)*")]
        assert easy.found and easy.confidence == CONFIDENCE_CERTIFIED
        tractable = by_query[(0, 4, "a*")]
        assert tractable.found


class TestResultCachePolicy:
    def test_probabilistic_negatives_are_never_cached(self):
        # The acceptance-criterion regression: replaying a randomized
        # NOT_FOUND as definitive would launder δ into certainty.
        engine = QueryEngine(hard_negative_gadget(), portfolio=True)
        first = engine.query("(aa)*", 0, 4)
        assert first.confidence == CONFIDENCE_PROBABILISTIC
        assert not first.stats.result_cache_hit
        second = engine.query("(aa)*", 0, 4)
        assert second.confidence == CONFIDENCE_PROBABILISTIC
        assert not second.stats.result_cache_hit

    def test_certified_portfolio_answers_replay(self):
        graph = labeled_path("aa")
        engine = QueryEngine(graph, portfolio=True)
        first = engine.query("(aa)*", 0, 2)
        assert first.confidence == CONFIDENCE_CERTIFIED
        second = engine.query("(aa)*", 0, 2)
        assert second.stats.result_cache_hit
        assert second.confidence == CONFIDENCE_CERTIFIED
        assert second.found and second.length == first.length

    def test_portfolio_and_classic_answers_use_distinct_keys(self):
        # A certified portfolio answer must not replay for a classic
        # query of the same triple (and vice versa): the modes differ
        # in strategy labeling and bounded semantics.
        engine = QueryEngine(labeled_path("aa"))
        engine.query("(aa)*", 0, 2, portfolio=True)
        classic = engine.query("(aa)*", 0, 2)
        assert not classic.stats.result_cache_hit
        assert classic.strategy == "exact-backtracking"

    def test_bounded_queries_key_on_their_bound(self):
        graph = labeled_path("aaaa")
        engine = QueryEngine(graph)
        cut = engine.query("(aa)*", 0, 4, max_path_edges=3)
        assert not cut.found
        kept = engine.query("(aa)*", 0, 4, max_path_edges=4)
        assert kept.found
        replay = engine.query("(aa)*", 0, 4, max_path_edges=3)
        assert replay.stats.result_cache_hit
        assert not replay.found


class TestProtocol:
    def test_result_record_carries_confidence_fields(self):
        assert "confidence" in RESULT_FIELDS
        assert "failure_bound" in RESULT_FIELDS
        engine = QueryEngine(hard_negative_gadget(), portfolio=True)
        record = result_record(engine.query("(aa)*", 0, 4))
        assert list(record) == list(RESULT_FIELDS)
        assert record["confidence"] == CONFIDENCE_PROBABILISTIC
        assert 0.0 < record["failure_bound"] < 1.0

    def test_certified_records_have_null_bound(self):
        engine = QueryEngine(labeled_path("aa"))
        record = result_record(engine.query("(aa)*", 0, 2))
        assert record["confidence"] == CONFIDENCE_CERTIFIED
        assert record["failure_bound"] is None
