"""Tests for language-level properties (subword closure, density)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import catalog
from repro.languages import Language, language
from repro.languages.properties import (
    downward_closure_nfa,
    is_subword_closed,
    language_density,
    sample_words,
)


class TestSubwordClosure:
    @pytest.mark.parametrize("entry", catalog.entries(), ids=lambda e: e.name)
    def test_catalog_ground_truth(self, entry):
        assert is_subword_closed(entry.language().dfa) is entry.subword_closed

    def test_downward_closure_contains_subwords(self):
        lang = language("abc")
        closure = downward_closure_nfa(lang.dfa)
        for subword in ["", "a", "b", "c", "ab", "ac", "bc", "abc"]:
            assert closure.accepts(subword)
        assert not closure.accepts("ba")

    @given(st.sampled_from(["a*", "a*c*", "(a+b)*", "a*b?c*"]))
    @settings(max_examples=20, deadline=None)
    def test_closure_of_closed_language_is_same_language(self, regex):
        lang = language(regex)
        closed = Language(downward_closure_nfa(lang.dfa))
        assert closed.equivalent(lang)


class TestDensityAndSampling:
    def test_density_vector(self):
        assert language_density(language("(a+b)*").dfa, 3) == [1, 2, 4, 8]

    def test_density_of_even_language(self):
        assert language_density(language("(aa)*").dfa, 4) == [1, 0, 1, 0, 1]

    def test_sample_words_limit(self):
        words = sample_words(language("(a+b)*").dfa, 4, limit=5)
        assert len(words) == 5

    def test_sample_words_ordering(self):
        words = sample_words(language("a*b").dfa, 4)
        assert words == sorted(words, key=len)


class TestLanguageHandle:
    def test_words_and_shortest(self):
        lang = language("aa + b")
        assert lang.shortest_word() == "b"
        assert set(lang.words(2)) == {"aa", "b"}

    def test_equivalence_of_different_sources(self):
        from repro.languages.dfa import dfa_from_words

        by_regex = language("ab + ba")
        by_words = Language(dfa_from_words(["ab", "ba"]))
        assert by_regex.equivalent(by_words)

    def test_rejects_unknown_source(self):
        with pytest.raises(TypeError):
            Language(12345)

    def test_name_in_repr(self):
        lang = language("a*", name="alpha")
        assert "alpha" in repr(lang)
