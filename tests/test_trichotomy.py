"""Tests for the trichotomy classification (Theorem 2)."""

import pytest

from repro import catalog, classify
from repro.core.trichotomy import ComplexityClass
from repro.core.witness import verify_witness
from repro.languages import language


class TestCatalogClassification:
    @pytest.mark.parametrize("entry", catalog.entries(), ids=lambda e: e.name)
    def test_class_matches_paper(self, entry):
        result = classify(entry.language().dfa)
        assert result.complexity_class.value == entry.complexity
        assert result.finite is entry.finite
        assert result.in_trc is entry.in_trc

    @pytest.mark.parametrize(
        "entry", catalog.hard_entries(), ids=lambda e: e.name
    )
    def test_hard_classifications_carry_verified_witness(self, entry):
        lang = entry.language()
        result = classify(lang.dfa)
        assert result.witness is not None
        assert verify_witness(lang.dfa, result.witness)

    def test_witness_can_be_skipped(self):
        result = classify(language("a*ba*").dfa, with_witness=False)
        assert result.complexity_class is ComplexityClass.NP_COMPLETE
        assert result.witness is None


class TestFiniteCase:
    def test_longest_word_bound(self):
        result = classify(language("abc").dfa)
        lang = language("abc")
        assert result.longest_word_bound is not None
        longest = max(len(w) for w in lang.words(10))
        assert longest <= result.longest_word_bound

    def test_empty_language_is_ac0(self):
        result = classify(language("∅", alphabet={"a"}).dfa)
        assert result.complexity_class is ComplexityClass.AC0


class TestTractabilityPredicate:
    def test_tractable_classes(self):
        assert ComplexityClass.AC0.is_tractable()
        assert ComplexityClass.NL_COMPLETE.is_tractable()
        assert not ComplexityClass.NP_COMPLETE.is_tractable()

    def test_classification_is_tractable_helper(self):
        assert classify(language("a*").dfa).is_tractable()
        assert not classify(language("(aa)*").dfa).is_tractable()

    def test_classify_accepts_language(self):
        assert classify(language("a*")).in_trc


class TestBoundaryExamples:
    """The pairs the paper uses to locate the frontier."""

    def test_example1_vs_its_hard_neighbour(self):
        # a*(bb+ + ε)c* tractable, a*bc* hard (Example 1's punchline).
        assert classify(language("a*(bb^+ + eps)c*").dfa).is_tractable()
        assert not classify(language("a*bc*").dfa).is_tractable()

    def test_optional_b_vs_mandatory_b(self):
        assert classify(language("a*(b + eps)c*").dfa).is_tractable()
        assert not classify(language("a*bc*").dfa).is_tractable()

    def test_bb_run_at_end_is_tractable(self):
        # ab+ (= uv*w) is NL-complete; the trailing run does not hurt.
        result = classify(language("ab^+").dfa)
        assert result.complexity_class is ComplexityClass.NL_COMPLETE
