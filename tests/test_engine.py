"""Tests for the indexed-adjacency query engine (repro.engine)."""

import pytest

from tests.conftest import random_instance

from repro import catalog
from repro.algorithms.bounded import FiniteLanguageSolver
from repro.algorithms.exact import ExactSolver
from repro.core.nice_paths import TractableSolver
from repro.core.solver import solve_rspq
from repro.engine import (
    IndexedGraph,
    PlanCache,
    QueryEngine,
    QueryPlan,
    plan_key,
)
from repro.errors import GraphError
from repro.graphs.dbgraph import DbGraph
from repro.graphs.generators import random_labeled_graph
from repro.languages import language


@pytest.fixture
def graph():
    return random_labeled_graph(25, 75, "abc", seed=11)


class TestIndexedGraph:
    def test_read_api_matches_dbgraph(self, graph):
        indexed = IndexedGraph(graph)
        assert indexed.num_vertices == graph.num_vertices
        assert indexed.num_edges == graph.num_edges
        assert indexed.labels() == graph.labels()
        assert list(indexed.vertices()) == list(graph.vertices())
        assert list(indexed.edges()) == list(graph.edges())
        for vertex in graph.vertices():
            assert sorted(indexed.out_edges(vertex)) == sorted(
                graph.out_edges(vertex)
            )
            assert sorted(indexed.in_edges(vertex)) == sorted(
                graph.in_edges(vertex)
            )
            assert indexed.successors(vertex) == graph.successors(vertex)
            assert indexed.predecessors(vertex) == graph.predecessors(vertex)
            assert indexed.out_degree(vertex) == graph.out_degree(vertex)
            assert indexed.in_degree(vertex) == graph.in_degree(vertex)
            for label in graph.labels():
                assert indexed.successors(vertex, label) == graph.successors(
                    vertex, label
                )
                assert indexed.predecessors(
                    vertex, label
                ) == graph.predecessors(vertex, label)

    def test_sorted_views_match_dbgraph_caches(self, graph):
        indexed = IndexedGraph(graph)
        for vertex in graph.vertices():
            assert indexed.sorted_out_edges(vertex) == graph.sorted_out_edges(
                vertex
            )
            for label in graph.labels():
                assert indexed.sorted_successors(
                    vertex, label
                ) == graph.sorted_successors(vertex, label)

    def test_vertex_ids_are_contiguous_and_ordered(self, graph):
        indexed = IndexedGraph(graph)
        ordered = list(graph.vertices())
        for index, vertex in enumerate(ordered):
            assert indexed.vertex_id(vertex) == index
            assert indexed.vertex_at(index) == vertex

    def test_csr_neighbor_ids(self, graph):
        indexed = IndexedGraph(graph)
        for vertex in graph.vertices():
            vertex_id = indexed.vertex_id(vertex)
            for label in graph.labels():
                via_csr = {
                    indexed.vertex_at(target_id)
                    for target_id in indexed.out_neighbor_ids(
                        vertex_id, label
                    )
                }
                assert via_csr == graph.successors(vertex, label)

    def test_has_edge_and_is_path(self, graph):
        indexed = IndexedGraph(graph)
        for source, label, target in graph.edges():
            assert indexed.has_edge(source, label, target)
        assert not indexed.has_edge("nope", "a", "nada")
        path = solve_rspq("a*", graph, 0, 1).path
        if path is not None:
            assert indexed.is_path(path)

    def test_unknown_vertex_raises(self, graph):
        indexed = IndexedGraph(graph)
        with pytest.raises(GraphError):
            indexed.require_vertex("missing")
        with pytest.raises(GraphError):
            indexed.vertex_id("missing")

    def test_reachable_within_matches(self, graph):
        indexed = IndexedGraph(graph)
        assert indexed.reachable_within(0) == graph.reachable_within(0)
        assert indexed.reachable_within(
            0, allowed_labels={"a"}
        ) == graph.reachable_within(0, allowed_labels={"a"})
        assert indexed.reachable_within(
            0, forbidden={1, 2}
        ) == graph.reachable_within(0, forbidden={1, 2})

    def test_to_dbgraph_roundtrip(self, graph):
        back = IndexedGraph(graph).to_dbgraph()
        assert list(back.edges()) == list(graph.edges())
        assert set(back.vertices()) == set(graph.vertices())

    def test_double_compile_rejected(self, graph):
        indexed = IndexedGraph(graph)
        with pytest.raises(GraphError):
            IndexedGraph(indexed)


class TestSolversOnIndexedView:
    """Every solver returns bit-identical paths on the compiled view."""

    def test_exact_solver_identical_paths(self):
        solver = ExactSolver("a*ba*")
        for seed in range(8):
            graph, x, y = random_instance(seed, "ab", max_vertices=9)
            on_dict = solver.shortest_simple_path(graph, x, y)
            on_indexed = solver.shortest_simple_path(
                IndexedGraph(graph), x, y
            )
            assert on_dict == on_indexed, seed

    def test_tractable_solver_identical_paths(self):
        solver = TractableSolver(language("a*(bb^+ + eps)c*"))
        for seed in range(8):
            graph, x, y = random_instance(seed, "abc", max_vertices=9)
            on_dict = solver.shortest_simple_path(graph, x, y)
            on_indexed = solver.shortest_simple_path(
                IndexedGraph(graph), x, y
            )
            assert on_dict == on_indexed, seed

    def test_finite_solver_identical_paths(self):
        solver = FiniteLanguageSolver(language("ab + ba + abc"))
        for seed in range(8):
            graph, x, y = random_instance(seed, "abc", max_vertices=9)
            on_dict = solver.shortest_simple_path(graph, x, y)
            on_indexed = solver.shortest_simple_path(
                IndexedGraph(graph), x, y
            )
            assert on_dict == on_indexed, seed


class TestPlanKey:
    def test_regex_strings_key_by_text(self):
        assert plan_key("a*") == plan_key("a*")
        assert plan_key("a*") != plan_key("(a*)*")

    def test_languages_key_by_canonical_dfa(self):
        # Different regexes, same language: one plan.
        assert plan_key(language("a*")) == plan_key(language("(a*)*"))
        assert plan_key(language("a*")) != plan_key(language("a^+"))

    def test_rejects_other_types(self):
        with pytest.raises(TypeError):
            plan_key(42)

    def test_dead_state_representation_is_normalised(self):
        # One language, two minimal DFAs: completing over a larger
        # alphabet grows a dead sink state and transitions into it.
        # The canonical signature erases the dead part, so the two
        # spellings share a plan (the ISSUE-4 collision-hazard fix).
        assert plan_key(language("a*")) == plan_key(
            language("a*", alphabet="ab")
        )
        assert plan_key(language("ab + ba")) == plan_key(
            language("ab + ba", alphabet="abcd")
        )
        assert plan_key(language("a*ba*")) == plan_key(
            language("a*ba*", alphabet="abc")
        )

    def test_distinct_languages_never_share_a_key(self):
        specs = [
            language("a*"),
            language("a^+"),
            language("b*", alphabet="ab"),
            language("ab + ba"),
            language("(aa)*"),
            language("a*ba*"),
        ]
        keys = [plan_key(lang) for lang in specs]
        assert len(set(keys)) == len(keys)

    def test_all_empty_languages_share_one_key(self):
        # Same answers everywhere (no path, ever) — one plan suffices.
        from repro.languages import DFA

        empty_ab = language(
            DFA(1, "ab", {(0, "a"): 0, (0, "b"): 0}, 0, ())
        )
        empty_c = language(DFA(1, "c", {(0, "c"): 0}, 0, ()))
        assert plan_key(empty_ab) == plan_key(empty_c)

    def test_dead_state_variants_share_one_engine_plan(self):
        graph = DbGraph.from_edges(
            [(0, "a", 1), (1, "a", 2), (2, "b", 3)]
        )
        engine = QueryEngine(graph)
        narrow = engine.query(language("a*"), 0, 2)
        wide = engine.query(language("a*", alphabet="ab"), 0, 2)
        assert engine.cache_stats().compiles == 1
        assert wide.found == narrow.found
        assert wide.path == narrow.path
        assert wide.strategy == narrow.strategy


class TestPlanCache:
    def test_lru_eviction(self):
        cache = PlanCache(capacity=2)
        plans = {
            regex: QueryPlan.compile(regex) for regex in ("a", "b", "c")
        }
        cache.put(plan_key("a"), plans["a"])
        cache.put(plan_key("b"), plans["b"])
        assert cache.get(plan_key("a")) is plans["a"]  # refresh 'a'
        cache.put(plan_key("c"), plans["c"])  # evicts 'b', not 'a'
        assert cache.get(plan_key("b")) is None
        assert cache.get(plan_key("a")) is plans["a"]
        assert cache.get(plan_key("c")) is plans["c"]
        assert cache.stats.evictions == 1
        assert len(cache) == 2

    def test_stats_counters(self):
        cache = PlanCache(capacity=4)
        assert cache.get(plan_key("a")) is None
        cache.put(plan_key("a"), QueryPlan.compile("a"))
        assert cache.get(plan_key("a")) is not None
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.hit_rate == 0.5

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            PlanCache(capacity=0)


class TestQueryEngine:
    def test_matches_solve_rspq_path_for_path(self, graph):
        engine = QueryEngine(graph)
        regexes = ["a*", "ab + ba", "a*ba*", "a*(bb^+ + eps)c*"]
        for index, regex in enumerate(regexes * 3):
            source = index % graph.num_vertices
            target = (index * 3 + 1) % graph.num_vertices
            mine = engine.query(regex, source, target)
            reference = solve_rspq(regex, graph, source, target)
            assert mine.found == reference.found
            assert mine.path == reference.path
            assert mine.strategy == reference.strategy

    def test_plan_reuse_within_batch(self, graph):
        engine = QueryEngine(graph)
        queries = [("a*", 0, index) for index in range(1, 11)]
        batch = engine.run_batch(queries)
        assert batch.plans_compiled == 1
        assert batch.plan_cache_hits == 9
        assert len(batch) == 10

    def test_warm_cache_compiles_nothing(self, graph):
        engine = QueryEngine(graph)
        queries = [("a*", 0, 1), ("ab", 0, 2), ("a*ba*", 0, 3)]
        engine.run_batch(queries)
        batch = engine.run_batch(queries)
        assert batch.plans_compiled == 0
        assert batch.plan_cache_hits == 3

    def test_per_query_stats(self, graph):
        engine = QueryEngine(graph)
        result = engine.query("a*", 0, 1)
        assert result.stats.strategy == result.strategy
        assert result.stats.steps is not None and result.stats.steps >= 0
        assert result.stats.plan_cache_hit is False
        assert result.stats.seconds >= 0
        again = engine.query("a*", 0, 1)
        assert again.stats.plan_cache_hit is True
        assert again.path == result.path

    def test_accepts_precompiled_graph(self, graph):
        indexed = IndexedGraph(graph)
        engine = QueryEngine(indexed)
        assert engine.graph is indexed
        assert engine.query("a*", 0, 1).found == (
            solve_rspq("a*", graph, 0, 1).found
        )

    def test_accepts_language_objects(self, graph):
        engine = QueryEngine(graph)
        lang = language("a*")
        first = engine.query(lang, 0, 1)
        second = engine.query(language("(a*)*"), 0, 1)  # same language
        assert second.stats.plan_cache_hit is True
        assert first.path == second.path

    def test_exists(self, graph):
        engine = QueryEngine(graph)
        assert engine.exists("a*", 0, 1) == (
            engine.query("a*", 0, 1).found
        )

    def test_batch_summary_mentions_counts(self, graph):
        engine = QueryEngine(graph)
        batch = engine.run_batch([("a*", 0, 1), ("ab", 0, 2)])
        text = batch.summary()
        assert "2 queries" in text
        assert "compiled" in text

    def test_strategy_counts(self, graph):
        engine = QueryEngine(graph)
        batch = engine.run_batch(
            [("a*", 0, 1), ("ab", 0, 2), ("a*ba*", 0, 3)]
        )
        counts = batch.strategy_counts()
        assert sum(counts.values()) == 3
        assert len(counts) == 3

    def test_lru_bounded_engine_still_correct(self, graph):
        # Cache of 2 with 3 cycling languages: thrashes but stays right.
        engine = QueryEngine(graph, plan_cache_size=2)
        regexes = ["a*", "ab", "a*ba*"] * 3
        for index, regex in enumerate(regexes):
            mine = engine.query(regex, 0, (index % 5) + 1)
            reference = solve_rspq(regex, graph, 0, (index % 5) + 1)
            assert mine.path == reference.path
        assert engine.plan_cache.stats.evictions > 0


class TestCacheStats:
    def test_engine_lifetime_counters(self, graph):
        engine = QueryEngine(graph)
        engine.query("a*", 0, 1)
        engine.query("a*", 0, 2)
        engine.query("ab", 0, 3)
        stats = engine.cache_stats()
        assert stats.compiles == 2
        assert stats.hits == 1
        assert stats.misses == 2
        assert stats.evictions == 0
        assert stats.lookups == 3

    def test_snapshot_is_independent(self, graph):
        engine = QueryEngine(graph)
        before = engine.cache_stats()
        engine.query("a*", 0, 1)
        assert before.compiles == 0
        assert engine.cache_stats().compiles == 1

    def test_batch_delta_counts_only_this_batch(self, graph):
        engine = QueryEngine(graph)
        engine.run_batch([("a*", 0, 1), ("ab", 0, 2)])
        batch = engine.run_batch([("a*", 0, 1), ("ab", 0, 2)])
        assert batch.cache_stats.compiles == 0
        assert batch.cache_stats.hits == 2
        assert engine.cache_stats().compiles == 2

    def test_eviction_recompile_counted(self, graph):
        engine = QueryEngine(graph, plan_cache_size=1)
        engine.query("a*", 0, 1)
        engine.query("ab", 0, 2)  # evicts a*
        engine.query("a*", 0, 3)  # recompiles a*
        stats = engine.cache_stats()
        assert stats.compiles == 3
        assert stats.evictions == 2

    def test_summary_shows_real_counters(self, graph):
        engine = QueryEngine(graph)
        batch = engine.run_batch([("a*", 0, 1), ("a*", "nope", 2)])
        text = batch.summary()
        assert "1 compiled" in text
        assert "misses" in text and "evictions" in text


class TestCatalogAgreement:
    """Engine answers match the dispatcher on every catalog language."""

    @pytest.mark.parametrize(
        "entry", catalog.entries(), ids=lambda e: e.name
    )
    def test_catalog_language(self, entry):
        lang = entry.language()
        alphabet = sorted(lang.alphabet) or ["a"]
        graph, x, y = random_instance(3, alphabet, max_vertices=8)
        engine = QueryEngine(graph)
        mine = engine.query(lang, x, y)
        reference = solve_rspq(lang, graph, x, y)
        assert mine.found == reference.found
        assert mine.path == reference.path
        assert mine.strategy == reference.strategy
        assert mine.decompose_failed == reference.decompose_failed


class TestBatchErrorIsolation:
    """One failing query must not discard the rest of the batch."""

    def test_unknown_vertex_isolated(self, graph):
        engine = QueryEngine(graph)
        batch = engine.run_batch(
            [("a*", 0, 1), ("a*", "nope", 1), ("a*", 0, 2)]
        )
        assert len(batch) == 3
        assert batch.error_count == 1
        failed = batch.results[1]
        assert failed.error is not None and "nope" in failed.error
        assert failed.found is False and failed.path is None
        assert failed.strategy == "error"
        assert batch.results[0].error is None
        assert batch.results[2].error is None

    def test_bad_regex_isolated(self, graph):
        engine = QueryEngine(graph)
        batch = engine.run_batch([("((((", 0, 1), ("a*", 0, 1)]) 
        assert batch.error_count == 1
        assert batch.results[1].error is None

    def test_budget_exceeded_isolated(self):
        from repro.graphs.generators import labeled_cycle

        graph = labeled_cycle("a" * 9)
        engine = QueryEngine(graph, exact_budget=3)
        batch = engine.run_batch([("(aa)*", 0, 1), ("a*", 0, 1)])
        assert batch.results[0].error is not None
        assert "budget" in batch.results[0].error
        assert batch.results[1].found

    def test_errors_in_summary(self, graph):
        engine = QueryEngine(graph)
        batch = engine.run_batch([("a*", "nope", 1)])
        assert "1 errors" in batch.summary()
        # The plan WAS compiled even though the query then failed on
        # the unknown vertex; real cache counters must say so.
        assert batch.plans_compiled == 1
        assert batch.cache_stats.compiles == 1
        assert batch.cache_stats.hits == 0

    def test_error_after_cache_hit_still_counted_as_hit(self, graph):
        engine = QueryEngine(graph)
        batch = engine.run_batch([("a*", 0, 1), ("a*", "nope", 1)])
        assert batch.plans_compiled == 1
        assert batch.cache_stats.hits == 1
        failed = batch.results[1]
        assert failed.error is not None
        assert failed.stats.plan_cache_hit is True

    def test_single_query_api_still_raises(self, graph):
        engine = QueryEngine(graph)
        with pytest.raises(GraphError):
            engine.query("a*", "nope", 1)

    def test_result_carries_language(self, graph):
        engine = QueryEngine(graph)
        batch = engine.run_batch([("a*", 0, 1), ("ab", 0, 2)])
        assert [result.language for result in batch.results] == ["a*", "ab"]
